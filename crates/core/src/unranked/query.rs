//! Unranked query automata (Definitions 5.8 and 5.13) and the paper's
//! Examples 5.9 and 5.14.

use qa_base::{Result, Symbol};
use qa_obs::{Counter, NoopObserver, Observer};
use qa_strings::{Dfa, SlenderLang, StateId};
use qa_trees::{NodeId, Tree};

use super::stay::{pair_alphabet_len, pair_symbol, StayRule};
use super::twoway::{StayBlock, TwoWayUnranked, TwoWayUnrankedBuilder};
use crate::ranked::twoway::Polarity;

/// A query automaton over unranked trees: a two-way machine plus a
/// selection function `λ : Q × Σ → {⊥, 1}`.
///
/// Without stay transitions this is a `QAu` (Definition 5.8) — strictly
/// weaker than MSO (Proposition 5.10). With a stay block of budget 1 it is
/// a *strong* query automaton `SQAu` (Definition 5.13), capturing exactly
/// the unary MSO queries (Theorem 5.17).
#[derive(Clone, Debug)]
pub struct UnrankedQa {
    machine: TwoWayUnranked,
    /// `select[state][symbol]`.
    select: Vec<Vec<bool>>,
}

/// A strong query automaton is an [`UnrankedQa`] whose machine carries a
/// stay block ([`UnrankedQa::is_strong`]).
pub type StrongQa = UnrankedQa;

impl UnrankedQa {
    /// Wrap a machine with an all-`⊥` selection function.
    pub fn new(machine: TwoWayUnranked) -> Self {
        let select = vec![vec![false; machine.alphabet_len()]; machine.num_states()];
        UnrankedQa { machine, select }
    }

    /// Mark `λ(state, sym) = 1`.
    pub fn set_selecting(&mut self, state: StateId, sym: Symbol, selecting: bool) {
        self.select[state.index()][sym.index()] = selecting;
    }

    /// Whether `λ(state, sym) = 1`.
    pub fn is_selecting(&self, state: StateId, sym: Symbol) -> bool {
        self.select[state.index()][sym.index()]
    }

    /// The underlying two-way machine.
    pub fn machine(&self) -> &TwoWayUnranked {
        &self.machine
    }

    /// Whether this is a strong query automaton (has stay transitions).
    pub fn is_strong(&self) -> bool {
        self.machine.is_strong()
    }

    /// The query `A(t)`: selected nodes; empty for rejecting runs.
    pub fn query(&self, tree: &Tree) -> Result<Vec<NodeId>> {
        self.query_with(tree, &mut NoopObserver)
    }

    /// [`UnrankedQa::query`] with an [`Observer`]: the underlying run and
    /// the selection scan are reported to `obs`. With [`NoopObserver`] this
    /// monomorphizes to exactly `query`.
    pub fn query_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Result<Vec<NodeId>> {
        obs.phase_start("run");
        let rec = self.machine.run_with(tree, obs);
        obs.phase_end("run");
        self.select_from_record(tree, rec?, obs)
    }

    /// [`UnrankedQa::query`] with up/stay decisions memoized in `cache`
    /// (see [`super::UpCache`]): across a document batch, repeated children
    /// pair-strings — the dominant cost of SQAu evaluation — are answered by
    /// hash lookups instead of classifier/matcher/GSQA runs. Results are
    /// identical to [`UnrankedQa::query`]; cache hits and misses are
    /// reported to `obs`.
    pub fn query_cached<O: Observer>(
        &self,
        tree: &Tree,
        cache: &mut super::UpCache,
        obs: &mut O,
    ) -> Result<Vec<NodeId>> {
        obs.phase_start("run");
        let rec = self.machine.run_cached(tree, cache, obs);
        obs.phase_end("run");
        self.select_from_record(tree, rec?, obs)
    }

    /// Shared selection scan over a finished run record.
    fn select_from_record<O: Observer>(
        &self,
        tree: &Tree,
        rec: super::UnrankedRunRecord,
        obs: &mut O,
    ) -> Result<Vec<NodeId>> {
        if !rec.accepted {
            return Ok(Vec::new());
        }
        obs.phase_start("selection scan");
        let out = tree
            .nodes()
            .filter(|&v| {
                let label = tree.label(v);
                obs.count(
                    Counter::SelectionChecks,
                    rec.assumed[v.index()].len() as u64,
                );
                match rec.assumed[v.index()]
                    .iter()
                    .find(|&&q| self.is_selecting(q, label))
                {
                    Some(&q) => {
                        obs.selected(v.index() as u32, q.index() as u32, label.index() as u32);
                        true
                    }
                    None => false,
                }
            })
            .collect();
        obs.phase_end("selection scan");
        Ok(out)
    }

    /// Whether the underlying machine accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> Result<bool> {
        self.machine.accepts(tree)
    }
}

/// Example 5.9: a `QAu` (no stay transitions) selecting all nodes of a
/// variadic Boolean circuit that evaluate to 1.
///
/// States `{s, u, all_one, all_zero, mixed}`; the paper's `λ` is completed
/// with the leaf case (`λ(u, 1) = 1`) so that literally every node
/// evaluating to 1 is selected. Alphabet must contain `AND, OR, 0, 1`.
pub fn example_5_9(alphabet: &qa_base::Alphabet) -> UnrankedQa {
    let and = alphabet.symbol("AND");
    let or = alphabet.symbol("OR");
    let zero = alphabet.symbol("0");
    let one = alphabet.symbol("1");
    let sigma = alphabet.len();

    let mut b = TwoWayUnrankedBuilder::new(sigma);
    let s = b.add_state();
    let u = b.add_state();
    let all_one = b.add_state();
    let all_zero = b.add_state();
    let mixed = b.add_state();
    let num_states = 5;
    b.set_initial(s);
    for q in [s, u, all_one, all_zero, mixed] {
        b.set_final(q, true); // F = Q
    }
    b.set_polarity_all(s, Polarity::Down);
    for q in [u, all_one, all_zero, mixed] {
        b.set_polarity_all(q, Polarity::Up);
    }
    // (1) δ↓(s, σ, n) = sⁿ
    for op in [and, or] {
        b.set_down(s, op, SlenderLang::uniform(Symbol::from_index(s.index())));
    }
    // (2) leaves flip to u
    for leaf in [zero, one] {
        b.set_leaf(s, leaf, u);
    }
    // A child pair "evaluates to one" iff (u,1) | (AND, all_one) |
    // (OR, all_one) | (OR, mixed); to zero iff (u,0) | (OR, all_zero) |
    // (AND, all_zero) | (AND, mixed).
    let pal = pair_alphabet_len(num_states, sigma);
    let p = |q: StateId, l: Symbol| pair_symbol(q, l, sigma);
    let ones = [p(u, one), p(all_one, and), p(all_one, or), p(mixed, or)];
    let zeros = [p(u, zero), p(all_zero, or), p(all_zero, and), p(mixed, and)];
    // L↑(all_one) = ones⁺ ; L↑(all_zero) = zeros⁺ (ε excluded: inner nodes
    // have children, and excluding it keeps the three languages disjoint);
    // L↑(mixed) = strings over ones ∪ zeros containing at least one of each.
    let plus_dfa = |allowed: &[Symbol]| {
        let mut d = Dfa::new(pal);
        let q0 = d.add_state();
        let q1 = d.add_state();
        d.set_initial(q0);
        d.set_accepting(q1, true);
        for &sym in allowed {
            d.set_transition(q0, sym, q1);
            d.set_transition(q1, sym, q1);
        }
        d
    };
    b.add_up_language(all_one, plus_dfa(&ones));
    b.add_up_language(all_zero, plus_dfa(&zeros));
    let mut mixed_dfa = Dfa::new(pal);
    // states: (seen one?, seen zero?)
    let q00 = mixed_dfa.add_state();
    let q10 = mixed_dfa.add_state();
    let q01 = mixed_dfa.add_state();
    let q11 = mixed_dfa.add_state();
    mixed_dfa.set_initial(q00);
    mixed_dfa.set_accepting(q11, true);
    for &sym in &ones {
        mixed_dfa.set_transition(q00, sym, q10);
        mixed_dfa.set_transition(q10, sym, q10);
        mixed_dfa.set_transition(q01, sym, q11);
        mixed_dfa.set_transition(q11, sym, q11);
    }
    for &sym in &zeros {
        mixed_dfa.set_transition(q00, sym, q01);
        mixed_dfa.set_transition(q01, sym, q01);
        mixed_dfa.set_transition(q10, sym, q11);
        mixed_dfa.set_transition(q11, sym, q11);
    }
    b.add_up_language(mixed, mixed_dfa);

    let machine = b.build().expect("example 5.9 is well-formed");
    let mut qa = UnrankedQa::new(machine);
    // λ: gates evaluating to 1, plus the completed leaf case.
    qa.set_selecting(all_one, and, true);
    qa.set_selecting(all_one, or, true);
    qa.set_selecting(mixed, or, true);
    qa.set_selecting(u, one, true);
    qa
}

/// Example 5.14: the `SQAu` for the Proposition 5.10 query — *select every
/// 1-labeled leaf with no 1-labeled node among its left siblings* — which
/// no stay-free `QAu` can compute.
///
/// States `{s, stay, up, one}` over alphabet `{0, 1}`; one stay transition
/// per node assigns `one` to the first 1-labeled leaf child without an
/// earlier 1-labeled sibling, `up` to the rest.
pub fn example_5_14(alphabet: &qa_base::Alphabet) -> StrongQa {
    let zero = alphabet.symbol("0");
    let one_l = alphabet.symbol("1");
    let sigma = alphabet.len();

    let mut b = TwoWayUnrankedBuilder::new(sigma);
    let s = b.add_state();
    let stay = b.add_state();
    let up = b.add_state();
    let one = b.add_state();
    let num_states = 4;
    b.set_initial(s);
    for q in [s, stay, up, one] {
        b.set_final(q, true);
    }
    b.set_polarity_all(s, Polarity::Down);
    for q in [stay, up, one] {
        b.set_polarity_all(q, Polarity::Up);
    }
    for l in [zero, one_l] {
        b.set_down(s, l, SlenderLang::uniform(Symbol::from_index(s.index())));
        b.set_leaf(s, l, stay);
        // a single-node tree: the root is a leaf; resolve via δ_root.
        b.set_root(stay, l, if l == one_l { one } else { up });
    }

    let pal = pair_alphabet_len(num_states, sigma);
    let p = |q: StateId, l: Symbol| pair_symbol(q, l, sigma);
    let settled: Vec<Symbol> = [up, one]
        .into_iter()
        .flat_map(|q| [p(q, zero), p(q, one_l)])
        .collect();
    let pending: Vec<Symbol> = vec![p(stay, zero), p(stay, one_l)];

    // U_stay: strings over settled ∪ pending containing at least one pending
    // pair (some leaf child still awaits its verdict).
    let mut stay_matcher = Dfa::new(pal);
    let m0 = stay_matcher.add_state();
    let m1 = stay_matcher.add_state();
    stay_matcher.set_initial(m0);
    stay_matcher.set_accepting(m1, true);
    for &sym in &settled {
        stay_matcher.set_transition(m0, sym, m0);
        stay_matcher.set_transition(m1, sym, m1);
    }
    for &sym in &pending {
        stay_matcher.set_transition(m0, sym, m1);
        stay_matcher.set_transition(m1, sym, m1);
    }

    // L↑(up): settled* (including ε — but inner nodes always have children,
    // and disjointness from U_stay holds since settled strings contain no
    // pending pair).
    let mut up_dfa = Dfa::new(pal);
    let u0 = up_dfa.add_state();
    up_dfa.set_initial(u0);
    up_dfa.set_accepting(u0, true);
    for &sym in &settled {
        up_dfa.set_transition(u0, sym, u0);
    }
    b.add_up_language(up, up_dfa);

    // δ_stay as a bimachine (the Lemma 3.10 form of the paper's GSQA):
    // output: a pending 1-labeled leaf with no 1-labeled sibling strictly
    // before it becomes `one`, everything else becomes `up`. The left DFA
    // sees the state AFTER reading position i, so it delays the "1 seen"
    // flip by one step to expose "1 seen strictly before i".
    let mut right = Dfa::new(pal);
    let r = right.add_state();
    right.set_initial(r);
    for s_idx in 0..pal {
        right.set_transition(r, Symbol::from_index(s_idx), r);
    }
    let mut left_delayed = Dfa::new(pal);
    let d_no = left_delayed.add_state(); // no 1 before, previous was not 1
    let d_no_last1 = left_delayed.add_state(); // no 1 before, previous was 1
    let d_yes = left_delayed.add_state(); // a 1 occurred strictly before
    left_delayed.set_initial(d_no);
    for q_idx in 0..num_states {
        let q = StateId::from_index(q_idx);
        left_delayed.set_transition(d_no, p(q, zero), d_no);
        left_delayed.set_transition(d_no, p(q, one_l), d_no_last1);
        left_delayed.set_transition(d_no_last1, p(q, zero), d_yes);
        left_delayed.set_transition(d_no_last1, p(q, one_l), d_yes);
        left_delayed.set_transition(d_yes, p(q, zero), d_yes);
        left_delayed.set_transition(d_yes, p(q, one_l), d_yes);
    }
    let stay_pair_one = p(stay, one_l);
    let bim = qa_twoway::Bimachine::new(left_delayed, right, num_states, move |pl, _q, sym| {
        // `pl` is the left state AFTER reading position i. For a 1-labeled
        // position the flip has just happened (d_no_last1) or happened
        // earlier (d_yes). "No 1 strictly before i" ⟺ pl == d_no_last1
        // (for 1-labeled) — and the selected child must be a pending leaf.
        if sym == stay_pair_one && pl == d_no_last1 {
            one.index() as u32
        } else {
            up.index() as u32
        }
    })
    .expect("total components");

    b.set_stay(StayBlock {
        matcher: stay_matcher,
        rule: StayRule::Bimachine(bim),
        max_stays_per_node: 1,
    });

    let machine = b.build().expect("example 5.14 is well-formed");
    let mut qa = UnrankedQa::new(machine);
    qa.set_selecting(one, one_l, true);
    qa
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    fn circuit_alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    fn eval_nodes(t: &Tree, a: &Alphabet) -> Vec<NodeId> {
        let one = a.symbol("1");
        let and = a.symbol("AND");
        let vals = qa_trees::traverse::fold_bottom_up(t, |t, v, kids: &[bool]| {
            if t.is_leaf(v) {
                t.label(v) == one
            } else if t.label(v) == and {
                kids.iter().all(|&b| b)
            } else {
                kids.iter().any(|&b| b)
            }
        });
        t.nodes().filter(|v| vals[v.index()]).collect()
    }

    #[test]
    fn example_5_9_selects_true_nodes() {
        let mut a = circuit_alpha();
        let qa = example_5_9(&a);
        assert!(!qa.is_strong());
        for s in [
            "1",
            "0",
            "(AND 1 1 1)",
            "(OR 0 0 1 0)",
            "(AND (OR 0 0 1) (AND 1 1) 1)",
            "(OR (AND 1 0 1) (OR 0 0) (AND 1))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            let mut got = qa.query(&t).unwrap();
            let mut want = eval_nodes(&t, &a);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{s}");
        }
    }

    #[test]
    fn example_5_9_matches_one_way_acceptance() {
        let mut a = circuit_alpha();
        let qa = example_5_9(&a);
        let one_way = super::super::Nbtau::boolean_circuit(&a);
        for s in ["(AND 1 0)", "(OR 1 0 0)", "(AND (OR 1) (OR 0))"] {
            let t = from_sexpr(s, &mut a).unwrap();
            // F = Q: the two-way machine accepts every circuit; the query
            // content (selection) matches evaluation, and the root is
            // selected exactly when the one-way automaton accepts.
            let sel = qa.query(&t).unwrap();
            assert_eq!(sel.contains(&t.root()), one_way.accepts(&t), "{s}");
        }
    }

    fn leaves_alpha() -> Alphabet {
        Alphabet::from_names(["0", "1"])
    }

    /// Reference for the Proposition 5.10 query.
    fn first_one_leaves(t: &Tree, a: &Alphabet) -> Vec<NodeId> {
        let one = a.symbol("1");
        t.nodes()
            .filter(|&v| {
                t.is_leaf(v) && t.label(v) == one && {
                    match t.parent(v) {
                        None => true,
                        Some(p) => {
                            let idx = t.child_index(v);
                            t.children(p)[..idx].iter().all(|&w| t.label(w) != one)
                        }
                    }
                }
            })
            .collect()
    }

    #[test]
    fn example_5_14_selects_first_one_leaves() {
        let mut a = leaves_alpha();
        let qa = example_5_14(&a);
        assert!(qa.is_strong());
        for s in [
            "1",
            "0",
            "(0 1 1 0 1)",
            "(0 0 0)",
            "(1 0 1)",
            "(0 (0 0 1) 1 (1 1) 0)",
            "(0 (1 1 1) (0 1 0 1))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            let mut got = qa.query(&t).unwrap();
            let mut want = first_one_leaves(&t, &a);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{s}");
        }
    }

    #[test]
    fn example_5_14_on_random_trees() {
        use qa_base::rng::StdRng;
        let a = leaves_alpha();
        let qa = example_5_14(&a);
        let labels = [a.symbol("0"), a.symbol("1")];
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 3, 8, 25, 60] {
            for _ in 0..8 {
                let t = qa_trees::generate::random(&mut rng, &labels, n, None);
                let mut got = qa.query(&t).unwrap();
                let mut want = first_one_leaves(&t, &a);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "{}", t.render(&a));
            }
        }
    }

    #[test]
    fn stay_budget_is_respected() {
        let a = leaves_alpha();
        let qa = example_5_14(&a);
        let mut al = a.clone();
        let t = from_sexpr("(0 1 1 0)", &mut al).unwrap();
        let rec = qa.machine().run(&t).unwrap();
        assert_eq!(rec.stays.iter().sum::<u32>(), 1, "exactly one stay");
    }

    #[test]
    fn confluence_of_unranked_runs() {
        use qa_base::rng::Rng;
        use qa_base::rng::StdRng;
        let mut a = leaves_alpha();
        let qa = example_5_14(&a);
        let t = from_sexpr("(0 (0 1 1) (1 0) 1)", &mut a).unwrap();
        let reference = qa.machine().run(&t).unwrap();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = qa
                .machine()
                .run_scheduled(&t, qa.machine().default_fuel(&t), |n| rng.gen_range(0..n))
                .unwrap();
            assert_eq!(rec.accepted, reference.accepted);
            assert_eq!(rec.assumed, reference.assumed, "seed {seed}");
        }
    }
}
