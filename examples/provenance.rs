//! The `qa-probe` explainability layer end to end.
//!
//! Three scenarios:
//!
//! 1. the Example 3.4 string run, asking `why_selected` for the
//!    crossing-sequence certificate behind each selected position;
//! 2. the Example 5.14 strong unranked run, whose certificate carries the
//!    GSQA stay-transition evidence;
//! 3. two machines differing in one transition, diffed trace-against-trace
//!    to the first diverging configuration — plus the Chrome trace-event
//!    and Prometheus exports of the run.
//!
//! Run with: `cargo run --example provenance`

use query_automata::obs::json::parse;
use query_automata::obs::{Metrics, RunTrace, Tee};
use query_automata::prelude::*;
use query_automata::probe::{chrome_trace, first_divergence, prometheus_text};

fn main() {
    // ── 1. Example 3.4: why was each position selected? ──────────────────
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let word = sigma.word("101101");

    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_with(&word, &mut prov).unwrap();
    println!("=== Example 3.4 on 101101 ===");
    println!("selected word indices: {selected:?}");
    for &i in &selected {
        let e = prov.why_selected_word(i).expect("selected");
        println!("why index {i}?");
        print!("{}", e.render_text());
    }

    // ── 2. Example 5.14: the stay-transition certificate ─────────────────
    let qa = example_5_14(&sigma);
    let mut names = sigma.clone();
    let tree = from_sexpr("(0 0 1 (1 1) 0 1)", &mut names).unwrap();
    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_with(&tree, &mut prov).unwrap();
    println!("\n=== Example 5.14 on (0 0 1 (1 1) 0 1) ===");
    println!("selected nodes: {selected:?}");
    for e in prov.explanations() {
        print!("{}", e.render_text());
        println!("  as JSON: {}", e.to_json());
    }

    // ── 3. Diff two runs differing in one transition, then export ────────
    let original = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let variant = {
        use query_automata::twoway::{Dir, Tape};
        let one = sigma.symbol("1");
        let mut b = TwoDfaBuilder::new(sigma.len());
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, true);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s2); // original: s1
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        let mut qa = StringQa::new(b.build().unwrap());
        qa.set_selecting(s1, one, true);
        qa
    };

    let metrics = Metrics::new();
    let mut ta = RunTrace::new();
    let mut tb = RunTrace::new();
    original
        .query_with(&word, &mut Tee(&mut ta, metrics.observer()))
        .unwrap();
    variant.query_with(&word, &mut tb).unwrap();

    println!("\n=== Diffing original vs one-transition variant ===");
    let a = parse(&ta.to_json()).unwrap();
    let b = parse(&tb.to_json()).unwrap();
    match first_divergence(&a, &b).unwrap() {
        None => println!("traces identical"),
        Some(d) => {
            println!("first divergence at step {}:", d.index);
            println!("  original: {:?}", d.a);
            println!("  variant:  {:?}", d.b);
        }
    }

    println!("\n=== Chrome trace-event export (load in ui.perfetto.dev) ===");
    println!("{}", chrome_trace(&ta));
    println!("=== Prometheus text exposition ===");
    print!("{}", prometheus_text(&metrics, "qa"));
}
