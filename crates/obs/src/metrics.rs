//! The shared [`Metrics`] registry: atomic counters plus fixed-bucket
//! histograms, serializable to JSON by hand.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, ObjectWriter};
use crate::observer::{Counter, Observer, Series};

/// Buckets per histogram: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A lock-free power-of-two histogram.
///
/// All updates use relaxed atomics: the registry tracks aggregate workload
/// statistics, not synchronization-sensitive state, and relaxed increments
/// keep the observed hot loops cheap.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for `value` under the power-of-two scheme.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let i = 64 - value.leading_zeros() as usize;
        i.min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample counts per power-of-two bucket (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn write_json(&self, w: &mut ObjectWriter) {
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", self.min);
        w.field_u64("max", self.max);
        w.field_f64("mean", self.mean());
        // Drop the empty tail so reports stay short.
        let used = HISTOGRAM_BUCKETS - self.buckets.iter().rev().take_while(|&&b| b == 0).count();
        w.field_u64_array("buckets", self.buckets[..used].iter().copied());
    }
}

/// Registry of every [`Counter`] and [`Series`] histogram, shareable across
/// threads (all interior mutability is relaxed atomics).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: [AtomicU64; Counter::COUNT],
    series: [Histogram; Series::COUNT],
}

impl Metrics {
    /// Fresh registry with everything at zero.
    pub fn new() -> Self {
        Metrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            series: std::array::from_fn(|_| Histogram::default()),
        }
    }

    /// Bump `counter` by `n`.
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Record one sample into `series`.
    #[inline]
    pub fn record(&self, series: Series, value: u64) {
        self.series[series.index()].record(value);
    }

    /// Snapshot of the histogram behind `series`.
    pub fn histogram(&self, series: Series) -> HistogramSnapshot {
        self.series[series.index()].snapshot()
    }

    /// Borrow an [`Observer`] that feeds this registry.
    pub fn observer(&self) -> MetricsObserver<'_> {
        MetricsObserver { metrics: self }
    }

    /// Reset every counter and histogram to zero.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.series {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.min.store(u64::MAX, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
    }

    /// Serialize the registry:
    /// `{"counters": {name: value, …}, "series": {name: {count, sum, min,
    /// max, mean, buckets}, …}}`. Counters at zero and empty series are
    /// omitted.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            let counters = json::object(|cw| {
                for c in Counter::ALL {
                    let v = self.get(c);
                    if v != 0 {
                        cw.field_u64(c.name(), v);
                    }
                }
            });
            w.field_raw("counters", &counters);
            let series = json::object(|sw| {
                for s in Series::ALL {
                    let snap = self.histogram(s);
                    if snap.count != 0 {
                        sw.field_raw(s.name(), &json::object(|hw| snap.write_json(hw)));
                    }
                }
            });
            w.field_raw("series", &series);
        })
    }
}

/// [`Observer`] adapter writing into a shared [`Metrics`] registry.
#[derive(Debug)]
pub struct MetricsObserver<'a> {
    metrics: &'a Metrics,
}

impl Observer for MetricsObserver<'_> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.metrics.count(counter, n);
    }

    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.metrics.record(series, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counter_arithmetic() {
        let m = Metrics::new();
        m.count(Counter::Steps, 3);
        m.count(Counter::Steps, 4);
        m.count(Counter::BudgetTrips, 1);
        assert_eq!(m.get(Counter::Steps), 7);
        assert_eq!(m.get(Counter::BudgetTrips), 1);
        assert_eq!(m.get(Counter::HeadReversals), 0);
        m.reset();
        assert_eq!(m.get(Counter::Steps), 0);
    }

    #[test]
    fn histogram_arithmetic() {
        let m = Metrics::new();
        for v in [0u64, 1, 1, 5, 16] {
            m.record(Series::TraceLength, v);
        }
        let h = m.histogram(Series::TraceLength);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 23);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 16);
        assert!((h.mean() - 4.6).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the 0
        assert_eq!(h.buckets[1], 2); // the two 1s
        assert_eq!(h.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets[5], 1); // 16 ∈ [16, 32)
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = Metrics::new().histogram(Series::RunSteps);
        assert_eq!((h.count, h.min, h.max), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_shape_omits_zeroes() {
        let m = Metrics::new();
        assert_eq!(m.to_json(), r#"{"counters":{},"series":{}}"#);
        m.count(Counter::Steps, 11);
        m.record(Series::TraceLength, 1);
        m.record(Series::TraceLength, 3);
        let j = m.to_json();
        assert_eq!(
            j,
            concat!(
                r#"{"counters":{"steps":11},"#,
                r#""series":{"trace_length":{"count":2,"sum":4,"min":1,"max":3,"#,
                r#""mean":2.0,"buckets":[0,1,1]}}}"#
            )
        );
    }

    #[test]
    fn observer_feeds_registry() {
        let m = Metrics::new();
        {
            let mut o = m.observer();
            o.count(Counter::StayRounds, 2);
            o.record(Series::StaysPerNode, 9);
        }
        assert_eq!(m.get(Counter::StayRounds), 2);
        assert_eq!(m.histogram(Series::StaysPerNode).max, 9);
    }
}
