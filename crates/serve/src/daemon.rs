//! [`ServeDaemon`]: the resident serving process behind `qa-serve`.
//!
//! One daemon owns the four moving parts and wires them behind a pulse
//! HTTP surface:
//!
//! - a [`DocStore`] under an `RwLock` (many concurrent readers for
//!   evaluation, one writer per ingest);
//! - a [`QueryCache`] under a `Mutex` (compile-once, LRU-bounded);
//! - a [`qa_par::WorkPool`] the evaluations dispatch onto, whose
//!   [`queue_depth`](qa_par::WorkPool::queue_depth) drives admission
//!   control — past [`ServeConfig::queue_depth`] a request is shed with
//!   `429 Retry-After` instead of queueing unbounded work;
//! - a [`qa_sentinel::SharedSentinel`] scraping the served [`Metrics`]
//!   registry on a background loop, so `/series` and `/alerts` watch the
//!   serving SLOs (shed ratio, budget trips) out of the box.
//!
//! Every evaluation runs under a per-request
//! [`Watchdog`] budget
//! ([`ServeConfig::max_steps`] / [`ServeConfig::max_wall_ms`]): a
//! runaway query aborts gracefully inside its worker and the client gets
//! `408` with the tripped budget, never a hung connection.
//!
//! Two observability surfaces ride on every served query:
//!
//! - **Wide events.** Each `POST /query` that reaches evaluation emits
//!   one [`JobEvent`] line — identity, document shape, exact per-request
//!   work counters, outcome — into the `/events` ring and (when
//!   [`ServeConfig::events_path`] is set) an `events.jsonl` file that
//!   `qa-trace analyze top|slow` reads exactly like a fleet's.
//! - **EXPLAIN ANALYZE.** `"explain": true` attaches a
//!   [`ScopeProfiler`] to the request's observer chain and returns the
//!   per-state profile (hot/cold/dead states, transition heat map,
//!   phase attribution) inline as the response's `"explain"` field.
//!   Profiles also accumulate per query hash, served live by
//!   `GET /explain?query=<hash-or-registered-id>`.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use qa_base::Alphabet;
use qa_flight::{Budget, JobEvent, Sampled, SharedEvents, Watchdog};
use qa_obs::json::{self, Value};
use qa_obs::{Counter, Metrics, NoopObserver, Series, Tee, TraceContext};
use qa_par::WorkPool;
use qa_pulse::{ApiRequest, ApiResponse, PulseServer, PulseState};
use qa_scope::ScopeProfiler;
use qa_sentinel::SharedSentinel;
use qa_trees::Tree;

use crate::cache::QueryCache;
use crate::store::DocStore;

/// Serving SLO rules the daemon loads when no rules file is given: page
/// when admission control sheds more than 10% of offered load (two-window
/// burn rate over the served counters), and when any per-request budget
/// trips at all.
pub const DEFAULT_SLO_RULES: &str = "\
alert shed-rate burnrate qa_serve_requests_shed_total / qa_serve_http_requests_total \
objective 0.10 fast 6 slow 36 for 2
alert budget-trips threshold qa_serve_budget_trips_total > 0 for 0
alert no-traffic absent qa_serve_http_requests_total for 10
";

/// Configuration for [`ServeDaemon::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Evaluation workers in the work-stealing pool.
    pub eval_workers: usize,
    /// HTTP connection threads (requests parsed/answered concurrently).
    pub http_threads: usize,
    /// Admission bound: shed with `429` once this many evaluations are
    /// queued but not yet started.
    pub queue_depth: usize,
    /// Compiled queries the LRU cache retains.
    pub cache_capacity: usize,
    /// Per-request step budget (`Counter::Steps` of the two-pass run).
    pub max_steps: u64,
    /// Per-request wall-clock budget in milliseconds.
    pub max_wall_ms: u64,
    /// Sentinel rules text; `None` loads [`DEFAULT_SLO_RULES`].
    pub slo_rules: Option<String>,
    /// Background scrape period for the sentinel, in milliseconds
    /// (0 disables the scrape loop; `/series` stays empty).
    pub scrape_every_ms: u64,
    /// When set, append one [`JobEvent`] JSON line per served query to
    /// this file (created fresh at daemon start) — the serving
    /// equivalent of the fleet's `events.jsonl`, readable by
    /// `qa-trace analyze`.
    pub events_path: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            eval_workers: 4,
            http_threads: 8,
            queue_depth: 64,
            cache_capacity: 128,
            max_steps: 50_000_000,
            max_wall_ms: 5_000,
            slo_rules: None,
            scrape_every_ms: 250,
            events_path: None,
        }
    }
}

/// Run id stamped on every wide event the daemon emits.
const SERVE_RUN_ID: &str = "qa-serve";

/// Wide events the `/events` ring retains.
const EVENT_RING_CAPACITY: usize = 1024;

/// Registered query ids (`POST /query` with `"register"`).
type Registry = Mutex<std::collections::BTreeMap<String, String>>;

struct Core {
    store: RwLock<DocStore>,
    cache: Mutex<QueryCache>,
    registered: Registry,
    pool: WorkPool,
    metrics: Arc<Metrics>,
    /// Accumulated per-state profiles, keyed by query hash (`{:016x}`).
    /// Only `"explain": true` requests deposit here, so the cost is
    /// strictly opt-in per request.
    scopes: Mutex<std::collections::BTreeMap<String, ScopeProfiler>>,
    /// Live tail behind the pulse `/events` endpoint.
    events: SharedEvents,
    /// Optional `events.jsonl` sink ([`ServeConfig::events_path`]).
    events_file: Option<Mutex<std::fs::File>>,
    /// Monotonic job index for event identity (trace/span minting).
    seq: AtomicU64,
    /// Daemon start, the zero point for event `start_ns`.
    started: Instant,
    cfg: ServeConfig,
}

/// Handle to a running serving daemon; see the module docs.
pub struct ServeDaemon {
    server: PulseServer,
    state: Arc<PulseState>,
    core: Arc<Core>,
    sentinel: Option<SharedSentinel>,
    scrape_stop: Arc<AtomicBool>,
    scrape_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeDaemon {
    /// Bind and start serving. The returned daemon is already `/readyz`.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServeDaemon> {
        let metrics = Arc::new(Metrics::new());
        let rules_text = cfg
            .slo_rules
            .clone()
            .unwrap_or_else(|| DEFAULT_SLO_RULES.to_string());
        let rules = qa_sentinel::parse_rules(&rules_text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let events_file = match &cfg.events_path {
            Some(path) => Some(Mutex::new(std::fs::File::create(path)?)),
            None => None,
        };
        let core = Arc::new(Core {
            store: RwLock::new(DocStore::new()),
            cache: Mutex::new(QueryCache::new(cfg.cache_capacity)),
            registered: Mutex::new(std::collections::BTreeMap::new()),
            pool: WorkPool::new(cfg.eval_workers),
            metrics: Arc::clone(&metrics),
            scopes: Mutex::new(std::collections::BTreeMap::new()),
            events: SharedEvents::with_capacity(EVENT_RING_CAPACITY),
            events_file,
            seq: AtomicU64::new(0),
            started: Instant::now(),
            cfg: cfg.clone(),
        });
        let state = PulseState::new(Arc::clone(&metrics), "qa_serve");
        let sentinel = SharedSentinel::new(rules);
        {
            let src = sentinel.clone();
            state.set_series_source(Box::new(move |name, tail| src.series_json(name, tail)));
            let src = sentinel.clone();
            state.set_alerts_source(Box::new(move || src.alerts_json()));
        }
        {
            let ring = core.events.clone();
            state.set_events_source(Box::new(move |n| ring.tail_jsonl(n)));
            let explain_core = Arc::clone(&core);
            state.set_explain_source(Box::new(move |query, json| {
                explain_core.explain_body(query, json)
            }));
        }
        let handler_core = Arc::clone(&core);
        state.set_api_handler(Arc::new(move |req| handle(&handler_core, req)));
        let server = PulseServer::serve_pooled(&cfg.listen, Arc::clone(&state), cfg.http_threads)?;
        // Background sentinel scrape: logical ticks over the shared
        // registry, same discipline as the fleet's in-process loop.
        let scrape_stop = Arc::new(AtomicBool::new(false));
        let scrape_thread = if cfg.scrape_every_ms > 0 {
            let stop = Arc::clone(&scrape_stop);
            let s = sentinel.clone();
            let m = Arc::clone(&metrics);
            let every = Duration::from_millis(cfg.scrape_every_ms);
            Some(
                std::thread::Builder::new()
                    .name("qa-serve-scrape".to_string())
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            s.scrape(&m, "qa_serve", &Vec::new());
                            std::thread::sleep(every);
                        }
                    })?,
            )
        } else {
            None
        };
        state.set_ready();
        Ok(ServeDaemon {
            server,
            state,
            core,
            sentinel: Some(sentinel),
            scrape_stop,
            scrape_thread,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The served metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        self.core.metrics()
    }

    /// The pulse state behind the HTTP surface.
    pub fn state(&self) -> &Arc<PulseState> {
        &self.state
    }

    /// The wide-event ring behind `GET /events`.
    pub fn events(&self) -> &SharedEvents {
        &self.core.events
    }

    /// Names of the sentinel alerts currently firing.
    pub fn firing(&self) -> Vec<String> {
        self.sentinel
            .as_ref()
            .map(|s| s.firing())
            .unwrap_or_default()
    }

    /// Whether the HTTP accept loop is still running (it exits on
    /// `GET /quit`).
    pub fn is_running(&self) -> bool {
        self.server.is_running()
    }

    /// Stop the scrape loop, the HTTP server and the worker pool.
    pub fn shutdown(mut self) {
        self.scrape_stop.store(true, Ordering::Release);
        if let Some(handle) = self.scrape_thread.take() {
            let _ = handle.join();
        }
        self.server.shutdown();
    }
}

impl Core {
    fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Resolve one `GET /explain` request. `query` is a 16-hex query
    /// hash or a registered id; `None` merges every accumulated profile.
    /// Returns `None` for an unknown query (the pulse layer answers 404).
    fn explain_body(&self, query: Option<&str>, json: bool) -> Option<String> {
        let render = |p: &ScopeProfiler| {
            if json {
                p.explain_run().to_json()
            } else {
                p.explain_run().render_text()
            }
        };
        let scopes = self.scopes.lock().expect("scope lock poisoned");
        match query {
            None => {
                let mut merged = ScopeProfiler::new();
                for p in scopes.values() {
                    merged.merge(p);
                }
                Some(render(&merged))
            }
            Some(name) => {
                // A registered id resolves to its formula's hash; anything
                // else is taken as the hash key itself.
                let key = self
                    .registered
                    .lock()
                    .expect("registry lock poisoned")
                    .get(name)
                    .map(|f| format!("{:016x}", qa_obs::fnv1a64(f.trim().as_bytes())))
                    .unwrap_or_else(|| name.to_string());
                scopes.get(&key).map(render)
            }
        }
    }

    /// Push one served query's wide event to the `/events` ring and the
    /// `events.jsonl` sink when configured.
    fn emit_event(&self, event: JobEvent) {
        if let Some(file) = &self.events_file {
            let mut f = file.lock().expect("events file lock poisoned");
            let _ = writeln!(f, "{}", event.to_json());
        }
        self.events.push(event);
    }
}

/// Route one request; `None` declines to the server's own 404/405.
fn handle(core: &Arc<Core>, req: &ApiRequest) -> Option<ApiResponse> {
    let response = match (req.method.as_str(), req.route.as_str()) {
        ("PUT", "/doc") => put_doc(core, req),
        ("POST", "/query") => post_query(core, req),
        ("GET", "/docs") => get_docs(core),
        ("GET", "/queries") => get_queries(core),
        _ => return None,
    };
    core.metrics.count(Counter::HttpRequests, 1);
    Some(response)
}

fn error_json(status: u16, message: &str) -> ApiResponse {
    ApiResponse::json(
        status,
        json::object(|w| {
            w.field_str("error", message);
        }),
    )
}

fn put_doc(core: &Arc<Core>, req: &ApiRequest) -> ApiResponse {
    let started = Instant::now();
    let Some(name) = req.param("name").filter(|n| !n.is_empty()) else {
        return error_json(400, "PUT /doc needs a ?name=<doc> query parameter");
    };
    if req.body.trim().is_empty() {
        return error_json(400, "PUT /doc needs the document text as request body");
    }
    let receipt = {
        let mut store = core.store.write().expect("store lock poisoned");
        store.ingest(name, &req.body)
    };
    match receipt {
        Ok(r) => {
            core.metrics.count(Counter::DocIngests, 1);
            core.metrics
                .record(Series::IngestMicros, started.elapsed().as_micros() as u64);
            ApiResponse::json(
                200,
                json::object(|w| {
                    w.field_str("name", name);
                    w.field_u64("id", r.id as u64);
                    w.field_str("fingerprint", &format!("{:016x}", r.fingerprint));
                    w.field_u64("nodes", r.nodes as u64);
                    w.field_u64("height", r.height as u64);
                    w.field_bool("updated", r.updated);
                }),
            )
        }
        Err(e) => error_json(422, &format!("ingest failed: {e}")),
    }
}

/// The parsed body of one `POST /query`.
struct QueryRequest {
    formula: Option<String>,
    id: Option<String>,
    doc: Option<String>,
    register: Option<String>,
    why: bool,
    explain: bool,
}

fn parse_query_body(body: &str) -> Result<QueryRequest, String> {
    let value = json::parse(body).map_err(|e| format!("request body is not JSON: {e}"))?;
    let text = |key: &str| -> Option<String> {
        value.get(key).and_then(Value::as_str).map(str::to_string)
    };
    let flag = |key: &str| matches!(value.get(key), Some(Value::Bool(true)));
    Ok(QueryRequest {
        formula: text("formula"),
        id: text("id"),
        doc: text("doc"),
        register: text("register"),
        why: flag("why"),
        explain: flag("explain"),
    })
}

fn post_query(core: &Arc<Core>, req: &ApiRequest) -> ApiResponse {
    let started = Instant::now();
    let parsed = match parse_query_body(&req.body) {
        Ok(p) => p,
        Err(e) => return error_json(400, &e),
    };
    // Resolve the formula text: inline, or a pre-registered id.
    let formula = match (&parsed.formula, &parsed.id) {
        (Some(f), _) => f.clone(),
        (None, Some(id)) => {
            let registered = core.registered.lock().expect("registry lock poisoned");
            match registered.get(id) {
                Some(f) => f.clone(),
                None => return error_json(404, &format!("no registered query `{id}`")),
            }
        }
        (None, None) => return error_json(400, "POST /query needs `formula` or `id`"),
    };
    // Admission control: shed before compiling or queueing anything.
    let backlog = core.pool.queue_depth();
    if backlog >= core.cfg.queue_depth {
        core.metrics.count(Counter::RequestsShed, 1);
        return error_json(429, &format!("evaluation backlog {backlog} at capacity"))
            .retry_after(1);
    }
    // Compile (or fetch) the query under the store's write lock so the
    // shared alphabet and the compiled σ stay coherent.
    let compiled = {
        let mut store = core.store.write().expect("store lock poisoned");
        let mut cache = core.cache.lock().expect("cache lock poisoned");
        cache.compile(&formula, store.alphabet_mut(), Some(&core.metrics))
    };
    let compiled = match compiled {
        Ok(c) => c,
        Err(e) => return error_json(422, &format!("compile failed: {e}")),
    };
    if let Some(id) = &parsed.register {
        core.registered
            .lock()
            .expect("registry lock poisoned")
            .insert(id.clone(), compiled.formula.clone());
    }
    // Registration without a target document compiles and returns.
    let Some(doc_name) = &parsed.doc else {
        if parsed.register.is_none() {
            return error_json(400, "POST /query needs a `doc` (or a `register` id)");
        }
        return ApiResponse::json(
            200,
            json::object(|w| {
                w.field_str("registered", parsed.register.as_deref().unwrap_or(""));
                w.field_str("query", &format!("{:016x}", compiled.hash));
                w.field_u64("states", compiled.states as u64);
                w.field_u64("sigma", compiled.sigma as u64);
            }),
        );
    };
    let (tree, labels, doc_id, doc_depth): (Arc<Tree>, Alphabet, usize, usize) = {
        let store = core.store.read().expect("store lock poisoned");
        match (store.get(doc_name), store.id_of(doc_name)) {
            (Some(doc), Some(id)) => (
                Arc::clone(&doc.tree),
                store.alphabet().clone(),
                id,
                doc.height,
            ),
            _ => return error_json(404, &format!("no document `{doc_name}`")),
        }
    };
    // Dispatch onto the work-stealing pool under a per-request budget.
    // The chain tees the shared registry (daemon-lifetime totals), a
    // per-request registry (the wide event's exact counters), and — for
    // `"explain": true` — a per-state profiler; NoopObserver keeps the
    // scope arm zero-cost for everyone else.
    let budget = Budget::steps(core.cfg.max_steps)
        .with_wall(Duration::from_millis(core.cfg.max_wall_ms))
        .with_wall_poll_every(64);
    let (tx, rx) = mpsc::channel();
    let job_metrics = Arc::clone(&core.metrics);
    let req_metrics = Arc::new(Metrics::new());
    let job_req_metrics = Arc::clone(&req_metrics);
    let job_query = Arc::clone(&compiled);
    let job_tree = Arc::clone(&tree);
    let why = parsed.why;
    let explain = parsed.explain;
    let submitted = core.pool.submit(Box::new(move || {
        let scope_arm = if explain {
            Sampled::Full(ScopeProfiler::new())
        } else {
            Sampled::Light(NoopObserver)
        };
        let mut dog = Watchdog::new(
            Tee(
                job_metrics.observer(),
                Tee(job_req_metrics.observer(), scope_arm),
            ),
            budget,
        );
        let explained = if why {
            job_query
                .prepared
                .eval_unranked_explained(&job_tree, &mut dog)
        } else {
            job_query
                .prepared
                .eval_unranked_with(&job_tree, &mut dog)
                .into_iter()
                .map(|v| (v, 0))
                .collect()
        };
        let tripped = dog.tripped();
        if tripped.is_some() {
            job_metrics.count(Counter::BudgetTrips, 1);
        }
        let Tee(_, Tee(_, scope_arm)) = dog.into_inner();
        let _ = tx.send((explained, tripped, scope_arm.full()));
    }));
    if !submitted {
        return error_json(503, "daemon is shutting down");
    }
    // The budget bounds the evaluation; the recv deadline only guards
    // against a lost worker, so it can be generous.
    let deadline = Duration::from_millis(core.cfg.max_wall_ms.saturating_mul(4).max(1_000) + 5_000);
    let (explained, tripped, scope) = match rx.recv_timeout(deadline) {
        Ok(result) => result,
        Err(_) => return error_json(500, "evaluation worker lost"),
    };
    // Accumulate the profile under the query's hash (partial profiles of
    // tripped runs included — an aborted run's heat map is exactly what
    // EXPLAIN is for).
    if let Some(sp) = &scope {
        core.scopes
            .lock()
            .expect("scope lock poisoned")
            .entry(format!("{:016x}", compiled.hash))
            .or_default()
            .merge(sp);
    }
    // One wide event per evaluation, aborted or not.
    let job = core.seq.fetch_add(1, Ordering::Relaxed) as usize;
    let ctx = TraceContext::mint(SERVE_RUN_ID, job);
    core.emit_event(JobEvent {
        run: SERVE_RUN_ID.to_string(),
        trace: ctx.trace_hex(),
        span: ctx.span_hex(),
        job,
        query: parsed
            .id
            .clone()
            .or_else(|| parsed.register.clone())
            .unwrap_or_else(|| format!("{:016x}", compiled.hash)),
        query_index: 0,
        doc_index: doc_id,
        doc_nodes: tree.num_nodes(),
        doc_depth,
        steps: req_metrics.get(Counter::Steps),
        reversals: req_metrics.get(Counter::HeadReversals),
        cache_hits: req_metrics.get(Counter::CacheHits),
        cache_misses: req_metrics.get(Counter::CacheMisses),
        budget_trips: u64::from(tripped.is_some()),
        selected: explained.len(),
        sampled: explain,
        outcome: match &tripped {
            Some(abort) => format!("aborted: {abort}"),
            None => "ok".to_string(),
        },
        worker: "serve".to_string(),
        shard: "0/1".to_string(),
        start_ns: started.duration_since(core.started).as_nanos() as u64,
        wall_ns: started.elapsed().as_nanos() as u64,
    });
    if let Some(abort) = tripped {
        return error_json(
            408,
            &format!(
                "budget exceeded: {} = {} over limit {}",
                abort.what, abort.actual, abort.limit
            ),
        );
    }
    let micros = started.elapsed().as_micros() as u64;
    core.metrics.record(Series::QueryMicros, micros);
    ApiResponse::json(
        200,
        json::object(|w| {
            w.field_str("doc", doc_name);
            w.field_str("query", &format!("{:016x}", compiled.hash));
            w.field_u64("sigma", compiled.sigma as u64);
            w.field_u64("states", compiled.states as u64);
            w.field_u64("count", explained.len() as u64);
            w.field_u64_array("selected", explained.iter().map(|(v, _)| v.index() as u64));
            if why {
                w.field_raw(
                    "why_selected",
                    &json::array(explained.iter().map(|(v, state)| {
                        json::object(|w| {
                            w.field_u64("node", v.index() as u64);
                            w.field_u64("marked_state", u64::from(*state));
                            w.field_str("label", labels.name(tree.label(*v)));
                        })
                    })),
                );
            }
            if let Some(sp) = &scope {
                w.field_raw("explain", &sp.explain_run().to_json());
            }
            w.field_u64("micros", micros);
        }),
    )
}

fn get_docs(core: &Arc<Core>) -> ApiResponse {
    let store = core.store.read().expect("store lock poisoned");
    let body = json::object(|w| {
        w.field_u64("count", store.len() as u64);
        w.field_u64("sigma", store.alphabet().len() as u64);
        w.field_raw(
            "docs",
            &json::array(store.docs().iter().enumerate().map(|(id, d)| {
                json::object(|w| {
                    w.field_u64("id", id as u64);
                    w.field_str("name", &d.name);
                    w.field_str("fingerprint", &format!("{:016x}", d.fingerprint));
                    w.field_u64("nodes", d.nodes as u64);
                    w.field_u64("height", d.height as u64);
                })
            })),
        );
    });
    ApiResponse::json(200, body)
}

fn get_queries(core: &Arc<Core>) -> ApiResponse {
    let sigma = core
        .store
        .read()
        .expect("store lock poisoned")
        .alphabet()
        .len();
    let registered = core.registered.lock().expect("registry lock poisoned");
    let cache = core.cache.lock().expect("cache lock poisoned");
    let (hits, misses, evictions) = cache.stats();
    // Resident compiled automata by hash, so registered ids can report
    // their state count without forcing a compile.
    let resident: std::collections::BTreeMap<u64, (usize, usize)> = cache
        .entries()
        .map(|(q, _)| (q.hash, (q.states, q.sigma)))
        .collect();
    let body = json::object(|w| {
        w.field_u64("sigma", sigma as u64);
        w.field_raw(
            "registered",
            &json::array(registered.iter().map(|(id, formula)| {
                let hash = qa_obs::fnv1a64(formula.trim().as_bytes());
                json::object(|w| {
                    w.field_str("id", id);
                    w.field_str("formula", formula);
                    w.field_str("query", &format!("{hash:016x}"));
                    if let Some(&(states, sigma)) = resident.get(&hash) {
                        w.field_u64("states", states as u64);
                        w.field_u64("sigma", sigma as u64);
                    }
                })
            })),
        );
        w.field_raw(
            "compiled",
            &json::array(cache.entries().map(|(q, entry_hits)| {
                json::object(|w| {
                    w.field_str("query", &format!("{:016x}", q.hash));
                    w.field_str("formula", &q.formula);
                    w.field_u64("sigma", q.sigma as u64);
                    w.field_u64("states", q.states as u64);
                    w.field_u64("hits", entry_hits);
                })
            })),
        );
        w.field_u64("hits", hits);
        w.field_u64("misses", misses);
        w.field_u64("evictions", evictions);
    });
    ApiResponse::json(200, body)
}
