//! E3 (Figure 6 / Theorem 5.17): unranked unary-query evaluation — the
//! two-pass algorithm over the FCNS encoding is linear, naive quadratic;
//! the hand-built Example 5.14 SQAu run sits in between (linear, bigger
//! constant from the cut engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_fig6_unranked_eval");
    let sigma = qa_bench::binary_alphabet();
    let mut a = sigma.clone();
    let phi = qa_mso::parse(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a,
    )
    .unwrap();
    let d = qa_mso::unranked::compile_unary(&phi, "v", 2).unwrap();
    let sqa = qa_core::unranked::query::example_5_14(&sigma);

    for n in [50usize, 200, 800] {
        let t = qa_bench::random_binary_labeled(n, 7 + n as u64);
        group.bench_with_input(BenchmarkId::new("fig6_two_pass", n), &t, |b, t| {
            b.iter(|| qa_mso::query_eval::eval_unary_unranked(&d, t, 2).len())
        });
        group.bench_with_input(BenchmarkId::new("sqau_run", n), &t, |b, t| {
            b.iter(|| sqa.query(t).unwrap().len())
        });
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("naive_per_node", n), &t, |b, t| {
                b.iter(|| qa_mso::query_eval::eval_unary_unranked_naive(&d, t, 2).len())
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
