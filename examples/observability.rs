//! The `qa-obs` instrumentation layer end to end.
//!
//! Three scenarios, each observed a different way:
//!
//! 1. the Example 3.4 two-way string run, captured as a full
//!    configuration-by-configuration [`RunTrace`] (head reversals included);
//! 2. a Figure 5 two-pass ranked MSO evaluation, with per-phase wall-clock
//!    timings and table-lookup counts;
//! 3. a Theorem 6.3 query non-emptiness check, with summary-fixpoint and
//!    witness-materialization metrics.
//!
//! The final output is a single JSON run report assembled with
//! `qa_obs::json` — no serde anywhere.
//!
//! Run with: `cargo run --example observability`

use query_automata::obs::json;
use query_automata::obs::{Metrics, RunTrace, Tee};
use query_automata::prelude::*;

fn main() {
    // ── 1. Example 3.4: trace the literal two-way run ────────────────────
    // "select every 1 at an odd position from the right": the head runs to
    // the right endmarker, comes back counting parity, so every run has
    // exactly one head reversal.
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let word: Vec<Symbol> = [1u32, 0, 1, 1, 0, 1]
        .iter()
        .map(|&i| Symbol::from_index(i as usize))
        .collect();

    let mut trace = RunTrace::new();
    let selected = qa.query_with(&word, &mut trace).unwrap();
    println!("=== Example 3.4 on 101101 ===");
    println!("selected positions: {selected:?}");
    print!("{}", trace.render_text());
    let string_report = trace.to_json();

    // ── 2. Figure 5: two-pass ranked MSO evaluation ──────────────────────
    // Compile "v is a leaf and the root is labeled s" and evaluate it on a
    // complete binary tree with the linear two-pass algorithm. A Tee feeds
    // the same events to a Metrics registry (counters + histograms) and a
    // RunTrace (per-phase wall-clock).
    let mut a = Alphabet::from_names(["s", "t"]);
    let phi = parse_mso("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
    let d = query_automata::mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
    let tree = query_automata::trees::generate::complete(a.symbol("s"), 2, 10);

    let fig5_metrics = Metrics::new();
    let mut fig5_trace = RunTrace::new();
    let selected = {
        let mut tee = Tee(fig5_metrics.observer(), &mut fig5_trace);
        query_automata::mso::query_eval::eval_unary_ranked_with(&d, &tree, 2, &mut tee)
    };
    println!("\n=== Figure 5 ranked evaluation ===");
    println!("selected {} of {} nodes", selected.len(), tree.num_nodes());
    for p in &fig5_trace.phases {
        println!("  [{}] {:.3} ms", p.name, p.elapsed.as_secs_f64() * 1e3);
    }

    // ── 3. Theorem 6.3: query non-emptiness ──────────────────────────────
    // Is there a circuit on which the Example 4.4 query selects some node?
    // The decision procedure saturates a summary fixpoint, then materializes
    // a witness tree.
    let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let ranked_qa = example_4_4(&circuits);
    let ne_metrics = Metrics::new();
    let mut ne_trace = RunTrace::new();
    let witness = {
        let mut tee = Tee(ne_metrics.observer(), &mut ne_trace);
        query_automata::decision::ranked_decisions::non_emptiness_with(
            &ranked_qa,
            query_automata::decision::ranked_decisions::DEFAULT_MAX_ITEMS,
            &mut tee,
        )
        .unwrap()
    };
    println!("\n=== Theorem 6.3 non-emptiness ===");
    match &witness {
        Some(w) => println!(
            "non-empty; witness: {} selecting node {:?}",
            to_sexpr(&w.tree, &circuits),
            w.node
        ),
        None => println!("empty query"),
    }

    // ── the combined JSON run report ─────────────────────────────────────
    let report = json::object(|w| {
        w.field_raw("example_3_4_run", &string_report);
        w.field_raw(
            "fig5_ranked_eval",
            &json::object(|s| {
                s.field_raw("metrics", &fig5_metrics.to_json());
                s.field_raw("trace", &fig5_trace.to_json());
            }),
        );
        w.field_raw(
            "thm_6_3_nonemptiness",
            &json::object(|s| {
                s.field_bool("nonempty", witness.is_some());
                s.field_raw("metrics", &ne_metrics.to_json());
                s.field_raw("trace", &ne_trace.to_json());
            }),
        );
    });
    println!("\n=== JSON run report ===");
    println!("{report}");
}
