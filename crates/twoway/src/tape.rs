//! Endmarked tapes `⊳ w ⊲`.

use qa_base::Symbol;

/// A tape cell: the left endmarker `⊳`, the right endmarker `⊲`, or a real
/// input symbol.
///
/// Cells have a dense encoding (`0 = ⊳`, `1 = ⊲`, `2 + i` for symbol `i`)
/// so 2DFA transition tables can be flat arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tape {
    /// `⊳` — to the left of the first input symbol. Machines may not move
    /// left from it.
    LeftMarker,
    /// `⊲` — to the right of the last input symbol. Machines may not move
    /// right from it.
    RightMarker,
    /// A real input symbol.
    Sym(Symbol),
}

impl Tape {
    /// Dense encoding for table indexing over an alphabet of `alphabet_len`
    /// symbols: `0 = ⊳`, `1 = ⊲`, `2 + i` for symbol `i`.
    #[inline]
    pub fn encode(self) -> usize {
        match self {
            Tape::LeftMarker => 0,
            Tape::RightMarker => 1,
            Tape::Sym(s) => 2 + s.index(),
        }
    }

    /// Number of distinct tape cells over an alphabet of `alphabet_len`.
    #[inline]
    pub fn table_len(alphabet_len: usize) -> usize {
        alphabet_len + 2
    }

    /// The cell at `pos` of the endmarked tape for `word`
    /// (`pos = 0` is `⊳`, `pos = word.len() + 1` is `⊲`).
    #[inline]
    pub fn at(word: &[Symbol], pos: usize) -> Tape {
        if pos == 0 {
            Tape::LeftMarker
        } else if pos == word.len() + 1 {
            Tape::RightMarker
        } else {
            Tape::Sym(word[pos - 1])
        }
    }

    /// The real symbol, if this cell is one.
    #[inline]
    pub fn symbol(self) -> Option<Symbol> {
        match self {
            Tape::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Render for diagnostics.
    pub fn render(self, alphabet: &qa_base::Alphabet) -> String {
        match self {
            Tape::LeftMarker => "⊳".to_owned(),
            Tape::RightMarker => "⊲".to_owned(),
            Tape::Sym(s) => alphabet.name(s).to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_dense_and_injective() {
        assert_eq!(Tape::LeftMarker.encode(), 0);
        assert_eq!(Tape::RightMarker.encode(), 1);
        assert_eq!(Tape::Sym(Symbol::from_index(0)).encode(), 2);
        assert_eq!(Tape::Sym(Symbol::from_index(3)).encode(), 5);
        assert_eq!(Tape::table_len(4), 6);
    }

    #[test]
    fn at_reads_markers_and_symbols() {
        let w = vec![Symbol::from_index(7), Symbol::from_index(8)];
        assert_eq!(Tape::at(&w, 0), Tape::LeftMarker);
        assert_eq!(Tape::at(&w, 1), Tape::Sym(Symbol::from_index(7)));
        assert_eq!(Tape::at(&w, 2), Tape::Sym(Symbol::from_index(8)));
        assert_eq!(Tape::at(&w, 3), Tape::RightMarker);
    }

    #[test]
    fn symbol_projection() {
        assert_eq!(Tape::LeftMarker.symbol(), None);
        assert_eq!(
            Tape::Sym(Symbol::from_index(1)).symbol(),
            Some(Symbol::from_index(1))
        );
    }
}
