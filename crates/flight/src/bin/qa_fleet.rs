//! `qa-fleet`: batch runner with always-on telemetry.
//!
//! Runs M example queries × K generated documents, each under a
//! [`Watchdog`] with a [`FlightRecorder`] black box, aggregates per-run
//! [`Metrics`] into one fleet profile, and exports:
//!
//! - `metrics.prom` — Prometheus text exposition of the merged registry
//!   (plus `qa_build_info` and `qa_heap_*` gauges, via `qa-pulse`);
//! - `profile.folded` — collapsed-stack span profile of all runs, ready
//!   for `flamegraph.pl` / inferno;
//! - `trace-<i>.json` — Chrome trace-event (Perfetto) exports of a
//!   deterministic reservoir sample of full run traces;
//! - `events.jsonl` — one wide [`JobEvent`] line per job, in global job
//!   order, with trace/span ids minted deterministically from
//!   `(run_id, job)` ([`qa_obs::TraceContext`]): the identity fields are
//!   byte-identical across reruns, `--jobs N` *and* `--mesh N` (only the
//!   trailing worker/shard/wall-clock fields vary);
//! - `fleet-trace.json` — the job events assembled into one Chrome
//!   trace-event timeline (`qa_mesh::federate_trace`), with
//!   `process_name`/`thread_name` metadata so Perfetto labels tracks;
//! - `summary.txt` — per-query table plus fleet-wide step/latency
//!   percentiles (also printed to stdout);
//! - `scope.json` / `scope.folded` / `explain.txt` — with `--scope`, the
//!   merged per-state execution profile ([`qa_scope::ScopeProfiler`]):
//!   visit histograms and transition heatmaps per machine, the
//!   collapsed-stack rendering, and the `EXPLAIN ANALYZE` report.
//!   Per-run profilers are deterministic and the merge is commutative, so
//!   all three files are **byte-identical** across reruns, `--jobs N`
//!   and `--mesh N`;
//! - `postmortem.txt` — flight-recorder dump of the first failed run, if
//!   any run tripped its budget or errored; with `--slo`, also the names
//!   of any alerts still firing at batch end;
//! - `alerts.log` — with `--slo RULES`, the deterministic alert-transition
//!   log: after the batch every job is replayed through a
//!   `qa_sentinel::Replay` in global job order (one logical tick per job),
//!   so the file is byte-identical across reruns, `--jobs N` and mesh
//!   topologies. Any alert firing at the end of the replay is named in
//!   `postmortem.txt` and makes the fleet exit 1.
//!
//! With `--serve ADDR` a [`PulseServer`] binds next to the batch and
//! answers `GET /healthz`, `/readyz`, `/metrics`, `/flight`, `/events`,
//! `/profile` — plus `/series` and `/alerts` when `--slo` attaches a live
//! sentinel — *while the fleet runs*: each run's registry is merged into
//! the served fleet registry as the run finishes (run-granularity
//! freshness at zero per-event cost), and per-run observers additionally
//! feed a [`SharedFlight`] ring behind `/flight`. A post-run `/metrics` scrape is
//! byte-identical to `metrics.prom`: both come from the same render over
//! the same registry. The stdout lines `pulse: serving on <addr>` and
//! `pulse: run complete` let scripts coordinate with a live fleet;
//! `--pace-ms` throttles jobs (a scrape window for tests and demos) and
//! `--linger-ms` keeps the server up after the batch (until the deadline
//! or a `GET /quit`).
//!
//! Exit code 0 iff every run completed. Document generation and sampling
//! are seeded ([`qa_base::rng`]), so a fleet reruns identically: same
//! documents, same sampled runs, same step counts.
//!
//! With `--jobs N` (N > 1) runs are fanned out over the `qa-par`
//! work-stealing executor. The outputs stay **byte-identical** to
//! `--jobs 1` on the same seed: sampling flags are pre-drawn in job order,
//! outcomes land in indexed slots, reservoir offers happen in job order
//! after the batch, and the merged metrics are commutative counter sums.
//! (`summary.txt` therefore carries no wall-clock line; latency
//! percentiles go to stdout only.) If any run fails, a partial
//! `summary.txt`/`metrics.prom` is flushed immediately, so a later hang or
//! kill still leaves telemetry on disk.
//!
//! With `--mesh N` the binary becomes a **coordinator**: it re-spawns
//! itself as N `--shard i/N --serve` workers on loopback (via `qa-mesh`),
//! deals the job grid round-robin, polls worker `/healthz`/`/readyz` into
//! liveness timelines, scrapes each worker after `pulse: run complete`,
//! and federates the results: `metrics.prom` (merged registry —
//! **byte-identical across shard counts**, because `Metrics::merge` is
//! commutative), `profile.folded` (worker-prefixed collapsed stacks),
//! `flight.json` (correlation-stamped worker dumps under one run id), and
//! `summary.txt` (per-worker table with timelines). A worker that dies
//! mid-batch has its shard reassigned to a fresh worker; the coordinator
//! then exits 1 (degraded) and `postmortem.txt` names the dead worker and
//! its exact in-flight jobs. `--chaos-kill I` makes the coordinator
//! SIGKILL shard I's original worker mid-batch on purpose.
//!
//! With `--scrape-every-ms MS` (and `--slo`) a background loop
//! additionally scrapes the in-process fleet registry into the live
//! sentinel on a wall-clock cadence — the ops-facing feed behind
//! `/series` and `/alerts`; its transitions land in the flight ring but
//! never decide the exit code (the post-batch replay does).
//!
//! With `--scope --serve ADDR` the live surface additionally answers
//! `GET /explain` (`?query=NAME` filters to one workload,
//! `?format=json` switches from the text block to the report JSON).
//!
//! ```text
//! qa-fleet [--queries M] [--docs K] [--size N] [--sweep] [--seed S]
//!          [--jobs N] [--sample-every N] [--reservoir K] [--scope]
//!          [--max-steps N] [--max-wall-ms MS] [--out-dir DIR] [--smoke]
//!          [--serve ADDR] [--pace-ms MS] [--linger-ms MS]
//!          [--slo RULES] [--scrape-every-ms MS]
//!          [--mesh N] [--chaos-kill I]
//!          [--shard I/N] [--worker-id ID] [--run-id ID]
//! ```
//!
//! `--sweep` scales each document's size by its doc index (doc `di` gets
//! `size × (di + 1)` nodes), turning one fleet into a growth experiment:
//! `qa-trace analyze growth` over the resulting `events.jsonl` fits
//! steps-vs-size exponents per query.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qa_base::rng::{Rng, StdRng};
use qa_base::{Alphabet, Error, Symbol};
use qa_core::ranked::query::example_4_4;
use qa_core::unranked::query::{example_5_14, example_5_9};
use qa_flight::{
    parse_events, Budget, FlightRecorder, JobEvent, OneInN, Reservoir, Sampled, SharedEvents,
    SharedFlight, Watchdog,
};
use qa_obs::{percentile_sorted, Counter, Metrics, NoopObserver, RunTrace, Tee, TraceContext};
use qa_probe::export::chrome_trace;
use qa_pulse::{PulseServer, PulseState, SpanProfile, SpanProfiler, Weight};
use qa_scope::ScopeProfiler;
use qa_sentinel::{parse_rules, AlertRule, JobStats, Replay, SharedSentinel};
use qa_trees::Tree;
use qa_twoway::string_qa::example_3_4_qa;

// Opt-in heap accounting: build with `--features alloc-count` and every
// `qa_heap_*` gauge on `/metrics` (and the `?weight=alloc` profile) goes
// live. The default build keeps the untouched system allocator.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: qa_pulse::CountingAlloc = qa_pulse::CountingAlloc::new();

/// One finished run's slot: the outcome, its sampled trace (if any), and
/// its wide event.
type RunSlot = Option<(RunOutcome, Option<RunTrace>, JobEvent)>;

const USAGE: &str = "usage:
  qa-fleet [--queries M] [--docs K] [--size N] [--sweep] [--seed S]
           [--jobs N] [--sample-every N] [--reservoir K] [--scope]
           [--max-steps N] [--max-wall-ms MS] [--out-dir DIR] [--smoke]
           [--serve ADDR] [--pace-ms MS] [--linger-ms MS]
           [--slo RULES] [--scrape-every-ms MS]
           [--mesh N] [--chaos-kill I]
           [--shard I/N] [--worker-id ID] [--run-id ID]

queries cycle through the paper's running examples:
  example-3-4 (string), example-4-4 (ranked circuit),
  example-5-9 (unranked circuit), example-5-14 (stay transitions)

--sweep scales doc sizes by doc index (doc di gets size x (di+1)), the
input shape `qa-trace analyze growth` fits step-growth exponents from.

--scope attaches a per-state execution profiler to every run and exports
scope.json (raw visit/transition tables), scope.folded (collapsed-stack
state heatmap) and explain.txt (EXPLAIN ANALYZE report) — byte-identical
across --jobs N and --mesh N; with --serve, GET /explain answers live
(?query=NAME filters to one workload, ?format=json for the report JSON).

--serve binds a live ops HTTP server (try ADDR 127.0.0.1:0) answering
/healthz /readyz /metrics /flight /events /profile /quit during the run;
--pace-ms sleeps between jobs (a scrape window), --linger-ms keeps the
server up after the batch until the deadline or a GET /quit.

--slo RULES loads a qa-sentinel alert rules file; after the batch every
job is replayed through the alert engine in global job order (alerts.log,
deterministic), firing alerts are named in postmortem.txt and make the
fleet exit 1. --scrape-every-ms MS adds a live wall-clock scrape loop
feeding the /series and /alerts endpoints while the batch runs.

--mesh N runs a coordinator that re-spawns this binary as N sharded
--serve workers, federates their metrics/profiles/flight dumps, and
reassigns the shard of any worker that dies mid-batch (exit 1 if so);
--chaos-kill I SIGKILLs shard I's original worker mid-batch on purpose.
--shard/--worker-id/--run-id are the worker-side flags the coordinator
passes; by hand they run just that slice of the job grid.";

struct Opts {
    queries: usize,
    docs: usize,
    size: usize,
    /// Scale doc sizes by doc index (`size * (di + 1)`), for growth fits.
    sweep: bool,
    seed: u64,
    jobs: usize,
    sample_every: u64,
    reservoir: usize,
    /// Attach a per-state [`ScopeProfiler`] to every run and export
    /// `scope.json` / `scope.folded` / `explain.txt` (plus `/explain`
    /// with `--serve`).
    scope: bool,
    max_steps: u64,
    max_wall: Duration,
    out_dir: String,
    serve: Option<String>,
    pace_ms: u64,
    linger_ms: u64,
    /// Alert rules file (`qa_sentinel::parse_rules` format).
    slo: Option<String>,
    /// Live scrape-loop period; 0 disables the wall-clock loop.
    scrape_every_ms: u64,
    /// Worker mode: run only jobs `g` with `g % count == index`.
    shard: Option<(usize, usize)>,
    worker_id: Option<String>,
    run_id: Option<String>,
    /// Coordinator mode: spawn this many sharded workers and federate.
    mesh: Option<usize>,
    chaos_kill: Option<usize>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            queries: 4,
            docs: 25,
            size: 256,
            sweep: false,
            seed: 1,
            jobs: 1,
            sample_every: 8,
            reservoir: 4,
            scope: false,
            max_steps: 10_000_000,
            max_wall: Duration::from_millis(10_000),
            out_dir: "fleet-out".to_string(),
            serve: None,
            pace_ms: 0,
            linger_ms: 0,
            slo: None,
            scrape_every_ms: 0,
            shard: None,
            worker_id: None,
            run_id: None,
            mesh: None,
            chaos_kill: None,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    let val = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> Result<String, String> {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--queries" => o.queries = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--docs" => o.docs = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--size" => o.size = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--sweep" => o.sweep = true,
            "--seed" => o.seed = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => o.jobs = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--sample-every" => {
                o.sample_every = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?
            }
            "--reservoir" => {
                o.reservoir = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?
            }
            "--scope" => o.scope = true,
            "--max-steps" => {
                o.max_steps = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-wall-ms" => {
                o.max_wall =
                    Duration::from_millis(val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out-dir" => o.out_dir = val(&mut it, arg)?,
            "--serve" => o.serve = Some(val(&mut it, arg)?),
            "--pace-ms" => o.pace_ms = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?,
            "--linger-ms" => {
                o.linger_ms = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?
            }
            "--slo" => o.slo = Some(val(&mut it, arg)?),
            "--scrape-every-ms" => {
                o.scrape_every_ms = val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?
            }
            "--shard" => {
                let spec = val(&mut it, arg)?;
                let (i, n) = spec
                    .split_once('/')
                    .ok_or(format!("--shard wants I/N, got {spec}"))?;
                let (i, n) = (
                    i.parse::<usize>().map_err(|e| format!("{e}"))?,
                    n.parse::<usize>().map_err(|e| format!("{e}"))?,
                );
                if n == 0 || i >= n {
                    return Err(format!("--shard {spec}: need I < N and N >= 1"));
                }
                o.shard = Some((i, n));
            }
            "--worker-id" => o.worker_id = Some(val(&mut it, arg)?),
            "--run-id" => o.run_id = Some(val(&mut it, arg)?),
            "--mesh" => o.mesh = Some(val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?),
            "--chaos-kill" => {
                o.chaos_kill = Some(val(&mut it, arg)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--smoke" => {
                o.queries = 4;
                o.docs = 3;
                o.size = 48;
                o.sample_every = 2;
                o.reservoir = 2;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if o.queries == 0 || o.docs == 0 || o.size == 0 || o.jobs == 0 {
        return Err("--queries, --docs, --size and --jobs must be >= 1".to_string());
    }
    if let Some(mesh) = o.mesh {
        if mesh == 0 {
            return Err("--mesh must be >= 1".to_string());
        }
        if o.shard.is_some() {
            return Err("--mesh and --shard are mutually exclusive".to_string());
        }
        if o.serve.is_some() {
            return Err(
                "--serve is a worker-side flag; the mesh coordinator does not serve".to_string(),
            );
        }
        if let Some(k) = o.chaos_kill {
            if k >= mesh {
                return Err(format!("--chaos-kill {k} is not a shard of --mesh {mesh}"));
            }
        }
    } else if o.chaos_kill.is_some() {
        return Err("--chaos-kill requires --mesh".to_string());
    }
    Ok(o)
}

/// The default run id — one formula for every mode (in-process batch,
/// mesh coordinator, shard worker). Trace/span ids derive from
/// `(run_id, job)`, so sharing the formula across modes is what makes the
/// `events.jsonl` identity fields byte-identical across `--jobs N` and
/// `--mesh N` on the same corpus.
fn default_run_id(o: &Opts) -> String {
    format!(
        "fleet-s{}-q{}x{}-z{}{}",
        o.seed,
        o.queries,
        o.docs,
        o.size,
        if o.sweep { "-sweep" } else { "" }
    )
}

/// Size of document `di` in the corpus: constant without `--sweep`,
/// scaled by the doc index with it.
fn doc_size(o: &Opts, di: usize) -> usize {
    if o.sweep {
        o.size * (di + 1)
    } else {
        o.size
    }
}

/// The document a query runs over.
enum Doc {
    Word(Vec<Symbol>),
    Tree(Tree),
}

impl Doc {
    fn len(&self) -> usize {
        match self {
            Doc::Word(w) => w.len(),
            Doc::Tree(t) => t.num_nodes(),
        }
    }

    /// Document height: 0 for words (flat), tree height otherwise.
    fn depth(&self) -> usize {
        match self {
            Doc::Word(_) => 0,
            Doc::Tree(t) => t.height(),
        }
    }
}

/// One roster entry: a named example query plus its document generator.
struct Workload {
    name: &'static str,
    query: QueryKind,
}

enum QueryKind {
    String(Box<qa_twoway::StringQa>),
    Ranked(Box<qa_core::ranked::RankedQa>),
    Unranked(Box<qa_core::unranked::UnrankedQa>),
}

fn binary_alphabet() -> Alphabet {
    Alphabet::from_names(["0", "1"])
}

fn circuit_alphabet() -> Alphabet {
    Alphabet::from_names(["AND", "OR", "0", "1"])
}

fn roster() -> Vec<Workload> {
    let bin = binary_alphabet();
    let circ = circuit_alphabet();
    vec![
        Workload {
            name: "example-3-4",
            query: QueryKind::String(Box::new(example_3_4_qa(&bin))),
        },
        Workload {
            name: "example-4-4",
            query: QueryKind::Ranked(Box::new(example_4_4(&circ))),
        },
        Workload {
            name: "example-5-9",
            query: QueryKind::Unranked(Box::new(example_5_9(&circ))),
        },
        Workload {
            name: "example-5-14",
            query: QueryKind::Unranked(Box::new(example_5_14(&bin))),
        },
    ]
}

/// Deterministic document for `(workload, seed)`.
fn generate_doc(name: &str, size: usize, seed: u64) -> Doc {
    let mut rng = StdRng::seed_from_u64(seed);
    match name {
        "example-3-4" => Doc::Word(
            (0..size)
                .map(|_| Symbol::from_index(rng.gen_range(0..2)))
                .collect(),
        ),
        "example-4-4" => {
            let a = circuit_alphabet();
            Doc::Tree(qa_trees::generate::random_full_binary(
                &mut rng,
                &[a.symbol("AND"), a.symbol("OR")],
                &[a.symbol("0"), a.symbol("1")],
                size / 2,
            ))
        }
        "example-5-9" => {
            // Variadic circuit: grow a random shape, then relabel inner
            // nodes AND/OR and leaves 0/1 so every node evaluates.
            let a = circuit_alphabet();
            let mut t = qa_trees::generate::random(&mut rng, &[a.symbol("0")], size, None);
            for v in t.nodes().collect::<Vec<_>>() {
                let label = if t.is_leaf(v) {
                    if rng.gen_bool(0.5) {
                        a.symbol("0")
                    } else {
                        a.symbol("1")
                    }
                } else if rng.gen_bool(0.5) {
                    a.symbol("AND")
                } else {
                    a.symbol("OR")
                };
                t.set_label(v, label);
            }
            Doc::Tree(t)
        }
        "example-5-14" => Doc::Tree(qa_trees::generate::random(
            &mut rng,
            &[Symbol::from_index(0), Symbol::from_index(1)],
            size,
            None,
        )),
        other => unreachable!("unknown workload {other}"),
    }
}

/// Outcome of one fleet run.
struct RunOutcome {
    workload: &'static str,
    doc_nodes: usize,
    steps: u64,
    reversals: u64,
    cache_hits: u64,
    cache_misses: u64,
    budget_trips: u64,
    latency: Duration,
    selected: usize,
    sampled: bool,
    error: Option<Error>,
    /// Post-mortem dump, present when the run failed.
    dump: Option<String>,
}

/// Per-workload aggregate for the summary table.
#[derive(Default)]
struct QueryStats {
    runs: u64,
    failed: u64,
    steps: u64,
    selected: u64,
}

fn run_one(
    wl: &Workload,
    doc: &Doc,
    budget: Budget,
    sampled: bool,
    scope: bool,
    fleet: &Metrics,
    live: Option<&SharedFlight>,
) -> (
    RunOutcome,
    Option<RunTrace>,
    SpanProfile,
    Option<ScopeProfiler>,
) {
    let run_metrics = Metrics::new();
    let trace_arm = if sampled {
        Sampled::Full(RunTrace::new())
    } else {
        Sampled::Light(NoopObserver)
    };
    // With --serve, events additionally feed the shared /flight ring so a
    // mid-run scrape shows the current event tail. Metrics stay per-run
    // and are merged into the fleet registry at run end — run-granularity
    // freshness for /metrics, at zero per-event cost.
    let live_arm = match live {
        Some(shared) => Sampled::Full(shared.clone()),
        None => Sampled::Light(NoopObserver),
    };
    // The per-state profiler is per-run (single-threaded, deterministic);
    // merging at run end keeps scope.json independent of job interleaving.
    let scope_arm = if scope {
        Sampled::Full(ScopeProfiler::new())
    } else {
        Sampled::Light(NoopObserver)
    };
    let mut obs = Watchdog::new(
        Tee(
            FlightRecorder::with_capacity(256),
            Tee(
                run_metrics.observer(),
                Tee(
                    trace_arm,
                    Tee(SpanProfiler::new(), Tee(scope_arm, live_arm)),
                ),
            ),
        ),
        budget,
    );

    let t0 = Instant::now();
    let result = match (&wl.query, doc) {
        (QueryKind::String(q), Doc::Word(w)) => q.query_with(w, &mut obs).map(|sel| sel.len()),
        (QueryKind::Ranked(q), Doc::Tree(t)) => q.query_with(t, &mut obs).map(|sel| sel.len()),
        (QueryKind::Unranked(q), Doc::Tree(t)) => q.query_with(t, &mut obs).map(|sel| sel.len()),
        _ => unreachable!("workload/document kind mismatch"),
    };
    let latency = t0.elapsed();

    let Tee(recorder, Tee(_, Tee(trace_arm, Tee(profiler, Tee(scope_arm, _))))) = obs.into_inner();
    let trace = trace_arm.full();
    let scope_profile = scope_arm.full();
    let (selected, error, dump) = match result {
        Ok(n) => (n, None, None),
        Err(e) => {
            let mut dump = format!("workload: {}\nerror: {e}\n\n", wl.name);
            dump.push_str(&recorder.dump());
            (0, Some(e), Some(dump))
        }
    };
    // Every completed run is one job — the denominator burn-rate SLOs
    // divide error counters by.
    run_metrics.count(Counter::Jobs, 1);
    let outcome = RunOutcome {
        workload: wl.name,
        doc_nodes: doc.len(),
        steps: run_metrics.get(Counter::Steps),
        reversals: run_metrics.get(Counter::HeadReversals),
        cache_hits: run_metrics.get(Counter::CacheHits),
        cache_misses: run_metrics.get(Counter::CacheMisses),
        budget_trips: run_metrics.get(Counter::BudgetTrips),
        latency,
        selected,
        sampled,
        error,
        dump,
    };
    fleet.merge(&run_metrics);
    (outcome, trace, profiler.into_profile(), scope_profile)
}

/// Render the fleet summary. With `include_latency` the wall-clock
/// percentile line is appended — that variant goes to stdout only, so the
/// `summary.txt` on disk is byte-identical across reruns and `--jobs`
/// settings.
fn render_summary(
    opts: &Opts,
    outcomes: &[&RunOutcome],
    stats: &[(&'static str, QueryStats)],
    include_latency: bool,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qa-fleet: {} run(s) = {} query kind(s) x {} doc(s), size {}, seed {}",
        outcomes.len(),
        opts.queries,
        opts.docs,
        opts.size,
        opts.seed
    );
    if let Some((i, n)) = opts.shard {
        let _ = writeln!(
            out,
            "shard {i}/{n} (worker {}, run {}): {} of {} grid job(s)",
            opts.worker_id.as_deref().unwrap_or("?"),
            opts.run_id.as_deref().unwrap_or("local"),
            outcomes.len(),
            opts.queries * opts.docs
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>7} {:>12} {:>10} {:>10}",
        "query", "runs", "failed", "steps", "sel/run", "steps/run"
    );
    for (name, st) in stats {
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>7} {:>12} {:>10.1} {:>10.1}",
            name,
            st.runs,
            st.failed,
            st.steps,
            st.selected as f64 / st.runs.max(1) as f64,
            st.steps as f64 / st.runs.max(1) as f64
        );
    }

    let mut steps: Vec<u64> = outcomes.iter().map(|o| o.steps).collect();
    steps.sort_unstable();
    let _ = writeln!(
        out,
        "steps   p50 {:>8}  p90 {:>8}  p99 {:>8}  max {:>8}",
        percentile_sorted(&steps, 0.50),
        percentile_sorted(&steps, 0.90),
        percentile_sorted(&steps, 0.99),
        steps.last().copied().unwrap_or(0)
    );
    if include_latency {
        let mut lat: Vec<u64> = outcomes
            .iter()
            .map(|o| o.latency.as_nanos() as u64)
            .collect();
        lat.sort_unstable();
        let _ = writeln!(
            out,
            "lat(ns) p50 {:>8}  p90 {:>8}  p99 {:>8}  max {:>8}",
            percentile_sorted(&lat, 0.50),
            percentile_sorted(&lat, 0.90),
            percentile_sorted(&lat, 0.99),
            lat.last().copied().unwrap_or(0)
        );
    }
    let sampled = outcomes.iter().filter(|o| o.sampled).count();
    let failed = outcomes.iter().filter(|o| o.error.is_some()).count();
    let _ = writeln!(
        out,
        "sampled {} of {} run(s); {} failed",
        sampled,
        outcomes.len(),
        failed
    );
    out
}

/// Aggregate outcomes per query kind, in first-seen (= roster) order.
fn build_stats(outcomes: &[&RunOutcome]) -> Vec<(&'static str, QueryStats)> {
    let mut stats: Vec<(&'static str, QueryStats)> = Vec::new();
    for o in outcomes {
        let entry = match stats.iter_mut().find(|(n, _)| *n == o.workload) {
            Some((_, st)) => st,
            None => {
                stats.push((o.workload, QueryStats::default()));
                &mut stats.last_mut().unwrap().1
            }
        };
        entry.runs += 1;
        entry.failed += u64::from(o.error.is_some());
        entry.steps += o.steps;
        entry.selected += o.selected as u64;
    }
    stats
}

/// Best-effort flush of `summary.txt` and `metrics.prom` from the slots
/// filled so far. Called under the slots lock the moment a run fails, so a
/// later hang or kill still leaves telemetry on disk; the normal exit path
/// overwrites both files with the complete versions.
fn flush_partial(opts: &Opts, out_dir: &Path, slots: &[RunSlot], state: &PulseState) {
    let done: Vec<&RunOutcome> = slots.iter().flatten().map(|(o, _, _)| o).collect();
    let stats = build_stats(&done);
    let mut summary = render_summary(opts, &done, &stats, false);
    use std::fmt::Write;
    let _ = writeln!(
        summary,
        "PARTIAL: {} of {} run(s) flushed after a failure",
        done.len(),
        slots.len()
    );
    for (name, contents) in [
        ("summary.txt", summary),
        ("metrics.prom", state.metrics_text()),
    ] {
        if let Err(e) = std::fs::write(out_dir.join(name), contents) {
            eprintln!("cannot write partial {name}: {e}");
        }
    }
}

/// Merge every per-workload profiler into one fleet-wide profiler.
/// Commutative merges over sorted tables: the result is independent of
/// job interleaving and shard topology.
fn merged_scope(scopes: &BTreeMap<String, ScopeProfiler>) -> ScopeProfiler {
    let mut merged = ScopeProfiler::new();
    for s in scopes.values() {
        merged.merge(s);
    }
    merged
}

/// The three `--scope` exports rendered from one merged profiler.
fn scope_exports(merged: &ScopeProfiler) -> [(&'static str, String); 3] {
    [
        ("scope.json", format!("{}\n", merged.to_json())),
        ("scope.folded", merged.to_collapsed()),
        ("explain.txt", merged.explain_run().render_text()),
    ]
}

/// Parse a completed worker's scraped step count for the summary table
/// (`?` when the scrape is missing or unparseable — the table is
/// best-effort; the federated registry is the source of truth).
fn scraped_steps(report: &qa_mesh::WorkerReport) -> String {
    report
        .scrape
        .as_ref()
        .and_then(|s| qa_pulse::parse_prometheus(&s.metrics).ok())
        .and_then(|s| s.to_metrics("qa_fleet").ok())
        .map(|m| m.get(Counter::Steps).to_string())
        .unwrap_or_else(|| "?".to_string())
}

/// The coordinator's federated summary: run header, per-worker table with
/// liveness timelines, casualty notes, and the degraded verdict.
fn render_mesh_summary(
    opts: &Opts,
    run_id: &str,
    plan: &qa_mesh::ShardPlan,
    outcome: &qa_mesh::MeshOutcome,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qa-mesh run {run_id}: {} job(s) over {} shard(s), size {}, seed {}",
        plan.jobs, plan.shards, opts.size, opts.seed
    );
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>12}  liveness",
        "worker", "shard", "jobs", "done", "exit", "steps"
    );
    let mut reports: Vec<&qa_mesh::WorkerReport> = outcome.reports.iter().collect();
    reports.sort_by_key(|r| (r.shard, r.respawn));
    for r in &reports {
        let exit = match r.exit_code {
            Some(c) => c.to_string(),
            None => "sig".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>5} {:>5} {:>5} {:>12}  {}",
            r.worker_id,
            r.shard,
            plan.len_for(r.shard),
            r.jobs_done.len(),
            exit,
            scraped_steps(r),
            r.timeline.render()
        );
    }
    for dead in outcome.casualties() {
        let cause = if dead.chaos_killed {
            "chaos-killed"
        } else {
            "died"
        };
        let _ = writeln!(
            out,
            "worker {} {cause} mid-batch with {} job(s) in flight; shard {} reassigned",
            dead.worker_id,
            dead.in_flight_at_death.len(),
            dead.shard
        );
    }
    if outcome.scrape_retries > 0 {
        // Coordinator-local accounting: flaky scrapes are worth a line in
        // the ops summary, but never a counter in the federated registry.
        let _ = writeln!(out, "scrape retries: {}", outcome.scrape_retries);
    }
    let _ = writeln!(
        out,
        "degraded: {}",
        if outcome.degraded { "yes" } else { "no" }
    );
    out
}

/// The federated post-mortem: for every dead worker, exactly which jobs
/// it owned, finished, had in flight, and never reached — plus where the
/// shard went next.
fn render_mesh_postmortem(
    run_id: &str,
    plan: &qa_mesh::ShardPlan,
    outcome: &qa_mesh::MeshOutcome,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "=== mesh postmortem: run {run_id} ===");
    for dead in outcome.casualties() {
        let assigned = plan.jobs_for(dead.shard);
        let never_started: Vec<usize> = assigned
            .iter()
            .copied()
            .filter(|j| !dead.jobs_done.contains(j) && !dead.in_flight_at_death.contains(j))
            .collect();
        let replacement = outcome
            .reports
            .iter()
            .find(|r| r.shard == dead.shard && r.respawn == dead.respawn + 1)
            .map(|r| r.worker_id.clone())
            .unwrap_or_else(|| "nobody".to_string());
        let _ = writeln!(
            out,
            "worker {} (shard {}/{}) died before completing its shard",
            dead.worker_id, dead.shard, plan.shards
        );
        let _ = writeln!(
            out,
            "  exit: {}",
            match dead.exit_code {
                Some(c) => format!("code {c}"),
                None => "killed by signal".to_string(),
            }
        );
        let _ = writeln!(out, "  chaos-killed: {}", dead.chaos_killed);
        let _ = writeln!(out, "  assigned {} job(s): {:?}", assigned.len(), assigned);
        let _ = writeln!(
            out,
            "  completed before death ({}): {:?}",
            dead.jobs_done.len(),
            dead.jobs_done
        );
        let _ = writeln!(
            out,
            "  in flight at death ({}): {:?}",
            dead.in_flight_at_death.len(),
            dead.in_flight_at_death
        );
        let _ = writeln!(
            out,
            "  never started ({}): {:?}",
            never_started.len(),
            never_started
        );
        let _ = writeln!(out, "  shard reassigned to {replacement}");
    }
    out
}

/// `--mesh N`: spawn N sharded copies of this binary, supervise them, and
/// federate their telemetry. With `--slo`, the coordinator replays the
/// federated `events.jsonl` through the same deterministic [`Replay`] the
/// in-process fleet uses, so `alerts.log` is byte-identical to an
/// unsharded run over the same corpus. Exit 0 clean, 1 degraded (any
/// worker died or exited non-zero — even when reassignment repaired the
/// run) or when an SLO alert is firing at batch end, 2 on
/// coordinator-level errors.
fn run_coordinator(opts: &Opts, slo_rules: Option<Vec<AlertRule>>) -> ExitCode {
    use qa_mesh::{
        federate_events, federate_flight, federate_metrics, federate_profile, federate_trace,
        run_mesh, MeshOptions,
    };

    let shards = opts.mesh.expect("coordinator mode");
    let plan = qa_mesh::ShardPlan::new(shards, opts.queries * opts.docs);
    // The default run id deliberately omits the shard count: trace/span
    // ids derive from (run_id, job), and the same corpus must mint the
    // same ids whether it runs in-process or over any number of shards.
    let run_id = opts.run_id.clone().unwrap_or_else(|| default_run_id(opts));
    let out_dir = Path::new(&opts.out_dir);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir);
        return ExitCode::from(2);
    }
    // Workers are this same binary re-spawned in --shard mode: no second
    // executable to locate, and the coordinator/worker pair can never skew
    // versions.
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary: {e}");
            return ExitCode::from(2);
        }
    };

    let mut mesh_opts = MeshOptions::new(&run_id, plan);
    mesh_opts.chaos_kill = opts.chaos_kill;
    // The live sentinel rides the coordinator's poll loop: mid-run worker
    // scrapes land as per-worker series and evaluate the rules fleet-wide.
    // Ops-only — the deterministic alert pass is the replay below.
    if opts.scrape_every_ms > 0 {
        mesh_opts.scrape_interval = Some(Duration::from_millis(opts.scrape_every_ms));
        mesh_opts.sentinel = Some(SharedSentinel::new(slo_rules.clone().unwrap_or_default()));
    }
    let outcome = run_mesh(&mesh_opts, |shard, worker_id| {
        let mut cmd = std::process::Command::new(&exe);
        if opts.sweep {
            cmd.arg("--sweep");
        }
        if opts.scope {
            cmd.arg("--scope");
        }
        cmd.arg("--queries")
            .arg(opts.queries.to_string())
            .arg("--docs")
            .arg(opts.docs.to_string())
            .arg("--size")
            .arg(opts.size.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--jobs")
            .arg(opts.jobs.to_string())
            .arg("--sample-every")
            .arg(opts.sample_every.to_string())
            .arg("--reservoir")
            .arg(opts.reservoir.to_string())
            .arg("--max-steps")
            .arg(opts.max_steps.to_string())
            .arg("--max-wall-ms")
            .arg(opts.max_wall.as_millis().to_string())
            .arg("--pace-ms")
            .arg(opts.pace_ms.to_string())
            .arg("--out-dir")
            .arg(out_dir.join(worker_id))
            .arg("--serve")
            .arg("127.0.0.1:0")
            // Long linger: the worker holds its endpoints after `run
            // complete` until the coordinator scrapes it and GETs /quit.
            .arg("--linger-ms")
            .arg("600000")
            .arg("--shard")
            .arg(format!("{shard}/{shards}"))
            .arg("--worker-id")
            .arg(worker_id)
            .arg("--run-id")
            .arg(&run_id);
        cmd
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("qa-mesh: {e}");
            return ExitCode::from(2);
        }
    };

    // Federate the completed workers' scrapes. Merging parsed registries
    // makes metrics.prom byte-identical across shard counts; profiles and
    // flight dumps keep worker attribution instead.
    let completed = outcome.completed();
    let federated = match federate_metrics(
        completed
            .iter()
            .filter_map(|r| r.scrape.as_ref())
            .map(|s| s.metrics.as_str()),
        "qa_fleet",
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("qa-mesh: metrics federation failed: {e}");
            return ExitCode::from(2);
        }
    };
    let profile_inputs: Vec<(String, String)> = completed
        .iter()
        .filter_map(|r| {
            r.scrape
                .as_ref()
                .map(|s| (r.worker_id.clone(), s.profile.clone()))
        })
        .collect();
    let flight_inputs: Vec<String> = completed
        .iter()
        .filter_map(|r| r.scrape.as_ref().map(|s| s.flight.clone()))
        .collect();
    let event_inputs: Vec<(String, String)> = completed
        .iter()
        .filter_map(|r| {
            r.scrape
                .as_ref()
                .map(|s| (r.worker_id.clone(), s.events.clone()))
        })
        .collect();

    let summary = render_mesh_summary(opts, &run_id, &plan, &outcome);
    print!("{summary}");

    let mut io_err = None;
    let mut write = |name: &str, contents: &str| {
        if let Err(e) = std::fs::write(out_dir.join(name), contents) {
            io_err = Some(format!("cannot write {name}: {e}"));
        }
    };
    write("summary.txt", &summary);
    write(
        "metrics.prom",
        &qa_pulse::metrics_text(&federated, "qa_fleet"),
    );
    write("profile.folded", &federate_profile(&profile_inputs));
    write("flight.json", &federate_flight(&run_id, &flight_inputs));
    // The wide-event federation: worker /events tails merge in global job
    // order (identity fields byte-identical to an in-process run), and
    // the same scrapes assemble into one Perfetto-loadable fleet
    // timeline with a named process per worker.
    let events_jsonl = federate_events(&event_inputs);
    write("events.jsonl", &events_jsonl);
    write("fleet-trace.json", &federate_trace(&run_id, &event_inputs));
    // Scope federation: each completed worker wrote its merged scope.json
    // before announcing `pulse: run complete`; the coordinator merges the
    // files. ScopeProfiler::merge is commutative and associative, so the
    // federated tables — and all three exports — are byte-identical to an
    // unsharded run over the same corpus.
    if opts.scope {
        let mut merged = ScopeProfiler::new();
        for r in &completed {
            let path = out_dir.join(&r.worker_id).join("scope.json");
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| ScopeProfiler::from_json(&t))
            {
                Ok(s) => merged.merge(&s),
                Err(e) => eprintln!("qa-mesh: no scope profile from worker {}: {e}", r.worker_id),
            }
        }
        for (name, contents) in scope_exports(&merged) {
            write(name, &contents);
        }
    }

    // The deterministic alert pass: the federated events.jsonl is in
    // global job order with identity fields byte-identical to an
    // in-process run, so replaying it through the same Replay yields the
    // same alerts.log whatever the shard count.
    let mut firing: Vec<String> = Vec::new();
    if let Some(rules) = &slo_rules {
        let events = match parse_events(&events_jsonl) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("qa-mesh: slo replay failed: {e}");
                return ExitCode::from(2);
            }
        };
        let mut replay = Replay::new(rules.clone(), "qa_fleet");
        for ev in &events {
            replay.observe_job(&JobStats {
                steps: ev.steps,
                reversals: ev.reversals,
                cache_hits: ev.cache_hits,
                cache_misses: ev.cache_misses,
                budget_trips: ev.budget_trips,
            });
        }
        firing = replay
            .engine()
            .firing()
            .iter()
            .map(|n| n.to_string())
            .collect();
        write("alerts.log", &replay.engine().render_log());
    }

    let mut postmortem = String::new();
    if !outcome.casualties().is_empty() {
        postmortem.push_str(&render_mesh_postmortem(&run_id, &plan, &outcome));
    }
    if !firing.is_empty() {
        if !postmortem.is_empty() {
            postmortem.push('\n');
        }
        postmortem.push_str("=== slo alerts firing at batch end ===\n");
        for rule in slo_rules.iter().flatten() {
            if firing.contains(&rule.name) {
                postmortem.push_str(&rule.render());
                postmortem.push('\n');
            }
        }
    }
    if !postmortem.is_empty() {
        eprint!("{postmortem}");
        write("postmortem.txt", &postmortem);
    }
    if let Some(msg) = io_err {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    if outcome.degraded {
        eprintln!("qa-mesh: run degraded (worker death or non-zero worker exit)");
        return ExitCode::from(1);
    }
    if !firing.is_empty() {
        eprintln!(
            "slo: {} alert(s) firing at batch end ({}); see {}/postmortem.txt",
            firing.len(),
            firing.join(", "),
            opts.out_dir
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // --slo rules load before the mode dispatch: a bad rules file is an
    // operator error (exit 2) whether the fleet runs in-process or meshed.
    let slo_rules: Option<Vec<AlertRule>> = match &opts.slo {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("--slo {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_rules(&text) {
                Ok(rules) => Some(rules),
                Err(e) => {
                    eprintln!("--slo {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    if opts.mesh.is_some() {
        return run_coordinator(&opts, slo_rules);
    }

    let roster = roster();
    let budget = Budget::steps(opts.max_steps).with_wall(opts.max_wall);
    let fleet = Arc::new(Metrics::new());
    // One run id across every mode (see default_run_id): it seeds the
    // deterministic trace/span ids stamped into every wide event.
    let run_id = opts.run_id.clone().unwrap_or_else(|| default_run_id(&opts));
    // The pulse state exists even without --serve: it renders metrics.prom
    // and aggregates the span profile either way, and serving just exposes
    // the same state over HTTP.
    let state = PulseState::new(Arc::clone(&fleet), "qa_fleet");
    // The live sentinel exists when either flag asks for it: --slo alone
    // still wants /alerts and the post-batch replay; --scrape-every-ms
    // alone still records watchable /series rings.
    let sentinel = (slo_rules.is_some() || opts.scrape_every_ms > 0)
        .then(|| SharedSentinel::new(slo_rules.clone().unwrap_or_default()));
    if let Some(s) = &sentinel {
        let src = s.clone();
        state.set_series_source(Box::new(move |name, tail| src.series_json(name, tail)));
        let src = s.clone();
        state.set_alerts_source(Box::new(move || src.alerts_json()));
    }
    // Worker identity (present in mesh shard mode): stamped as an info
    // gauge on /metrics and as correlation ids on the flight ring, so
    // every federated artifact can name the process it came from. The
    // parser keeps info gauges out of merged registries, so the federated
    // metrics.prom stays independent of worker count.
    let worker_identity = opts.shard.map(|(i, n)| {
        (
            run_id.clone(),
            format!("{i}/{n}"),
            opts.worker_id.clone().unwrap_or_else(|| format!("w{i}")),
        )
    });
    if let Some((run_id, shard, worker)) = &worker_identity {
        fleet.set_info(
            "qa_fleet_worker_info",
            [
                ("run_id".to_string(), run_id.clone()),
                ("shard".to_string(), shard.clone()),
                ("worker".to_string(), worker.clone()),
            ],
        );
    }
    // The wide-event ring exists in every mode: the batch pushes each
    // job's event as it finishes (a live completion-order tail for
    // /events), and the post-batch pass writes events.jsonl in job order.
    let events_ring = SharedEvents::with_capacity((opts.queries * opts.docs).max(1));
    // Per-workload scope profilers, merged in as runs finish. Keyed by
    // workload name so /explain?query=NAME can answer per query; the
    // fleet-wide profile is the (commutative) merge of all values.
    let scopes: Arc<Mutex<BTreeMap<String, ScopeProfiler>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let mut shared_flight = None;
    let server = match &opts.serve {
        Some(addr) => {
            let shared = SharedFlight::with_capacity(1024);
            if let Some((run_id, _, worker)) = &worker_identity {
                shared.set_correlation(run_id, worker);
            }
            let source = shared.clone();
            state.set_flight_source(Box::new(move |tail| source.with(|r| r.to_json_tail(tail))));
            let ev_source = events_ring.clone();
            state.set_events_source(Box::new(move |tail| ev_source.tail_jsonl(tail)));
            if opts.scope {
                let src = Arc::clone(&scopes);
                state.set_explain_source(Box::new(move |query, json| {
                    let scopes = src.lock().expect("scope lock");
                    let render = |p: &ScopeProfiler| {
                        if json {
                            p.explain_run().to_json()
                        } else {
                            p.explain_run().render_text()
                        }
                    };
                    match query {
                        None => Some(render(&merged_scope(&scopes))),
                        Some(name) => scopes.get(name).map(render),
                    }
                }));
            }
            shared_flight = Some(shared);
            match PulseServer::serve(addr.as_str(), Arc::clone(&state)) {
                Ok(s) => {
                    // Stdout protocol line: scripts wait for this before
                    // scraping (stdout is line-buffered, so it arrives
                    // promptly even through a pipe).
                    println!("pulse: serving on {}", s.local_addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("cannot bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    // The output directory exists before any run starts, so a mid-batch
    // failure can flush partial telemetry.
    let out_dir = Path::new(&opts.out_dir);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir);
        return ExitCode::from(2);
    }
    // Warmup (arg parsing, roster, out dir) is done: flip /readyz.
    state.set_ready();

    // Sampling flags are pre-drawn in job order over the FULL grid: the
    // OneInN stream is consumed identically no matter how many threads —
    // or mesh shards — run the jobs, so any shard's sampled set matches
    // what an unsharded fleet would have sampled for those jobs.
    let mut admit = OneInN::new(opts.seed, opts.sample_every);
    let total_jobs = opts.queries * opts.docs;
    let specs: Vec<(usize, usize, bool)> = (0..opts.queries)
        .flat_map(|qi| (0..opts.docs).map(move |di| (qi, di)))
        .map(|(qi, di)| (qi, di, admit.admit()))
        .filter(|(qi, di, _)| match opts.shard {
            Some((index, count)) => (qi * opts.docs + di) % count == index,
            None => true,
        })
        .collect();
    let shard_mode = opts.shard.is_some();
    // Volatile event fields: placement facts stamped on every wide event.
    // In-process fleets are "local" worker, shard "0/1".
    let (ev_worker, ev_shard) = match &worker_identity {
        Some((_, shard, worker)) => (worker.clone(), shard.clone()),
        None => ("local".to_string(), "0/1".to_string()),
    };
    let fleet_t0 = Instant::now();

    // The live scrape loop: wall-clock cadence, ops-only. Transitions are
    // echoed onto the flight ring (when one exists) but never counted into
    // the fleet registry — metrics.prom must not depend on how fast the
    // wall clock moved — and never decide the exit code (the post-batch
    // replay does).
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scrape_loop = match (&sentinel, opts.scrape_every_ms) {
        (Some(s), ms) if ms > 0 => {
            let s = s.clone();
            let stop = Arc::clone(&scrape_stop);
            let metrics = Arc::clone(&fleet);
            let flight = shared_flight.clone();
            Some(std::thread::spawn(move || {
                let period = Duration::from_millis(ms);
                while !stop.load(Ordering::Relaxed) {
                    let transitions = s.scrape(&metrics, "qa_fleet", &Vec::new());
                    if let Some(flight) = &flight {
                        for t in &transitions {
                            flight.alert(t.tick, t.rule as u32, t.from, t.to);
                        }
                    }
                    std::thread::sleep(period);
                }
            }))
        }
        _ => None,
    };

    // Outcomes land in indexed slots, so `--jobs N` yields the same vector
    // as `--jobs 1`; per-run metrics merge into `fleet` as commutative
    // counter sums. Slots are indexed by global job id; in shard mode the
    // other shards' slots simply stay empty.
    let slots: Mutex<Vec<RunSlot>> = Mutex::new((0..total_jobs).map(|_| None).collect());
    qa_par::par_batch(opts.jobs, specs, |_worker, (qi, di, sampled)| {
        let global = qi * opts.docs + di;
        if shard_mode {
            // Stdout job protocol: the mesh coordinator tracks these to
            // know exactly which jobs were in flight if this process dies.
            println!("fleet: job {global} start");
        }
        let wl = &roster[qi % roster.len()];
        // Per-run seed: distinct per (query index, doc index), stable
        // across invocations with the same --seed.
        let doc_seed = opts
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((qi as u64) << 32 | di as u64);
        let doc = generate_doc(wl.name, doc_size(&opts, di), doc_seed);
        let doc_depth = doc.depth();
        let start_ns = fleet_t0.elapsed().as_nanos() as u64;
        let (outcome, trace, profile, scope_profile) = run_one(
            wl,
            &doc,
            budget,
            sampled,
            opts.scope,
            &fleet,
            shared_flight.as_ref(),
        );
        state.merge_profile(&profile);
        if let Some(sp) = scope_profile {
            scopes
                .lock()
                .expect("scope lock")
                .entry(wl.name.to_string())
                .or_default()
                .merge(&sp);
        }
        // The wide event: identity fields derive only from (run_id, job,
        // corpus, counters), so they match byte for byte across --jobs N
        // and --mesh N; placement and wall-clock ride in the volatile tail.
        let ctx = TraceContext::mint(&run_id, global);
        let event = JobEvent {
            run: run_id.clone(),
            trace: ctx.trace_hex(),
            span: ctx.span_hex(),
            job: global,
            query: wl.name.to_string(),
            query_index: qi,
            doc_index: di,
            doc_nodes: outcome.doc_nodes,
            doc_depth,
            steps: outcome.steps,
            reversals: outcome.reversals,
            cache_hits: outcome.cache_hits,
            cache_misses: outcome.cache_misses,
            budget_trips: outcome.budget_trips,
            selected: outcome.selected,
            sampled,
            outcome: outcome
                .error
                .as_ref()
                .map(|e| format!("{e}"))
                .unwrap_or_else(|| "ok".to_string()),
            worker: ev_worker.clone(),
            shard: ev_shard.clone(),
            start_ns,
            wall_ns: outcome.latency.as_nanos() as u64,
        };
        events_ring.push(event.clone());
        let failed = outcome.error.is_some();
        {
            let mut slots = slots.lock().expect("slots lock");
            slots[global] = Some((outcome, trace, event));
            if failed {
                // A budget trip mid-batch must not strand the fleet without
                // telemetry: flush what finished so far (overwritten with
                // the complete exports on normal exit).
                flush_partial(&opts, out_dir, &slots, &state);
            }
        }
        if opts.pace_ms > 0 {
            // The pace window sits between `start` and `done` on purpose:
            // it is the chaos window — a coordinator kill landing here
            // finds this job in flight.
            std::thread::sleep(Duration::from_millis(opts.pace_ms));
        }
        if shard_mode {
            println!("fleet: job {global} done");
        }
    });

    scrape_stop.store(true, Ordering::Relaxed);
    if let Some(handle) = scrape_loop {
        let _ = handle.join();
    }

    // Reservoir offers happen in job order after the batch, so the sampled
    // trace set is independent of worker interleaving. In shard mode the
    // slots of other shards are (correctly) empty and skipped.
    let mut traces: Reservoir<(String, RunTrace)> = Reservoir::new(opts.seed, opts.reservoir);
    let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(total_jobs);
    // events.jsonl is written in global job order (the ring holds
    // completion order, for the live /events tail only), so the file's
    // identity projection is byte-identical across --jobs settings.
    let mut events_jsonl = String::new();
    for (i, slot) in slots
        .into_inner()
        .expect("slots lock")
        .into_iter()
        .enumerate()
    {
        let Some((outcome, trace, event)) = slot else {
            assert!(shard_mode, "every job ran");
            continue;
        };
        if let Some(trace) = trace {
            traces.offer((format!("{}-doc{}", outcome.workload, i % opts.docs), trace));
        }
        events_jsonl.push_str(&event.to_json());
        events_jsonl.push('\n');
        outcomes.push(outcome);
    }

    // The authoritative alert pass: replay the batch one logical tick per
    // job, in global job order. Same seed + rules => byte-identical
    // alerts.log whatever --jobs ran the batch and however the wall clock
    // moved; this — not the live loop — names firing alerts and sets the
    // exit code. Runs before metrics.prom renders so the transition count
    // lands in the registry deterministically.
    let mut firing: Vec<String> = Vec::new();
    let mut alerts_log: Option<String> = None;
    if let Some(rules) = &slo_rules {
        let mut replay = Replay::new(rules.clone(), "qa_fleet");
        let mut transitions = 0u64;
        for outcome in &outcomes {
            transitions += replay
                .observe_job(&JobStats {
                    steps: outcome.steps,
                    reversals: outcome.reversals,
                    cache_hits: outcome.cache_hits,
                    cache_misses: outcome.cache_misses,
                    budget_trips: outcome.budget_trips,
                })
                .len() as u64;
        }
        fleet.count(Counter::AlertTransitions, transitions);
        firing = replay
            .engine()
            .firing()
            .iter()
            .map(|n| n.to_string())
            .collect();
        alerts_log = Some(replay.engine().render_log());
    }

    let refs: Vec<&RunOutcome> = outcomes.iter().collect();
    let stats = build_stats(&refs);
    let summary = render_summary(&opts, &refs, &stats, false);
    print!("{}", render_summary(&opts, &refs, &stats, true));

    let mut io_err = None;
    let mut write = |name: &str, contents: &str| {
        if let Err(e) = std::fs::write(out_dir.join(name), contents) {
            io_err = Some(format!("cannot write {name}: {e}"));
        }
    };
    write("summary.txt", &summary);
    write("metrics.prom", &state.metrics_text());
    write(
        "profile.folded",
        &state.profile_collapsed(Weight::WallNanos),
    );
    write("events.jsonl", &events_jsonl);
    write(
        "fleet-trace.json",
        &qa_mesh::federate_trace(&run_id, &[(ev_worker.clone(), events_jsonl.clone())]),
    );
    if opts.scope {
        let merged = merged_scope(&scopes.lock().expect("scope lock"));
        for (name, contents) in scope_exports(&merged) {
            write(name, &contents);
        }
    }
    for (i, (label, trace)) in traces.items().iter().enumerate() {
        write(&format!("trace-{i}.json"), &chrome_trace(trace));
        eprintln!("trace-{i}.json <- full trace of {label}");
    }
    if let Some(log) = &alerts_log {
        write("alerts.log", log);
    }
    // postmortem.txt collects everything that went wrong: the first failed
    // run's flight dump, then any SLO alerts still firing at batch end.
    let mut postmortem = String::new();
    if let Some(first_failed) = outcomes.iter().find(|o| o.error.is_some()) {
        postmortem.push_str(first_failed.dump.as_deref().unwrap_or("no dump recorded"));
        eprintln!(
            "postmortem.txt <- {} on a {}-node document",
            first_failed.workload, first_failed.doc_nodes
        );
    }
    if !firing.is_empty() {
        if !postmortem.is_empty() {
            postmortem.push('\n');
        }
        postmortem.push_str("=== slo alerts firing at batch end ===\n");
        for rule in slo_rules.iter().flatten() {
            if firing.contains(&rule.name) {
                postmortem.push_str(&rule.render());
                postmortem.push('\n');
            }
        }
        eprintln!("postmortem.txt <- {} slo alert(s) firing", firing.len());
    }
    if !postmortem.is_empty() {
        write("postmortem.txt", &postmortem);
    }
    // All exports are on disk; tell any coordinating script the endpoints
    // now serve final data, then hold the server for the linger window (or
    // until a GET /quit stops the accept loop).
    if let Some(server) = server {
        println!("pulse: run complete");
        let deadline = Instant::now() + Duration::from_millis(opts.linger_ms);
        while server.is_running() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    if let Some(msg) = io_err {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }

    let failed = outcomes.iter().filter(|o| o.error.is_some()).count();
    if failed > 0 {
        eprintln!(
            "{failed} run(s) failed; see {}/postmortem.txt",
            opts.out_dir
        );
        return ExitCode::from(1);
    }
    if !firing.is_empty() {
        eprintln!(
            "slo: {} alert(s) firing at batch end ({}); see {}/postmortem.txt",
            firing.len(),
            firing.join(", "),
            opts.out_dir
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
