//! S-expression syntax for trees: `(f (g x y) y)`, leaves may be bare.

use qa_base::{Alphabet, Error, Result, Symbol};

use crate::{NodeId, Tree};

/// Parse an s-expression into a tree, interning labels into `alphabet`.
///
/// Grammar: `tree := IDENT | '(' IDENT tree* ')'` with identifiers
/// `[A-Za-z0-9_#-]+`; whitespace separates tokens. Parsing is iterative.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_trees::sexpr::{from_sexpr, to_sexpr};
/// let mut sigma = Alphabet::new();
/// let t = from_sexpr("(f (g x y) y)", &mut sigma).unwrap();
/// assert_eq!(to_sexpr(&t, &sigma), "(f (g x y) y)");
/// ```
pub fn from_sexpr(input: &str, alphabet: &mut Alphabet) -> Result<Tree> {
    #[derive(Debug)]
    enum Tok {
        Open,
        Close,
        Ident(String),
    }
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '(' {
            chars.next();
            toks.push(Tok::Open);
        } else if c == ')' {
            chars.next();
            toks.push(Tok::Close);
        } else if c.is_alphanumeric() || c == '_' || c == '#' || c == '-' {
            let mut name = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '#' || c == '-' {
                    name.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(name));
        } else {
            return Err(Error::parse("sexpr", format!("unexpected character `{c}`")));
        }
    }

    // Iterative shift-reduce: a stack of open nodes.
    let mut tree: Option<Tree> = None;
    let mut open: Vec<NodeId> = Vec::new();
    let mut i = 0usize;
    let attach = |tree: &mut Option<Tree>, open: &[NodeId], label: Symbol| -> Result<NodeId> {
        match (tree.as_mut(), open.last()) {
            (None, _) => {
                *tree = Some(Tree::leaf(label));
                Ok(tree.as_ref().unwrap().root())
            }
            (Some(t), Some(&p)) => Ok(t.add_child(p, label)),
            (Some(_), None) => Err(Error::parse("sexpr", "multiple roots")),
        }
    };
    while i < toks.len() {
        match &toks[i] {
            Tok::Open => {
                let Some(Tok::Ident(name)) = toks.get(i + 1) else {
                    return Err(Error::parse("sexpr", "expected label after `(`"));
                };
                let label = alphabet.intern(name);
                let id = attach(&mut tree, &open, label)?;
                open.push(id);
                i += 2;
            }
            Tok::Close => {
                if open.pop().is_none() {
                    return Err(Error::parse("sexpr", "unbalanced `)`"));
                }
                i += 1;
            }
            Tok::Ident(name) => {
                let label = alphabet.intern(name);
                attach(&mut tree, &open, label)?;
                i += 1;
            }
        }
    }
    if !open.is_empty() {
        return Err(Error::parse("sexpr", "unbalanced `(`"));
    }
    tree.ok_or_else(|| Error::parse("sexpr", "empty input"))
}

/// Print a tree as an s-expression (leaves bare, inner nodes parenthesized).
/// Iterative.
pub fn to_sexpr(tree: &Tree, alphabet: &Alphabet) -> String {
    enum Item {
        Node(NodeId),
        Text(&'static str),
    }
    let mut out = String::new();
    let mut stack = vec![Item::Node(tree.root())];
    while let Some(item) = stack.pop() {
        match item {
            Item::Text(s) => out.push_str(s),
            Item::Node(v) => {
                if !out.is_empty() && !out.ends_with('(') {
                    out.push(' ');
                }
                if tree.is_leaf(v) {
                    out.push_str(alphabet.name(tree.label(v)));
                } else {
                    out.push('(');
                    out.push_str(alphabet.name(tree.label(v)));
                    stack.push(Item::Text(")"));
                    for &c in tree.children(v).iter().rev() {
                        stack.push(Item::Node(c));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut a = Alphabet::new();
        for s in [
            "x",
            "(f x)",
            "(f (g x y) y)",
            "(bibliography (book author title) (article author))",
            "(a (a (a (a a))))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(to_sexpr(&t, &a), s);
        }
    }

    #[test]
    fn single_node_variants() {
        let mut a = Alphabet::new();
        let t1 = from_sexpr("x", &mut a).unwrap();
        let t2 = from_sexpr("(x)", &mut a).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(to_sexpr(&t1, &a), "x");
    }

    #[test]
    fn errors() {
        let mut a = Alphabet::new();
        assert!(from_sexpr("", &mut a).is_err());
        assert!(from_sexpr("(f x", &mut a).is_err());
        assert!(from_sexpr("f)", &mut a).is_err());
        assert!(from_sexpr("( )", &mut a).is_err());
        assert!(from_sexpr("f g", &mut a).is_err(), "two roots");
        assert!(from_sexpr("(f $) ", &mut a).is_err());
    }

    #[test]
    fn deep_nesting_is_iterative() {
        let mut a = Alphabet::new();
        let depth = 100_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("(a ");
        }
        s.push('b');
        for _ in 0..depth {
            s.push(')');
        }
        let t = from_sexpr(&s, &mut a).unwrap();
        assert_eq!(t.num_nodes(), depth + 1);
        let printed = to_sexpr(&t, &a);
        assert_eq!(printed.len(), s.len());
    }
}
