//! The paper's motivating workload (Section 1, Figures 1–4): parse the
//! bibliography document, validate it against its DTD, and run unary MSO
//! queries over it.
//!
//! ```sh
//! cargo run --example xml_bibliography
//! ```

use query_automata::mso::{query_eval, unranked};
use query_automata::prelude::*;
use query_automata::xml::{figures, validate};

fn main() -> Result<()> {
    // Figures 1 + 2: document and DTD over a shared alphabet.
    let (doc, dtd) = figures::bibliography()?;
    let names = &doc.alphabet;
    println!("Figure 3 tree ({} nodes):", doc.tree.num_nodes());
    println!("  {}", doc.tree.render(names));

    // Validation, both directly and through the compiled tree automaton.
    validate::validate(&dtd, &doc.tree)?;
    let automaton = validate::to_automaton(&dtd)?;
    assert!(automaton.accepts(&doc.tree));
    println!("document validates against the Figure 2 DTD ✓");

    // Lemma 5.2: the DTD language is non-empty; here is a minimal document.
    let minimal = query_automata::core::unranked::emptiness::witness(&automaton)
        .expect("the DTD admits documents");
    println!("minimal valid document: {}", minimal.render(names));

    // ── Unary MSO queries over the document ─────────────────────────────
    let sigma = names.len();
    let queries = [
        (
            "authors of books",
            "label(v, author) & (ex b. (label(b, book) & edge(b, v)))",
        ),
        ("years appearing anywhere", "label(v, year)"),
        (
            "first author of each publication",
            "label(v, author) & !(ex w. (w < v & label(w, author)))",
        ),
        (
            "fields of publications that have a journal (articles)",
            "ex p. ex j. (edge(p, v) & edge(p, j) & label(j, journal))",
        ),
    ];
    for (what, src) in queries {
        let mut a = names.clone();
        let phi = parse_mso(src, &mut a)?;
        let compiled = unranked::compile_unary(&phi, "v", sigma)?;
        let selected = query_eval::eval_unary_unranked(&compiled, &doc.tree, sigma);
        println!("{what}:");
        for v in selected {
            let label = names.name(doc.tree.label(v));
            // show the text below, if any
            let text = doc
                .tree
                .children(v)
                .iter()
                .find_map(|&c| doc.text_of(c))
                .unwrap_or("");
            println!("  <{label}> {text}");
        }
    }
    Ok(())
}
