//! Observability guarantees: instrumentation must never change results
//! (the zero-cost claim, behavioral half), and observers must faithfully
//! capture what a run did.

use query_automata::base::rng::{Rng, StdRng};
use query_automata::obs::{Counter, Metrics, RunTrace, Series, Tee};
use query_automata::prelude::*;
use query_automata::twoway::string_qa::example_3_4_qa;

fn sym(i: usize) -> Symbol {
    Symbol::from_index(i)
}

fn random_word(rng: &mut StdRng, max_len: usize) -> Vec<Symbol> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| sym(rng.gen_range(0..2))).collect()
}

/// Satellite (b): on randomized words, the literal two-way run and the
/// Theorem 3.9 behavior computation agree — and both are unchanged by
/// instrumentation, whether the observer is a [`NoopObserver`], a
/// [`Metrics`] registry, or a full [`RunTrace`].
#[test]
fn string_qa_parity_instrumented_vs_uninstrumented() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&sigma);
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..200 {
        let w = random_word(&mut rng, 40);

        let plain = qa.query(&w).unwrap();
        let noop = qa.query_with(&w, &mut NoopObserver).unwrap();
        let metrics = Metrics::new();
        let observed = qa.query_with(&w, &mut metrics.observer()).unwrap();
        let mut trace = RunTrace::new();
        let traced = qa.query_with(&w, &mut trace).unwrap();

        let via_behavior = qa.query_via_behavior(&w);
        let via_behavior_noop = qa.query_via_behavior_with(&w, &mut NoopObserver);
        let bm = Metrics::new();
        let via_behavior_obs = qa.query_via_behavior_with(&w, &mut bm.observer());

        assert_eq!(plain, noop);
        assert_eq!(plain, observed);
        assert_eq!(plain, traced);
        assert_eq!(plain, via_behavior, "Theorem 3.9 parity on {w:?}");
        assert_eq!(via_behavior, via_behavior_noop);
        assert_eq!(via_behavior, via_behavior_obs);
    }
}

/// Ranked and unranked tree queries are likewise observer-invariant.
#[test]
fn tree_qa_parity_instrumented_vs_uninstrumented() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let labels = [sigma.symbol("0"), sigma.symbol("1")];
    let uq = example_5_14(&sigma);
    let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let rq = example_4_4(&circuits);
    let circuit_labels = [
        circuits.symbol("AND"),
        circuits.symbol("OR"),
        circuits.symbol("0"),
        circuits.symbol("1"),
    ];
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..40 {
        let n = rng.gen_range(1..=25);
        let t = query_automata::trees::generate::random(&mut rng, &labels, n, None);
        let metrics = Metrics::new();
        assert_eq!(
            uq.query(&t).unwrap(),
            uq.query_with(&t, &mut metrics.observer()).unwrap()
        );

        let ct = query_automata::trees::generate::random(&mut rng, &circuit_labels, n, Some(2));
        let metrics = Metrics::new();
        assert_eq!(
            rq.query(&ct).unwrap(),
            rq.query_with(&ct, &mut metrics.observer()).unwrap()
        );
    }
}

/// Decision procedures return the same verdict under observation.
#[test]
fn decision_parity_instrumented_vs_uninstrumented() {
    use query_automata::decision::ranked_decisions::{
        non_emptiness_with, non_emptiness_with_budget, DEFAULT_MAX_ITEMS,
    };
    let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = example_4_4(&circuits);
    let plain = non_emptiness_with_budget(&qa, DEFAULT_MAX_ITEMS).unwrap();
    let metrics = Metrics::new();
    let observed = non_emptiness_with(&qa, DEFAULT_MAX_ITEMS, &mut metrics.observer()).unwrap();
    assert_eq!(plain.is_some(), observed.is_some());
    assert_eq!(
        plain.as_ref().map(|w| (&w.tree, w.node)),
        observed.as_ref().map(|w| (&w.tree, w.node)),
    );
    assert!(metrics.get(Counter::SummariesExplored) > 0);
}

/// Satellite (c): a [`RunTrace`] of the Example 3.4 2DFA run captures the
/// full configuration sequence — sweep right to the endmarker, one
/// reversal, sweep back flipping parity states.
#[test]
fn run_trace_captures_example_3_4_run() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&sigma);
    // 101101: six symbols, endmarked tape has length 8.
    let w: Vec<Symbol> = [1, 0, 1, 1, 0, 1].map(sym).to_vec();
    let mut trace = RunTrace::new();
    let selected = qa.query_with(&w, &mut trace).unwrap();
    assert_eq!(selected, vec![3, 5], "1s at odd positions from the right");

    // One configuration per visited tape cell: 8 moving right (including
    // the left endmarker start and the right endmarker turn), 7 back.
    assert_eq!(trace.configs.len(), 15);
    assert_eq!(trace.counter(Counter::Steps), 14);
    assert_eq!(trace.reversals(), 1);
    let first = &trace.configs[0];
    assert_eq!((first.state, first.pos, first.dir), (0, 0, 1));
    let turn = &trace.configs[7];
    assert_eq!(
        (turn.pos, turn.dir),
        (7, -1),
        "turns at the right endmarker"
    );
    let last = trace.configs.last().unwrap();
    assert_eq!((last.pos, last.dir), (0, 0), "halts on the left endmarker");
    // The trace also accumulated the per-position assumed-state series.
    let (count, _sum) = trace.samples(Series::AssumedStates);
    assert_eq!(count as usize, w.len() + 2);
    // Phases from StringQa::query_with.
    let names: Vec<&str> = trace.phases.iter().map(|p| p.name).collect();
    assert_eq!(names, ["run", "selection scan"]);
}

/// A [`Tee`] fans one run out to two observers that then agree on every
/// counter.
#[test]
fn tee_feeds_both_observers() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&sigma);
    let w: Vec<Symbol> = [1, 1, 0, 1].map(sym).to_vec();
    let metrics = Metrics::new();
    let mut trace = RunTrace::new();
    qa.query_with(&w, &mut Tee(metrics.observer(), &mut trace))
        .unwrap();
    for c in Counter::ALL {
        assert_eq!(metrics.get(c), trace.counter(c), "{}", c.name());
    }
}

/// The Figure 5 evaluator is observer-invariant and reports its three
/// phases.
#[test]
fn fig5_eval_parity_and_phases() {
    let mut a = Alphabet::from_names(["s", "t"]);
    let phi = parse_mso("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
    let d = query_automata::mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
    let t = query_automata::trees::generate::complete(a.symbol("s"), 2, 6);
    let plain = query_automata::mso::query_eval::eval_unary_ranked(&d, &t, 2);
    let mut trace = RunTrace::new();
    let observed = query_automata::mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut trace);
    assert_eq!(plain, observed);
    let names: Vec<&str> = trace.phases.iter().map(|p| p.name).collect();
    assert_eq!(names, ["bottom-up pass", "top-down pass", "verdicts"]);
    assert!(trace.counter(Counter::TableLookups) > 0);
}
