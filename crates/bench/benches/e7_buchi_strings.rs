//! E7 (Theorems 2.5 & 3.9): the Büchi pipeline on strings — MSO→DFA
//! compilation cost, DFA runs are linear, the synthesized two-way QA runs
//! are linear too; naive MSO evaluation explodes with word length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qa_base::Alphabet;

const SENTENCE: &str = "all x. all y. (edge(x, y) -> !(label(x, 1) & label(y, 1)))";
const QUERY: &str = "label(v, 1) & !(ex w. (w < v & label(w, 1)))";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_buchi_strings");
    let mut a = Alphabet::from_names(["0", "1"]);
    let phi = qa_mso::parse(SENTENCE, &mut a).unwrap();
    let psi = qa_mso::parse(QUERY, &mut a).unwrap();

    group.bench_function("compile_sentence", |b| {
        b.iter(|| {
            qa_mso::compile_string::compile_sentence(&phi, 2)
                .unwrap()
                .num_states()
        })
    });
    group.bench_function("synthesize_qa_thm39", |b| {
        b.iter(|| {
            let d = qa_mso::compile_string::compile_unary(&psi, "v", 2).unwrap();
            qa_mso::to_qa::string_query_to_qa(&d, 2)
                .unwrap()
                .machine()
                .num_states()
        })
    });

    let dfa = qa_mso::compile_string::compile_sentence(&phi, 2).unwrap();
    let d_marked = qa_mso::compile_string::compile_unary(&psi, "v", 2).unwrap();
    let qa = qa_mso::to_qa::string_query_to_qa(&d_marked, 2).unwrap();
    for n in [16usize, 256, 4096] {
        let w = qa_bench::random_word(n, n as u64);
        group.bench_with_input(BenchmarkId::new("dfa_run", n), &w, |b, w| {
            b.iter(|| dfa.accepts(w))
        });
        group.bench_with_input(BenchmarkId::new("qa_query_run", n), &w, |b, w| {
            b.iter(|| qa.query(w).unwrap().len())
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("naive_mso", n), &w, |b, w| {
                b.iter(|| {
                    qa_mso::naive::check(qa_mso::naive::Structure::Word(w), &phi).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
