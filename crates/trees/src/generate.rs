//! Tree generators for tests and the benchmark harness.

use qa_base::rng::Rng;
use qa_base::Symbol;

use crate::Tree;

/// A complete `k`-ary tree of the given height, all nodes labeled `label`
/// (height 0 = a single leaf).
pub fn complete(label: Symbol, k: usize, height: usize) -> Tree {
    let mut t = Tree::leaf(label);
    let mut frontier = vec![t.root()];
    for _ in 0..height {
        let mut next = Vec::with_capacity(frontier.len() * k);
        for v in frontier {
            for _ in 0..k {
                next.push(t.add_child(v, label));
            }
        }
        frontier = next;
    }
    t
}

/// A chain (monadic tree) of `len + 1` nodes.
pub fn chain(label: Symbol, len: usize) -> Tree {
    let mut t = Tree::leaf(label);
    let mut cur = t.root();
    for _ in 0..len {
        cur = t.add_child(cur, label);
    }
    t
}

/// A "broom": a chain of length `handle` ending in a node with `fanout`
/// leaf children — mixes depth and width.
pub fn broom(label: Symbol, handle: usize, fanout: usize) -> Tree {
    let mut t = chain(label, handle);
    let deepest = t
        .nodes()
        .max_by_key(|&v| t.depth(v))
        .expect("chain is non-empty");
    for _ in 0..fanout {
        t.add_child(deepest, label);
    }
    t
}

/// A flat tree: a root with `fanout` leaf children (the depth-1 unranked
/// stress shape of Proposition 5.10).
pub fn flat(root_label: Symbol, child_label: Symbol, fanout: usize) -> Tree {
    let mut t = Tree::leaf(root_label);
    for _ in 0..fanout {
        t.add_child(t.root(), child_label);
    }
    t
}

/// A uniformly random tree with exactly `num_nodes` nodes, arity at most
/// `max_arity` (`None` = unbounded), labels drawn uniformly from `labels`.
///
/// Grown by repeatedly attaching a leaf under a random eligible node, which
/// produces a useful variety of shapes for property tests.
pub fn random<R: Rng>(
    rng: &mut R,
    labels: &[Symbol],
    num_nodes: usize,
    max_arity: Option<usize>,
) -> Tree {
    assert!(num_nodes >= 1 && !labels.is_empty());
    let pick = |rng: &mut R| labels[rng.gen_range(0..labels.len())];
    let root_label = pick(rng);
    let mut t = Tree::leaf(root_label);
    let mut eligible: Vec<crate::NodeId> = vec![t.root()];
    for _ in 1..num_nodes {
        let idx = rng.gen_range(0..eligible.len());
        let parent = eligible[idx];
        let label = pick(rng);
        let child = t.add_child(parent, label);
        eligible.push(child);
        if let Some(m) = max_arity {
            if t.arity(parent) >= m {
                eligible.swap_remove(idx);
            }
        }
    }
    t
}

/// A random **full binary** tree (every inner node has exactly 2 children)
/// with the given number of inner nodes; labels for inner nodes and leaves
/// drawn from the respective slices. Used for the Boolean-circuit examples
/// (Examples 4.2/4.4 of the paper).
pub fn random_full_binary<R: Rng>(
    rng: &mut R,
    inner_labels: &[Symbol],
    leaf_labels: &[Symbol],
    inner_nodes: usize,
) -> Tree {
    let pick = |rng: &mut R, ls: &[Symbol]| ls[rng.gen_range(0..ls.len())];
    if inner_nodes == 0 {
        return Tree::leaf(pick(rng, leaf_labels));
    }
    let mut t = Tree::leaf(pick(rng, inner_labels));
    // leaves of the growing full-binary skeleton that are still "inner
    // candidates": nodes with no children yet
    let mut expandable = vec![t.root()];
    let mut remaining = inner_nodes - 1;
    // first expansion gives the root two children
    while !expandable.is_empty() {
        let idx = rng.gen_range(0..expandable.len());
        let v = expandable.swap_remove(idx);
        for _ in 0..2 {
            if remaining > 0 && rng.gen_bool(0.5) {
                let c = t.add_child(v, pick(rng, inner_labels));
                expandable.push(c);
                remaining -= 1;
            } else {
                t.add_child(v, pick(rng, leaf_labels));
            }
        }
    }
    // If we still owe inner nodes, convert random leaves (rare path): just
    // accept fewer inner nodes — callers use this for variety, not exact
    // counts.
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::rng::StdRng;
    use qa_base::Alphabet;

    fn syms() -> (Symbol, Symbol) {
        let mut a = Alphabet::new();
        (a.intern("a"), a.intern("b"))
    }

    #[test]
    fn complete_tree_counts() {
        let (a, _) = syms();
        let t = complete(a, 2, 3);
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.rank(), 2);
        assert_eq!(complete(a, 3, 0).num_nodes(), 1);
    }

    #[test]
    fn chain_and_broom() {
        let (a, _) = syms();
        assert_eq!(chain(a, 5).height(), 5);
        let b = broom(a, 3, 4);
        assert_eq!(b.num_nodes(), 3 + 1 + 4);
        assert_eq!(b.rank(), 4);
    }

    #[test]
    fn flat_tree() {
        let (a, b) = syms();
        let t = flat(a, b, 6);
        assert_eq!(t.arity(t.root()), 6);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn random_respects_size_and_arity() {
        let (a, b) = syms();
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 10, 50] {
            let t = random(&mut rng, &[a, b], n, Some(3));
            assert_eq!(t.num_nodes(), n);
            assert!(t.rank() <= 3);
        }
        let t = random(&mut rng, &[a], 30, None);
        assert_eq!(t.num_nodes(), 30);
    }

    #[test]
    fn random_full_binary_is_full() {
        let (a, b) = syms();
        let mut rng = StdRng::seed_from_u64(7);
        for inner in [0usize, 1, 5, 20] {
            let t = random_full_binary(&mut rng, &[a], &[b], inner);
            for v in t.nodes() {
                assert!(t.arity(v) == 0 || t.arity(v) == 2);
            }
        }
    }
}
