//! Exact decision procedures for ranked query automata — the Theorem 6.3
//! construction on cut semantics.
//!
//! A subtree's entire interaction with its context is captured by a
//! *summary*: its root label, whether it contains the marked node, whether
//! its root is the marked node, and — per machine under consideration — a
//! *behavior function* mapping each entry state to either `Settles(q',
//! sel)` (the subtree eventually folds back to its root in the up-state
//! `q'`, having visited the marked node in a selecting state iff `sel`) or
//! `Never` (it gets stuck or loops inside). These summaries are exactly
//! the `(f, d, s, σ)` states of the paper's bottom-up automaton `B`,
//! extended with the `Σ × {1}` mark of the query reduction; we enumerate
//! only the *realizable* ones by a lazy fixpoint, keeping a witness tree
//! per summary.
//!
//! Non-emptiness, containment and equivalence all run the same fixpoint —
//! containment simply tracks the behavior of both machines on the shared
//! witness space.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_core::ranked::twoway::Polarity;
use qa_core::ranked::RankedQa;
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::{NodeId, Tree};

/// Behavior of a subtree on one entry state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Beh {
    /// Folds back to its root in this up-state; `sel` = the marked node was
    /// assumed in a selecting state during the excursion.
    Settles { state: StateId, sel: bool },
    /// Gets stuck or loops inside; the global run can never accept.
    Never,
}

/// A realizable subtree summary for a family of machines.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    label: Symbol,
    root_marked: bool,
    has_mark: bool,
    /// `behs[machine][entry state]`.
    behs: Vec<Vec<Beh>>,
}

/// A summary with a *derivation* — which children items produced it — so a
/// representative tree can be materialized on demand without storing (and
/// exponentially duplicating) trees during saturation.
#[derive(Clone, Debug)]
struct Item {
    key: Key,
    /// indices of the child items this summary was first derived from
    /// (empty for leaves).
    children_idx: Vec<usize>,
}

/// A witness for a query-level decision: the tree and the node in question.
#[derive(Clone, Debug)]
pub struct RankedWitness {
    /// The input tree.
    pub tree: Tree,
    /// The node selected (by the left automaton, for containment
    /// violations).
    pub node: NodeId,
}

/// Budget for the summary fixpoint (the paper's EXPTIME bound is real:
/// summaries can be exponential in the state count).
pub const DEFAULT_MAX_ITEMS: usize = 50_000;

/// Interned subtree summaries reused across decision calls (the qa-par
/// `BehaviorCache` layer for the §6 fixpoints).
///
/// Summaries are pure functions of `(label, marked, children summaries)`
/// and the machine family, so the cache interns every summary it computes
/// and keys derived summaries by the *ids* of their children: repeated
/// decision calls on the same machines (the common case in batch traffic —
/// the same query checked against many documents' schemas, or the same
/// containment probed under different budgets) skip the behavior-function
/// recomputation entirely. Used by [`non_emptiness_cached`] and
/// [`containment_cached`]; results are identical to the uncached calls.
///
/// The cache records a fingerprint of each machine's enumerable structure
/// (states, polarity, leaf/root/down tables, finals, selection function)
/// and resets itself when handed a different family. Up transitions are not
/// publicly enumerable and are excluded from the fingerprint, so reuse the
/// cache only across calls on the *same* machine values.
#[derive(Debug, Default)]
pub struct SummaryCache {
    /// Interned summary keys by id.
    keys: Vec<Key>,
    /// Leaf summaries: `(label, marked)` → key id.
    leaves: HashMap<(Symbol, bool), u32>,
    /// Derived summaries: `(label, marked, children key ids)` → key id.
    inners: HashMap<(Symbol, bool, Box<[u32]>), u32>,
    /// Fingerprint of the machine family the summaries belong to.
    fingerprint: Option<u64>,
    hits: u64,
    misses: u64,
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct summaries interned so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no summaries are interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Lookups answered from the cache since creation (or last [`clear`]).
    ///
    /// [`clear`]: SummaryCache::clear
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compute a fresh summary.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all interned summaries and reset the statistics.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.leaves.clear();
        self.inners.clear();
        self.fingerprint = None;
        self.hits = 0;
        self.misses = 0;
    }

    /// Reset the cache if `machines` differ from the family the interned
    /// summaries were computed for. Called once per decision call.
    fn ensure_family(&mut self, machines: &[&RankedQa]) {
        let fp = family_fingerprint(machines);
        if self.fingerprint != Some(fp) {
            self.clear();
            self.fingerprint = Some(fp);
        }
    }

    fn intern(&mut self, key: &Key) -> u32 {
        let id = self.keys.len() as u32;
        self.keys.push(key.clone());
        id
    }

    /// The leaf summary for `(label, marked)`, interned.
    fn leaf<O: Observer>(
        &mut self,
        machines: &[&RankedQa],
        label: Symbol,
        marked: bool,
        obs: &mut O,
    ) -> (Key, u32) {
        if let Some(&id) = self.leaves.get(&(label, marked)) {
            self.hits += 1;
            obs.count(Counter::CacheHits, 1);
            return (self.keys[id as usize].clone(), id);
        }
        self.misses += 1;
        obs.count(Counter::CacheMisses, 1);
        let key = leaf_item(machines, label, marked).key;
        let id = self.intern(&key);
        self.leaves.insert((label, marked), id);
        (key, id)
    }

    /// The derived summary for `(label, marked, children)`, interned. The
    /// children are given both as cache ids (the lookup key) and as keys
    /// (to compute the summary on a miss).
    fn inner<O: Observer>(
        &mut self,
        machines: &[&RankedQa],
        label: Symbol,
        marked: bool,
        child_ids: &[u32],
        children: &[&Key],
        obs: &mut O,
    ) -> (Key, u32) {
        let lookup = (label, marked, child_ids.into());
        if let Some(&id) = self.inners.get(&lookup) {
            self.hits += 1;
            obs.count(Counter::CacheHits, 1);
            return (self.keys[id as usize].clone(), id);
        }
        self.misses += 1;
        obs.count(Counter::CacheMisses, 1);
        let key = inner_key(machines, label, marked, children);
        let id = self.intern(&key);
        self.inners.insert(lookup, id);
        (key, id)
    }
}

/// Fingerprint of the enumerable structure of a machine family (see
/// [`SummaryCache`] for what is and is not covered).
fn family_fingerprint(machines: &[&RankedQa]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    machines.len().hash(&mut h);
    for qa in machines {
        let m = qa.machine();
        m.num_states().hash(&mut h);
        m.alphabet_len().hash(&mut h);
        m.max_rank().hash(&mut h);
        m.initial().index().hash(&mut h);
        for s in 0..m.num_states() {
            let q = StateId::from_index(s);
            m.is_final(q).hash(&mut h);
            for a in 0..m.alphabet_len() {
                let sym = Symbol::from_index(a);
                qa.is_selecting(q, sym).hash(&mut h);
                (m.polarity(q, sym) == Some(Polarity::Down)).hash(&mut h);
                m.leaf(q, sym).map(|t| t.index()).hash(&mut h);
                m.root(q, sym).map(|t| t.index()).hash(&mut h);
                for n in 1..=m.max_rank() {
                    match m.down(q, sym, n) {
                        None => 0usize.hash(&mut h),
                        Some(states) => {
                            for st in states {
                                (st.index() + 1).hash(&mut h);
                            }
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

fn leaf_item(machines: &[&RankedQa], label: Symbol, marked: bool) -> Item {
    let behs = machines
        .iter()
        .map(|qa| {
            let m = qa.machine();
            (0..m.num_states())
                .map(|q_idx| {
                    let mut cur = StateId::from_index(q_idx);
                    let mut visited = vec![false; m.num_states()];
                    let mut sel = marked && qa.is_selecting(cur, label);
                    loop {
                        if visited[cur.index()] {
                            break Beh::Never;
                        }
                        visited[cur.index()] = true;
                        match m.polarity(cur, label) {
                            Some(Polarity::Up) => {
                                break Beh::Settles { state: cur, sel };
                            }
                            Some(Polarity::Down) => match m.leaf(cur, label) {
                                Some(q2) => {
                                    sel = sel || (marked && qa.is_selecting(q2, label));
                                    cur = q2;
                                }
                                None => break Beh::Never,
                            },
                            None => break Beh::Never,
                        }
                    }
                })
                .collect()
        })
        .collect();
    Item {
        key: Key {
            label,
            root_marked: marked,
            has_mark: marked,
            behs,
        },
        children_idx: Vec::new(),
    }
}

/// Compute the summary key of an inner node from its children's keys only
/// (no witness work — this is the hot path of the fixpoint).
fn inner_key(machines: &[&RankedQa], label: Symbol, marked: bool, children: &[&Key]) -> Key {
    let n = children.len();
    let behs: Vec<Vec<Beh>> = machines
        .iter()
        .enumerate()
        .map(|(mi, qa)| {
            let m = qa.machine();
            (0..m.num_states())
                .map(|q_idx| {
                    let mut cur = StateId::from_index(q_idx);
                    let mut visited = vec![false; m.num_states()];
                    let mut sel = marked && qa.is_selecting(cur, label);
                    loop {
                        if visited[cur.index()] {
                            break Beh::Never;
                        }
                        visited[cur.index()] = true;
                        match m.polarity(cur, label) {
                            Some(Polarity::Up) => {
                                break Beh::Settles { state: cur, sel };
                            }
                            Some(Polarity::Down) => {
                                let Some(down) = m.down(cur, label, n) else {
                                    break Beh::Never;
                                };
                                let down = down.to_vec();
                                let mut pairs = Vec::with_capacity(n);
                                let mut dead = false;
                                for (i, child) in children.iter().enumerate() {
                                    match child.behs[mi][down[i].index()] {
                                        Beh::Settles { state, sel: csel } => {
                                            sel = sel || csel;
                                            pairs.push((state, child.label));
                                        }
                                        Beh::Never => {
                                            dead = true;
                                            break;
                                        }
                                    }
                                }
                                if dead {
                                    break Beh::Never;
                                }
                                match m.up(&pairs) {
                                    Some(q2) => {
                                        sel = sel || (marked && qa.is_selecting(q2, label));
                                        cur = q2;
                                    }
                                    None => break Beh::Never,
                                }
                            }
                            None => break Beh::Never,
                        }
                    }
                })
                .collect()
        })
        .collect();
    Key {
        label,
        root_marked: marked,
        has_mark: marked || children.iter().any(|c| c.has_mark),
        behs,
    }
}

/// Materialize the representative tree of `items[idx]` from the derivation
/// chain, returning the tree and its marked node (if any). Recursion depth
/// equals derivation depth, which the fixpoint keeps modest (items are
/// discovered smallest-derivation-first).
fn materialize(items: &[Item], idx: usize) -> (Tree, Option<NodeId>) {
    let it = &items[idx];
    if it.children_idx.is_empty() {
        let t = Tree::leaf(it.key.label);
        let mark = it.key.root_marked.then(|| t.root());
        return (t, mark);
    }
    let mut subtrees = Vec::with_capacity(it.children_idx.len());
    let mut child_marks = Vec::with_capacity(it.children_idx.len());
    for &c in &it.children_idx {
        let (t, m) = materialize(items, c);
        child_marks.push(m.map(|mk| (t.clone(), mk)));
        subtrees.push(t);
    }
    let tree = Tree::node(it.key.label, subtrees);
    let mark = if it.key.root_marked {
        Some(tree.root())
    } else {
        child_marks.iter().enumerate().find_map(|(i, cm)| {
            cm.as_ref().map(|(small, mk)| {
                find_corresponding(&tree, tree.child(tree.root(), i), small, *mk)
            })
        })
    };
    (tree, mark)
}

/// Find the node in `big` (rooted at `big_root`) corresponding to `node` in
/// `small` under the structural isomorphism of the grafted copy.
fn find_corresponding(big: &Tree, big_root: NodeId, small: &Tree, node: NodeId) -> NodeId {
    // path from small's root to node
    let mut path = Vec::new();
    let mut cur = node;
    while let Some(p) = small.parent(cur) {
        path.push(small.child_index(cur));
        cur = p;
    }
    path.reverse();
    let mut cur = big_root;
    for idx in path {
        cur = big.child(cur, idx);
    }
    cur
}

/// Run the lazy fixpoint, returning all realizable summaries (≤ arity
/// `max_rank`, alphabet of the first machine). When `stop_when` matches a
/// freshly discovered summary, exploration ends early with the items found
/// so far (the matching item last) — this is what makes witness searches
/// fast even when full saturation would be exponential.
fn explore<O: Observer>(
    machines: &[&RankedQa],
    max_items: usize,
    stop_when: Option<&dyn Fn(&Item) -> bool>,
    mut cache: Option<&mut SummaryCache>,
    obs: &mut O,
) -> Result<Vec<Item>> {
    let sigma = machines[0].machine().alphabet_len();
    let rank = machines[0].machine().max_rank();
    for qa in machines {
        assert_eq!(qa.machine().alphabet_len(), sigma, "mismatched alphabets");
    }
    if let Some(c) = cache.as_deref_mut() {
        c.ensure_family(machines);
    }
    let mut items: Vec<Item> = Vec::new();
    // cache key id per item; parallel to `items`, only written with a cache.
    let mut item_cids: Vec<u32> = Vec::new();
    let mut seen: HashMap<Key, usize> = HashMap::new();
    let push = |items: &mut Vec<Item>,
                item_cids: &mut Vec<u32>,
                seen: &mut HashMap<Key, usize>,
                obs: &mut O,
                it: Item,
                cid: u32|
     -> bool {
        if seen.contains_key(&it.key) {
            return false;
        }
        seen.insert(it.key.clone(), items.len());
        items.push(it);
        item_cids.push(cid);
        obs.count(Counter::SummariesExplored, 1);
        obs.count(Counter::BudgetConsumed, 1);
        obs.state_visit(Machine::Decision, (items.len() - 1) as u32, u32::MAX);
        true
    };
    for a in 0..sigma {
        for marked in [false, true] {
            let (it, cid) = match cache.as_deref_mut() {
                Some(c) => {
                    let (key, cid) = c.leaf(machines, Symbol::from_index(a), marked, obs);
                    (
                        Item {
                            key,
                            children_idx: Vec::new(),
                        },
                        cid,
                    )
                }
                None => (leaf_item(machines, Symbol::from_index(a), marked), 0),
            };
            let hit = stop_when.is_some_and(|p| p(&it));
            push(&mut items, &mut item_cids, &mut seen, obs, it, cid);
            if hit {
                return Ok(items);
            }
        }
    }
    // Saturate. Frontier optimization: a tuple all of whose components were
    // known in a previous round has already been processed, so each round
    // only enumerates tuples containing at least one fresh item.
    let mut old_count = 0usize;
    loop {
        if let Err(a) = obs.checkpoint() {
            obs.count(Counter::BudgetTrips, 1);
            return Err(Error::aborted(a.what, a.limit, a.actual));
        }
        obs.count(Counter::FixpointIterations, 1);
        let known = items.len();
        if known > max_items {
            obs.count(Counter::BudgetTrips, 1);
            return Err(Error::FuelExhausted {
                budget: max_items as u64,
            });
        }
        let mut added = false;
        for arity in 1..=rank {
            let mut tuple = vec![0usize; arity];
            'tuples: loop {
                if tuple.iter().any(|&i| i >= known) {
                    break 'tuples;
                }
                let fresh = tuple.iter().any(|&i| i >= old_count);
                let marks_below = tuple.iter().filter(|&&i| items[i].key.has_mark).count();
                if fresh && marks_below <= 1 {
                    for a in 0..sigma {
                        for marked in [false, true] {
                            if marked && marks_below > 0 {
                                continue;
                            }
                            let child_keys: Vec<&Key> =
                                tuple.iter().map(|&i| &items[i].key).collect();
                            let (key, cid) = match cache.as_deref_mut() {
                                Some(c) => {
                                    let child_cids: Vec<u32> =
                                        tuple.iter().map(|&i| item_cids[i]).collect();
                                    c.inner(
                                        machines,
                                        Symbol::from_index(a),
                                        marked,
                                        &child_cids,
                                        &child_keys,
                                        obs,
                                    )
                                }
                                None => (
                                    inner_key(machines, Symbol::from_index(a), marked, &child_keys),
                                    0,
                                ),
                            };
                            if seen.contains_key(&key) {
                                continue;
                            }
                            let it = Item {
                                key,
                                children_idx: tuple.clone(),
                            };
                            let hit = stop_when.is_some_and(|p| p(&it));
                            if push(&mut items, &mut item_cids, &mut seen, obs, it, cid) {
                                added = true;
                            }
                            if hit {
                                return Ok(items);
                            }
                            if items.len() > max_items {
                                obs.count(Counter::BudgetTrips, 1);
                                return Err(Error::FuelExhausted {
                                    budget: max_items as u64,
                                });
                            }
                        }
                    }
                }
                let mut k = 0;
                loop {
                    if k == arity {
                        break 'tuples;
                    }
                    tuple[k] += 1;
                    if tuple[k] < known {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
            }
        }
        old_count = known;
        if !added {
            break;
        }
    }
    Ok(items)
}

/// The global verdict of machine `mi` on a summary: `Some((accepts,
/// mark_selected))`, or `None` when the run never reaches a maximal
/// root-only configuration.
fn root_verdict(qa: &RankedQa, item: &Item, mi: usize) -> Option<(bool, bool)> {
    let m = qa.machine();
    let label = item.key.label;
    let mut cur = m.initial();
    let mut visited = vec![false; m.num_states()];
    let mut sel = false;
    loop {
        match item.key.behs[mi][cur.index()] {
            Beh::Never => return None,
            Beh::Settles { state, sel: s } => {
                sel = sel || s;
                match m.root(state, label) {
                    Some(q2) => {
                        if visited[q2.index()] {
                            return None; // root-transition loop
                        }
                        visited[q2.index()] = true;
                        sel = sel || (item.key.root_marked && qa.is_selecting(q2, label));
                        cur = q2;
                    }
                    None => return Some((m.is_final(state), sel)),
                }
            }
        }
    }
}

/// Non-emptiness (Theorem 6.3, ranked case): is there a tree on which `qa`
/// selects some node? Returns a witness.
pub fn non_emptiness(qa: &RankedQa) -> Result<Option<RankedWitness>> {
    non_emptiness_with_budget(qa, DEFAULT_MAX_ITEMS)
}

/// [`non_emptiness`] with an explicit summary budget.
pub fn non_emptiness_with_budget(qa: &RankedQa, max_items: usize) -> Result<Option<RankedWitness>> {
    non_emptiness_with(qa, max_items, &mut NoopObserver)
}

/// [`non_emptiness_with_budget`] with an [`Observer`]: every summary
/// discovered by the fixpoint is a [`Counter::SummariesExplored`] (and one
/// unit of [`Counter::BudgetConsumed`]), outer rounds are
/// [`Counter::FixpointIterations`], and the witness size (when non-empty)
/// lands in [`Series::WitnessSize`]. With [`NoopObserver`] this
/// monomorphizes to exactly `non_emptiness_with_budget`.
pub fn non_emptiness_with<O: Observer>(
    qa: &RankedQa,
    max_items: usize,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    non_emptiness_impl(qa, max_items, None, obs)
}

/// [`non_emptiness_with`] with subtree summaries interned in `cache` (see
/// [`SummaryCache`]): a repeated call on the same machine answers every
/// summary from the cache. Results are identical to the uncached call;
/// cache hits and misses are reported to `obs`.
pub fn non_emptiness_cached<O: Observer>(
    qa: &RankedQa,
    max_items: usize,
    cache: &mut SummaryCache,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    non_emptiness_impl(qa, max_items, Some(cache), obs)
}

fn non_emptiness_impl<O: Observer>(
    qa: &RankedQa,
    max_items: usize,
    cache: Option<&mut SummaryCache>,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    let hit = |it: &Item| it.key.has_mark && matches!(root_verdict(qa, it, 0), Some((true, true)));
    obs.phase_start("summary fixpoint");
    let items = explore(&[qa], max_items, Some(&hit), cache, obs);
    obs.phase_end("summary fixpoint");
    let items = items?;
    match items.last() {
        Some(it) if hit(it) => {
            obs.phase_start("witness materialization");
            let (tree, mark) = materialize(&items, items.len() - 1);
            obs.record(Series::WitnessSize, tree.num_nodes() as u64);
            obs.phase_end("witness materialization");
            Ok(Some(RankedWitness {
                tree,
                node: mark.expect("has_mark"),
            }))
        }
        _ => Ok(None),
    }
}

/// Containment: `A₁(t) ⊆ A₂(t)` for every ranked tree? `Ok(None)` when
/// contained; `Ok(Some(w))` gives a violation (selected by `A₁`, not `A₂`).
pub fn containment(a1: &RankedQa, a2: &RankedQa) -> Result<Option<RankedWitness>> {
    containment_with_budget(a1, a2, DEFAULT_MAX_ITEMS)
}

/// [`containment`] with an explicit budget.
pub fn containment_with_budget(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
) -> Result<Option<RankedWitness>> {
    containment_with(a1, a2, max_items, &mut NoopObserver)
}

/// [`containment_with_budget`] with an [`Observer`] (same event vocabulary
/// as [`non_emptiness_with`]).
pub fn containment_with<O: Observer>(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    containment_impl(a1, a2, max_items, None, obs)
}

/// [`containment_with`] with subtree summaries interned in `cache` (see
/// [`SummaryCache`]): repeated calls on the same machine pair answer every
/// summary from the cache. Results are identical to the uncached call.
pub fn containment_cached<O: Observer>(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
    cache: &mut SummaryCache,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    containment_impl(a1, a2, max_items, Some(cache), obs)
}

fn containment_impl<O: Observer>(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
    cache: Option<&mut SummaryCache>,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    let hit = |it: &Item| {
        it.key.has_mark
            && matches!(root_verdict(a1, it, 0), Some((true, true)))
            && !matches!(root_verdict(a2, it, 1), Some((true, true)))
    };
    obs.phase_start("summary fixpoint");
    let items = explore(&[a1, a2], max_items, Some(&hit), cache, obs);
    obs.phase_end("summary fixpoint");
    let items = items?;
    match items.last() {
        Some(it) if hit(it) => {
            obs.phase_start("witness materialization");
            let (tree, mark) = materialize(&items, items.len() - 1);
            obs.record(Series::WitnessSize, tree.num_nodes() as u64);
            obs.phase_end("witness materialization");
            Ok(Some(RankedWitness {
                tree,
                node: mark.expect("has_mark"),
            }))
        }
        _ => Ok(None),
    }
}

/// Equivalence: same query? `Ok(None)` when equivalent; otherwise the
/// violation and whether the left side selected it.
pub fn equivalence(a1: &RankedQa, a2: &RankedQa) -> Result<Option<(RankedWitness, bool)>> {
    if let Some(w) = containment(a1, a2)? {
        return Ok(Some((w, true)));
    }
    if let Some(w) = containment(a2, a1)? {
        return Ok(Some((w, false)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_core::ranked::query::example_4_4;
    use qa_core::ranked::RankedQa;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    #[test]
    fn example_4_4_is_nonempty() {
        let a = alpha();
        let qa = example_4_4(&a);
        let w = non_emptiness(&qa).unwrap().expect("non-empty");
        // verify against the run semantics
        let selected = qa.query(&w.tree).unwrap();
        assert!(selected.contains(&w.node), "{}", w.tree.render(&a));
    }

    #[test]
    fn deselected_automaton_is_empty() {
        let a = alpha();
        let machine = qa_core::ranked::twoway::example_4_2(&a);
        let qa = RankedQa::new(machine); // no selections at all
        assert!(non_emptiness(&qa).unwrap().is_none());
    }

    #[test]
    fn containment_detects_strictness() {
        let a = alpha();
        let full = example_4_4(&a);
        // restricted: only select AND gates evaluating to 1
        let mut restricted = example_4_4(&a);
        let or = a.symbol("OR");
        for i in 0..restricted.machine().num_states() {
            restricted.set_selecting(StateId::from_index(i), or, false);
        }
        assert!(containment(&restricted, &full).unwrap().is_none());
        let w = containment(&full, &restricted).unwrap().expect("violation");
        assert!(full.query(&w.tree).unwrap().contains(&w.node));
        assert!(!restricted.query(&w.tree).unwrap().contains(&w.node));
    }

    #[test]
    fn equivalence_is_reflexive() {
        let a = alpha();
        let qa = example_4_4(&a);
        assert!(equivalence(&qa, &qa.clone()).unwrap().is_none());
    }

    #[test]
    fn fixpoint_agrees_with_bounded_oracle() {
        let a = alpha();
        let qa = example_4_4(&a);
        // brute-force: smallest selected (tree, node) pairs over tiny trees
        let brute = crate::bounded::non_emptiness_bounded(
            &|t| qa.query(t).unwrap_or_default(),
            a.len(),
            2,
            5,
        );
        let exact = non_emptiness(&qa).unwrap();
        assert_eq!(brute.is_some(), exact.is_some());
    }

    #[test]
    fn cached_non_emptiness_matches_and_hits_on_repeat() {
        let a = alpha();
        let qa = example_4_4(&a);
        let plain = non_emptiness(&qa).unwrap().expect("non-empty");
        let mut cache = SummaryCache::new();
        let mut obs = qa_obs::NoopObserver;
        let first = non_emptiness_cached(&qa, DEFAULT_MAX_ITEMS, &mut cache, &mut obs)
            .unwrap()
            .expect("non-empty");
        assert_eq!(plain.tree.render(&a), first.tree.render(&a));
        assert_eq!(plain.node, first.node);
        let misses_after_first = cache.misses();
        let second = non_emptiness_cached(&qa, DEFAULT_MAX_ITEMS, &mut cache, &mut obs)
            .unwrap()
            .expect("non-empty");
        assert_eq!(plain.node, second.node);
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "repeat call computes no new summaries"
        );
        assert!(cache.hits() > 0);
    }

    #[test]
    fn cached_containment_matches_uncached() {
        let a = alpha();
        let full = example_4_4(&a);
        let mut restricted = example_4_4(&a);
        let or = a.symbol("OR");
        for i in 0..restricted.machine().num_states() {
            restricted.set_selecting(StateId::from_index(i), or, false);
        }
        let mut cache = SummaryCache::new();
        let mut obs = qa_obs::NoopObserver;
        assert!(
            containment_cached(&restricted, &full, DEFAULT_MAX_ITEMS, &mut cache, &mut obs)
                .unwrap()
                .is_none()
        );
        // Different machine order = different family: the cache must reset,
        // not reuse the (restricted, full) summaries.
        let w = containment_cached(&full, &restricted, DEFAULT_MAX_ITEMS, &mut cache, &mut obs)
            .unwrap()
            .expect("violation");
        let plain = containment(&full, &restricted).unwrap().expect("violation");
        assert_eq!(w.tree.render(&a), plain.tree.render(&a));
        assert_eq!(w.node, plain.node);
    }

    #[test]
    fn budget_overflow_is_reported() {
        // An empty query can never exit early, so saturation must hit the
        // budget.
        let a = alpha();
        let machine = qa_core::ranked::twoway::example_4_2(&a);
        let qa = RankedQa::new(machine); // selects nothing
        assert!(matches!(
            non_emptiness_with_budget(&qa, 3),
            Err(Error::FuelExhausted { .. })
        ));
    }
}
