//! # qa-trees
//!
//! Ordered, labeled trees — the data model of *Query Automata* (Section 2.3):
//! ranked trees (bounded arity) for Section 4 and unranked trees for
//! Section 5.
//!
//! Trees are stored in flat arenas ([`Tree`]) with `u32` node ids; all
//! traversals are iterative (worklists, explicit stacks), so arbitrarily deep
//! documents cannot overflow the call stack.
//!
//! - [`tree`]: the arena, builders, structural queries;
//! - [`sexpr`]: s-expression parsing/printing for tests and examples;
//! - [`generate`]: deterministic and random tree generators for tests and
//!   the benchmark harness;
//! - [`fcns`]: the first-child/next-sibling encoding bridging unranked and
//!   binary ranked trees (used to complement unranked tree automata);
//! - [`traverse`]: shared iterative traversal helpers.

pub mod fcns;
pub mod generate;
pub mod sexpr;
pub mod traverse;
pub mod tree;

pub use tree::{NodeId, Tree};
