//! Federation: folding per-worker telemetry into one coherent surface.
//!
//! The mesh's central invariant is that **federation is shard-invariant**:
//! because [`Metrics::merge`] is commutative and associative, merging the
//! parsed `/metrics` scrapes of N workers yields the same registry — and
//! therefore the same rendered exposition, byte for byte — no matter how
//! the job grid was dealt out. [`federate_metrics`] is that fold;
//! [`federate_profile`] and [`federate_flight`] are the profile/flight
//! counterparts, which *keep* worker identity (a profile frame or flight
//! event is only useful if you know which process it came from) and so are
//! deterministic per shard count rather than across shard counts.
//!
//! [`federate_events`] extends the invariant to wide events: worker
//! `/events` JSONL tails merge by sorting on the global job index, so the
//! *deterministic* fields of the federated `events.jsonl` are byte-
//! identical across shard counts (the volatile placement/wall-clock tail
//! is exactly what an identity projection strips). [`federate_trace`]
//! renders the same inputs as one Chrome trace-event timeline: one
//! process per worker (named by `process_name`/`thread_name` metadata
//! events), one complete event per job, so a `--mesh 4` run loads in
//! Perfetto as a single coherent fleet view.

use qa_obs::json::{self, Value};
use qa_obs::Metrics;
use qa_pulse::parse_prometheus;

/// Merge worker `/metrics` scrapes into one registry.
///
/// Each scrape is parsed ([`parse_prometheus`]) and mapped back onto the
/// `<prefix>_*` counter/histogram families
/// ([`Scrape::to_metrics`](qa_pulse::Scrape::to_metrics)); families
/// outside the prefix — `qa_build_info`, `qa_heap_*`, per-worker info
/// gauges — stay out, which is what keeps the federated render
/// independent of worker count. Returns the merged registry or the first
/// scrape's parse error (tagged with its index).
pub fn federate_metrics<'a>(
    scrapes: impl IntoIterator<Item = &'a str>,
    prefix: &str,
) -> Result<Metrics, String> {
    let federated = Metrics::new();
    for (i, text) in scrapes.into_iter().enumerate() {
        let registry = parse_prometheus(text)
            .and_then(|s| s.to_metrics(prefix))
            .map_err(|e| format!("worker scrape {i}: {e}"))?;
        federated.merge(&registry);
    }
    Ok(federated)
}

/// Merge collapsed-stack profiles, attributing every frame to its worker.
///
/// Each worker's `profile.folded` lines (`stack;frames count`) are
/// prefixed with `<worker_id>;`, so the federated flamegraph shows one
/// subtree per worker and every sample stays attributable. Lines are
/// sorted for deterministic output.
pub fn federate_profile(workers: &[(String, String)]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (worker_id, folded) in workers {
        for line in folded.lines().filter(|l| !l.is_empty()) {
            lines.push(format!("{worker_id};{line}"));
        }
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Combine worker flight-recorder JSON dumps into one document:
/// `{"run_id":"…","workers":[…]}`, workers in the given order. Each
/// worker dump already carries its own `run_id`/`worker` correlation ids
/// (see `FlightRecorder::set_correlation` in `qa-flight`), so every
/// retained event in the federated document is attributable.
pub fn federate_flight(run_id: &str, worker_dumps: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\"run_id\":\"");
    for c in run_id.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out.push_str("\",\"workers\":[");
    for (i, dump) in worker_dumps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(dump);
    }
    out.push_str("]}");
    out
}

/// Merge worker `/events` JSONL tails into one `events.jsonl` document:
/// every line is re-ordered by its global `job` index, so the merged file
/// reads in job order no matter which worker ran what. Lines without a
/// numeric `job` field are dropped (they cannot be placed), and if two
/// workers somehow report the same job the first worker's line wins —
/// shards partition the grid, so a duplicate is already an anomaly.
pub fn federate_events(workers: &[(String, String)]) -> String {
    let mut lines: Vec<(u64, &str)> = Vec::new();
    for (_worker_id, jsonl) in workers {
        for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
            let Some(job) = json::parse(line)
                .ok()
                .and_then(|v| v.get("job").and_then(Value::as_u64))
            else {
                continue;
            };
            lines.push((job, line));
        }
    }
    lines.sort_by_key(|&(job, _)| job);
    lines.dedup_by_key(|&mut (job, _)| job);
    let mut out = String::new();
    for (_, line) in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Assemble worker `/events` JSONL tails into one Chrome trace-event
/// document — the fleet's single distributed timeline.
///
/// Each worker becomes one trace *process*: `pid` is its (1-based) index
/// in `workers`, named by a `process_name` metadata (`"ph":"M"`) event,
/// with its single job track named by a `thread_name` event — so Perfetto
/// labels tracks `w0`, `w1`, … instead of showing bare pids. Each job
/// event becomes one complete (`"ph":"X"`) span on its worker's track,
/// `ts`/`dur` in microseconds from the worker's `start_ns`/`wall_ns`,
/// with the job's trace/span ids, step count and outcome riding along in
/// `args`. Spans are sorted by job within each worker, so the output is
/// deterministic given the scrapes.
pub fn federate_trace(run_id: &str, workers: &[(String, String)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (index, (worker_id, jsonl)) in workers.iter().enumerate() {
        let pid = index as u64 + 1;
        events.push(json::object(|w| {
            w.field_str("name", "process_name");
            w.field_str("ph", "M");
            w.field_u64("pid", pid);
            w.field_raw("args", &json::object(|aw| aw.field_str("name", worker_id)));
        }));
        events.push(json::object(|w| {
            w.field_str("name", "thread_name");
            w.field_str("ph", "M");
            w.field_u64("pid", pid);
            w.field_u64("tid", 1);
            w.field_raw("args", &json::object(|aw| aw.field_str("name", "jobs")));
        }));
        let mut spans: Vec<(u64, String)> = Vec::new();
        for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(v) = json::parse(line) else { continue };
            let Some(job) = v.get("job").and_then(Value::as_u64) else {
                continue;
            };
            let query = v.get("query").and_then(Value::as_str).unwrap_or("job");
            let start_ns = v.get("start_ns").and_then(Value::as_u64).unwrap_or(0);
            let wall_ns = v.get("wall_ns").and_then(Value::as_u64).unwrap_or(0);
            let span = json::object(|w| {
                w.field_str("name", &format!("{query} #{job}"));
                w.field_str("cat", "job");
                w.field_str("ph", "X");
                w.field_u64("ts", start_ns / 1_000);
                w.field_u64("dur", (wall_ns / 1_000).max(1));
                w.field_u64("pid", pid);
                w.field_u64("tid", 1);
                w.field_raw(
                    "args",
                    &json::object(|aw| {
                        aw.field_u64("job", job);
                        for key in ["trace", "span", "outcome"] {
                            if let Some(s) = v.get(key).and_then(Value::as_str) {
                                aw.field_str(key, s);
                            }
                        }
                        for key in ["steps", "doc_nodes"] {
                            if let Some(n) = v.get(key).and_then(Value::as_u64) {
                                aw.field_u64(key, n);
                            }
                        }
                    }),
                );
            });
            spans.push((job, span));
        }
        spans.sort_by_key(|&(job, _)| job);
        events.extend(spans.into_iter().map(|(_, s)| s));
    }
    json::object(|w| {
        w.field_raw("traceEvents", &json::array(events));
        w.field_str("displayTimeUnit", "ms");
        w.field_raw(
            "otherData",
            &json::object(|aw| aw.field_str("run_id", run_id)),
        );
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::{Counter, Observer, Series};
    use qa_probe::export::prometheus_text;

    fn worker(steps: u64, trace_lens: &[u64]) -> Metrics {
        let m = Metrics::new();
        let mut o = m.observer();
        o.count(Counter::Steps, steps);
        for &v in trace_lens {
            o.record(Series::TraceLength, v);
        }
        m
    }

    #[test]
    fn metrics_federation_is_shard_invariant() {
        // The same three "jobs" dealt over 1 vs 3 workers.
        let all = worker(600, &[1, 20, 300]);
        let shards = [worker(100, &[1]), worker(200, &[20]), worker(300, &[300])];

        let one = federate_metrics([prometheus_text(&all, "qa_fleet").as_str()], "qa_fleet")
            .expect("single scrape");
        let texts: Vec<String> = shards
            .iter()
            .map(|m| prometheus_text(m, "qa_fleet"))
            .collect();
        let three = federate_metrics(texts.iter().map(|s| s.as_str()), "qa_fleet").expect("merge");
        assert_eq!(
            prometheus_text(&one, "qa_fleet"),
            prometheus_text(&three, "qa_fleet"),
            "federated exposition must not depend on sharding"
        );
    }

    #[test]
    fn federation_surfaces_parse_errors_with_the_worker_index() {
        let good = prometheus_text(&worker(1, &[]), "qa_fleet");
        let err = federate_metrics([good.as_str(), "garbage without value"], "qa_fleet")
            .expect_err("second scrape is garbage");
        assert!(err.starts_with("worker scrape 1:"), "{err}");
    }

    #[test]
    fn profile_federation_prefixes_frames_with_the_worker() {
        let merged = federate_profile(&[
            ("w1".to_string(), "run;scan 30\nrun 5\n".to_string()),
            ("w0".to_string(), "run;scan 10\n".to_string()),
        ]);
        assert_eq!(merged, "w0;run;scan 10\nw1;run 5\nw1;run;scan 30\n");
    }

    fn job_line(job: u64, query: &str, worker: &str, start_ns: u64, wall_ns: u64) -> String {
        format!(
            "{{\"v\":1,\"run\":\"r\",\"trace\":\"{job:016x}\",\"span\":\"{job:016x}\",\
             \"job\":{job},\"query\":\"{query}\",\"steps\":{},\"outcome\":\"ok\",\
             \"worker\":\"{worker}\",\"start_ns\":{start_ns},\"wall_ns\":{wall_ns}}}",
            job * 10
        )
    }

    #[test]
    fn event_federation_sorts_by_job_and_drops_unplaceable_lines() {
        let w0 = format!(
            "{}\n{}\n",
            job_line(2, "a", "w0", 0, 9),
            job_line(0, "a", "w0", 5, 9)
        );
        let w1 = format!(
            "{}\nnot json\n{{\"no\":\"job\"}}\n",
            job_line(1, "b", "w1", 3, 9)
        );
        let merged = federate_events(&[("w0".to_string(), w0), ("w1".to_string(), w1)]);
        let jobs: Vec<u64> = merged
            .lines()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("job")
                    .and_then(Value::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(jobs, vec![0, 1, 2], "{merged}");
        // Duplicate jobs collapse to the first worker's line.
        let dup = federate_events(&[
            (
                "w0".to_string(),
                format!("{}\n", job_line(4, "first", "w0", 0, 1)),
            ),
            (
                "w1".to_string(),
                format!("{}\n", job_line(4, "second", "w1", 0, 1)),
            ),
        ]);
        assert_eq!(dup.lines().count(), 1);
        assert!(dup.contains("\"first\""), "{dup}");
    }

    #[test]
    fn trace_federation_names_processes_and_covers_every_job() {
        let doc = federate_trace(
            "fleet-s7",
            &[
                (
                    "w0".to_string(),
                    format!("{}\n", job_line(0, "q", "w0", 2_000, 3_000)),
                ),
                (
                    "w1".to_string(),
                    format!("{}\n", job_line(1, "q", "w1", 0, 500)),
                ),
            ],
        );
        let v = json::parse(&doc).expect("valid Chrome trace JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        // 2 metadata events + 1 span per worker.
        assert_eq!(events.len(), 6, "{doc}");
        let meta: Vec<(&str, &str)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .map(|e| {
                (
                    e.get("name").and_then(Value::as_str).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert!(meta.contains(&("process_name", "w0")), "{meta:?}");
        assert!(meta.contains(&("process_name", "w1")), "{meta:?}");
        assert!(meta.contains(&("thread_name", "jobs")), "{meta:?}");
        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("ts").and_then(Value::as_u64), Some(2));
        assert_eq!(spans[0].get("dur").and_then(Value::as_u64), Some(3));
        assert_eq!(spans[0].get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(spans[1].get("pid").and_then(Value::as_u64), Some(2));
        // Sub-microsecond spans still render (dur is clamped to >= 1 µs).
        assert_eq!(spans[1].get("dur").and_then(Value::as_u64), Some(1));
        let args = spans[0].get("args").unwrap();
        assert_eq!(args.get("job").and_then(Value::as_u64), Some(0));
        assert!(args.get("trace").and_then(Value::as_str).is_some());
        assert_eq!(args.get("outcome").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            v.get("otherData")
                .and_then(|o| o.get("run_id"))
                .and_then(Value::as_str),
            Some("fleet-s7")
        );
    }

    #[test]
    fn flight_federation_wraps_worker_dumps_under_the_run_id() {
        let doc = federate_flight(
            "mesh-s7",
            &[
                "{\"worker\":\"w0\"}".to_string(),
                "{\"worker\":\"w1\"}".to_string(),
            ],
        );
        assert_eq!(
            doc,
            "{\"run_id\":\"mesh-s7\",\"workers\":[{\"worker\":\"w0\"},{\"worker\":\"w1\"}]}"
        );
        let opens = doc.matches(['{', '[']).count();
        assert_eq!(opens, doc.matches(['}', ']']).count());
    }
}
