//! Query automata on strings (Definition 3.2).

use qa_base::{Result, Symbol};
use qa_obs::{Counter, NoopObserver, Observer};
use qa_strings::StateId;

use crate::behavior::BehaviorAnalysis;
use crate::cache::CrossingCache;
use crate::tape::Tape;
use crate::twodfa::TwoDfa;

/// A query automaton on strings: a 2DFA plus a selection function
/// `λ : S × Σ → {⊥, 1}`.
///
/// On input `w`, position `i` is *selected* iff the run accepts and the
/// machine visits `i` at least once in a state `s` with `λ(s, wᵢ) = 1`
/// (Definition 3.2: it need not select on every visit). A rejecting run
/// selects nothing.
///
/// Two evaluation strategies are provided and property-tested against each
/// other:
/// - [`StringQa::query`] replays the literal two-way run;
/// - [`StringQa::query_via_behavior`] computes the `Assumed` sets by the
///   Theorem 3.9 recurrences without replaying the run.
#[derive(Clone, Debug)]
pub struct StringQa {
    machine: TwoDfa,
    /// `select[state][symbol]`.
    select: Vec<Vec<bool>>,
}

impl StringQa {
    /// Wrap `machine` with an everything-`⊥` selection function; use
    /// [`StringQa::set_selecting`] to mark selecting pairs.
    pub fn new(machine: TwoDfa) -> Self {
        let select = vec![vec![false; machine.alphabet_len()]; machine.num_states()];
        StringQa { machine, select }
    }

    /// Mark `λ(state, sym) = 1`.
    pub fn set_selecting(&mut self, state: StateId, sym: Symbol, selecting: bool) {
        self.select[state.index()][sym.index()] = selecting;
    }

    /// Whether `λ(state, sym) = 1`.
    pub fn is_selecting(&self, state: StateId, sym: Symbol) -> bool {
        self.select[state.index()][sym.index()]
    }

    /// The underlying 2DFA.
    pub fn machine(&self) -> &TwoDfa {
        &self.machine
    }

    /// The selected positions of `word` (0-based indices into `word`),
    /// computed by replaying the run. Empty when the run rejects.
    pub fn query(&self, word: &[Symbol]) -> Result<Vec<usize>> {
        self.query_with(word, &mut NoopObserver)
    }

    /// [`StringQa::query`] with an [`Observer`]: the underlying run and
    /// every selection-function probe are reported to `obs`. With
    /// [`NoopObserver`] this monomorphizes to exactly `query`.
    pub fn query_with<O: Observer>(&self, word: &[Symbol], obs: &mut O) -> Result<Vec<usize>> {
        obs.phase_start("run");
        let rec = self.machine.run_with(word, obs);
        obs.phase_end("run");
        let rec = rec?;
        if !rec.accepted {
            return Ok(Vec::new());
        }
        obs.phase_start("selection scan");
        let mut out = Vec::new();
        for (pos, states) in rec.assumed.iter().enumerate() {
            let Some(sym) = Tape::at(word, pos).symbol() else {
                continue;
            };
            obs.count(Counter::SelectionChecks, states.len() as u64);
            if let Some(&s) = states.iter().find(|&&s| self.is_selecting(s, sym)) {
                obs.selected(pos as u32, s.index() as u32, sym.index() as u32);
                out.push(pos - 1);
            }
        }
        obs.phase_end("selection scan");
        Ok(out)
    }

    /// The selected positions, computed from behavior-function summaries
    /// (no run replay). Loops are reported as rejection (empty result) —
    /// matching the paper's convention that non-accepting runs select
    /// nothing — rather than as an error.
    pub fn query_via_behavior(&self, word: &[Symbol]) -> Vec<usize> {
        self.query_via_behavior_with(word, &mut NoopObserver)
    }

    /// [`StringQa::query_via_behavior`] with an [`Observer`].
    pub fn query_via_behavior_with<O: Observer>(&self, word: &[Symbol], obs: &mut O) -> Vec<usize> {
        obs.phase_start("behavior analysis");
        let ba = BehaviorAnalysis::analyze_with(&self.machine, word, obs);
        obs.phase_end("behavior analysis");
        self.select_from_analysis(&ba, word, obs)
    }

    /// [`StringQa::query_via_behavior`] with crossing-behavior columns
    /// hash-consed in `cache` (see [`CrossingCache`]): across a batch of
    /// words the per-position behavior computation degenerates to cache
    /// lookups. Results are identical to [`StringQa::query_via_behavior`];
    /// cache hits and misses are reported to `obs`.
    pub fn query_cached<O: Observer>(
        &self,
        word: &[Symbol],
        cache: &mut CrossingCache,
        obs: &mut O,
    ) -> Vec<usize> {
        obs.phase_start("behavior analysis");
        let ba = BehaviorAnalysis::analyze_cached(&self.machine, word, cache, obs);
        obs.phase_end("behavior analysis");
        self.select_from_analysis(&ba, word, obs)
    }

    /// Shared selection scan over an already-computed behavior analysis.
    fn select_from_analysis<O: Observer>(
        &self,
        ba: &BehaviorAnalysis,
        word: &[Symbol],
        obs: &mut O,
    ) -> Vec<usize> {
        if !ba.accepted(&self.machine) {
            return Vec::new();
        }
        obs.phase_start("selection scan");
        let mut out = Vec::new();
        for pos in 1..=word.len() {
            let sym = word[pos - 1];
            obs.count(Counter::SelectionChecks, ba.assumed[pos].len() as u64);
            if let Some(&s) = ba.assumed[pos].iter().find(|&&s| self.is_selecting(s, sym)) {
                obs.selected(pos as u32, s.index() as u32, sym.index() as u32);
                out.push(pos - 1);
            }
        }
        obs.phase_end("selection scan");
        out
    }

    /// Whether the underlying machine accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> Result<bool> {
        self.machine.accepts(word)
    }

    /// The loop outcome variant of [`StringQa::query`]: loops yield `Ok([])`.
    pub fn query_lenient(&self, word: &[Symbol]) -> Vec<usize> {
        self.query(word).unwrap_or_default()
    }
}

/// Build the Example 3.4 query automaton: select every `1` at an odd
/// position counting from the right end.
///
/// The alphabet must contain symbols named `0` and `1`.
pub fn example_3_4_qa(alphabet: &qa_base::Alphabet) -> StringQa {
    use crate::twodfa::{Dir, TwoDfaBuilder};
    let one = alphabet.symbol("1");
    let mut b = TwoDfaBuilder::new(alphabet.len());
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.set_initial(s0);
    b.set_final(s1, true);
    b.set_final(s2, true);
    b.set_action(s0, Tape::LeftMarker, crate::twodfa::Dir::Right, s0);
    b.set_action_all_symbols(s0, Dir::Right, s0);
    b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
    b.set_action_all_symbols(s1, Dir::Left, s2);
    b.set_action_all_symbols(s2, Dir::Left, s1);
    let mut qa = StringQa::new(b.build().expect("valid machine"));
    qa.set_selecting(s1, one, true);
    qa
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["0", "1"])
    }

    #[test]
    fn example_3_4_selects_odd_ones_from_right() {
        let a = alpha();
        let qa = example_3_4_qa(&a);
        // w = 0110: counting from the right (1-based): positions 4,3,2,1 are
        // odd,even,odd,even → odd positions are indices 3 and 1; `1`s are at
        // indices 1 and 2; selected: index 1 only.
        let w = a.word("0110");
        assert_eq!(qa.query(&w).unwrap(), vec![1]);
        assert_eq!(qa.query_via_behavior(&w), vec![1]);
    }

    #[test]
    fn selection_requires_matching_symbol() {
        let a = alpha();
        let qa = example_3_4_qa(&a);
        let w = a.word("0000");
        assert_eq!(qa.query(&w).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn both_strategies_agree_exhaustively() {
        let a = alpha();
        let qa = example_3_4_qa(&a);
        for len in 0..=6usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len)
                    .map(|i| Symbol::from_index((mask >> i) & 1))
                    .collect();
                assert_eq!(
                    qa.query(&w).unwrap(),
                    qa.query_via_behavior(&w),
                    "word {:?}",
                    a.render(&w)
                );
            }
        }
    }

    #[test]
    fn rejecting_run_selects_nothing() {
        let a = alpha();
        let mut qa = example_3_4_qa(&a);
        // make all states non-final: machine still halts, never accepts.
        let m = qa.machine.clone();
        let mut b = crate::twodfa::TwoDfaBuilder::new(2);
        for _ in 0..m.num_states() {
            b.add_state();
        }
        for s in 0..m.num_states() {
            let sid = StateId::from_index(s);
            for cell in [
                Tape::LeftMarker,
                Tape::RightMarker,
                Tape::Sym(Symbol::from_index(0)),
                Tape::Sym(Symbol::from_index(1)),
            ] {
                if let Some((d, t)) = m.action(sid, cell) {
                    b.set_action(sid, cell, d, t);
                }
            }
        }
        b.set_initial(m.initial());
        qa.machine = b.build().unwrap();
        let w = a.word("0110");
        assert_eq!(qa.query(&w).unwrap(), Vec::<usize>::new());
        assert_eq!(qa.query_via_behavior(&w), Vec::<usize>::new());
    }

    #[test]
    fn one_way_limitation_remark_3_3() {
        // Remark 3.3: "select first and last symbol if the string contains σ"
        // needs two-way movement. Build it as a two-way QA and check it.
        use crate::twodfa::{Dir, TwoDfaBuilder};
        let a = alpha();
        let one = a.symbol("1");
        let zero = a.symbol("0");
        let mut b = TwoDfaBuilder::new(2);
        let scan = b.add_state(); // scan right looking for 1
        let found = b.add_state(); // walk to ⊲
        let back = b.add_state(); // walk back to ⊳, selecting last+first
        let no = b.add_state(); // reached ⊲ without a 1: reject
        b.set_initial(scan);
        b.set_final(back, true);
        b.set_action(scan, Tape::LeftMarker, Dir::Right, scan);
        b.set_action(scan, Tape::Sym(zero), Dir::Right, scan);
        b.set_action(scan, Tape::Sym(one), Dir::Right, found);
        b.set_action(scan, Tape::RightMarker, Dir::Left, no);
        b.set_action_all_symbols(found, Dir::Right, found);
        b.set_action(found, Tape::RightMarker, Dir::Left, back);
        b.set_action_all_symbols(back, Dir::Left, back);
        // `no` halts immediately (non-final); `back` halts at ⊳ (final).
        let mut qa = StringQa::new(b.build().unwrap());
        // `back` visits every position; selection must fire only at ends —
        // that cannot be expressed per-state alone, so use dedicated states?
        // Simpler: select in `back` at any symbol, then intersect by position
        // is not available: instead verify the acceptance component and the
        // visit structure.
        qa.set_selecting(back, one, true);
        qa.set_selecting(back, zero, true);
        let w = a.word("010");
        // contains a 1 → accepted, every position visited in `back`.
        assert_eq!(qa.query(&w).unwrap(), vec![0, 1, 2]);
        let w = a.word("000");
        assert_eq!(qa.query(&w).unwrap(), Vec::<usize>::new());
    }
}
