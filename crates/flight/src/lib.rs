//! # qa-flight
//!
//! Always-on telemetry for batch workloads: the production layer on top of
//! [`qa_obs`]'s observer stream.
//!
//! [`qa_obs`] gives every engine a zero-cost event stream; this crate makes
//! that stream safe to leave on for fleets of runs:
//!
//! - [`FlightRecorder`] — a fixed-capacity ring retaining the *last* N
//!   events with drop accounting; its [`dump`](FlightRecorder::dump)
//!   renders a post-mortem (exact counters, most-repeated configuration,
//!   retained tail) on panic, watchdog abort, or demand. Memory is bounded
//!   no matter how long the run.
//! - [`Watchdog`] — wraps any observer and answers the engines'
//!   [`checkpoint`](qa_obs::Observer::checkpoint) polls, enforcing step /
//!   head-reversal / wall-clock [`Budget`]s. A tripped budget surfaces as
//!   `Error::RunAborted` from the run — a graceful unwind that leaves the
//!   wrapped recorder intact for the dump.
//! - [`OneInN`] / [`Reservoir`] / [`Sampled`] — deterministic sampling
//!   (seeded from [`qa_base::rng`], never ambient entropy): full fidelity
//!   on a reproducible subset of runs, counters-only elsewhere.
//! - [`JobEvent`] / [`SharedEvents`] — one wide, structured JSONL event
//!   per job (`events.jsonl`), deterministic up to its volatile tail, plus
//!   the bounded ring the pulse `/events` endpoint serves from.
//! - `qa-fleet` — the batch runner binary: M queries × K generated
//!   documents under watchdogs, merged metrics, latency/step percentiles,
//!   Prometheus and Perfetto exports, post-mortem dumps on failure.
//!
//! The crate adds nothing to unobserved runs: engines still monomorphize
//! [`qa_obs::NoopObserver`] hooks (checkpoints included) to nothing.

pub mod event;
pub mod recorder;
pub mod sampler;
pub mod watchdog;

pub use event::{identity_projection, parse_events, JobEvent, SharedEvents, VOLATILE_FIELDS};
pub use recorder::{with_postmortem, FlightEvent, FlightRecorder, SharedFlight, DEFAULT_CAPACITY};
pub use sampler::{OneInN, Reservoir, Sampled};
pub use watchdog::{Budget, Watchdog, DEFAULT_WALL_POLL};
