//! Boolean circuits as query automata — the paper's running examples:
//! Example 4.2/4.4 (binary circuits, ranked) and Example 5.9 (arbitrary
//! fan-in, unranked).
//!
//! ```sh
//! cargo run --example boolean_circuits
//! ```

use query_automata::prelude::*;

fn main() -> Result<()> {
    let sigma = Alphabet::from_names(["AND", "OR", "0", "1"]);

    // ── Example 4.2: a two-way ranked automaton evaluating the circuit ──
    let machine = example_4_2(&sigma);
    let mut names = sigma.clone();
    let circuit = from_sexpr("(AND (OR 0 1) (AND 1 1))", &mut names)?;
    println!(
        "circuit {} evaluates to {}",
        circuit.render(&names),
        machine.accepts(&circuit)? as u8
    );

    // ── Example 4.4: select every gate and input that evaluates to 1 ────
    let qa = example_4_4(&sigma);
    let selected = qa.query(&circuit)?;
    println!("nodes evaluating to 1:");
    for v in selected {
        println!(
            "  depth {} gate {}",
            circuit.depth(v),
            names.name(circuit.label(v))
        );
    }

    // ── Example 5.9: arbitrary fan-in (unranked) ─────────────────────────
    let uqa = example_5_9(&sigma);
    let wide = from_sexpr("(OR (AND 1 1 1 0) (OR 0 0) (AND 1 1))", &mut names)?;
    println!("\nvariadic circuit {}", wide.render(&names));
    let selected = uqa.query(&wide)?;
    println!("nodes evaluating to 1 (selected by the QAu):");
    for v in selected {
        println!(
            "  depth {} node {}",
            wide.depth(v),
            names.name(wide.label(v))
        );
    }

    // ── Section 6 on these automata ──────────────────────────────────────
    let witness = query_automata::decision::ranked_decisions::non_emptiness(&qa)?
        .expect("example 4.4 selects something");
    println!(
        "\nnon-emptiness witness for Example 4.4: {} (node {:?})",
        witness.tree.render(&names),
        witness.node
    );
    Ok(())
}
