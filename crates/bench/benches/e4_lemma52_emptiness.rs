//! E4 (Lemma 5.2): NBTAu non-emptiness is PTIME — measured polynomial
//! scaling in the number of states of a chain-shaped automaton family.

use qa_bench::Harness;

fn main() {
    let mut h = Harness::new("e4_lemma52_emptiness");
    for k in [4usize, 16, 64] {
        let n = qa_bench::chain_nbtau(k);
        h.bench(&format!("is_nonempty/{k}"), || {
            assert!(qa_core::unranked::emptiness::is_nonempty(&n))
        });
        if k <= 16 {
            h.bench(&format!("witness/{k}"), || {
                qa_core::unranked::emptiness::witness(&n)
                    .unwrap()
                    .num_nodes()
            });
        }
    }
    // and on a real automaton: the Figure 2 DTD
    let (_, dtd) = qa_xml::figures::bibliography().unwrap();
    let auto = qa_xml::validate::to_automaton(&dtd).unwrap();
    h.bench("dtd_nonempty", || {
        assert!(qa_core::unranked::emptiness::is_nonempty(&auto))
    });
}
