//! A std-only HTTP/1.1 *client*, the scraping counterpart of
//! [`PulseServer`](crate::PulseServer).
//!
//! The mesh coordinator polls and scrapes many worker pulse servers over
//! loopback; this client is exactly big enough for that job — blocking
//! `GET` with explicit connect/read deadlines, `Connection: close`, body
//! read to EOF — and keeps the workspace's zero-dependency discipline
//! (`std::net` only, no TLS, no keep-alive, no chunked encoding: the pulse
//! server sends none of that).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use qa_obs::{Counter, Metrics};

/// Connect/read deadlines for one request. Scrapes run on the coordinator's
/// poll loop, so a hung worker must cost bounded time, not a stuck fleet.
#[derive(Clone, Copy, Debug)]
pub struct HttpTimeouts {
    /// TCP connect deadline.
    pub connect: Duration,
    /// Socket read/write deadline (per syscall, not per body).
    pub io: Duration,
}

impl Default for HttpTimeouts {
    fn default() -> Self {
        HttpTimeouts {
            connect: Duration::from_secs(2),
            io: Duration::from_secs(5),
        }
    }
}

/// Status line and body of one response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Numeric status code (200, 404, 503, …).
    pub status: u16,
    /// Response body (headers stripped).
    pub body: String,
    /// Seconds from a `Retry-After` header, when the server sent one
    /// (serving daemons attach it to `429` sheds).
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Blocking `GET <path>` against `addr` (e.g. `"127.0.0.1:4471"`), with
/// the given timeouts. Returns the parsed status and body; any socket or
/// parse problem is an `io::Error`, so callers treat "worker unreachable"
/// and "worker sent garbage" the same way: one failed poll.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeouts: HttpTimeouts,
) -> std::io::Result<HttpResponse> {
    http_request(addr, "GET", path, "", "", timeouts)
}

/// Blocking request with an arbitrary method and body — the serving
/// counterpart of [`http_get`], used to drive a daemon's `PUT /doc` and
/// `POST /query` endpoints. An empty `body` sends no `Content-Type` /
/// `Content-Length` headers, making `http_request(addr, "GET", path, "",
/// "", t)` exactly [`http_get`].
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    content_type: &str,
    body: &str,
    timeouts: HttpTimeouts,
) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
    stream.set_read_timeout(Some(timeouts.io))?;
    stream.set_write_timeout(Some(timeouts.io))?;
    if body.is_empty() {
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )?;
    } else {
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n\
             Content-Type: {content_type}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )?;
    }
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8(response).map_err(|_| bad("response is not UTF-8"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("response has no numeric status"))?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    });
    Ok(HttpResponse {
        status,
        body: body.to_string(),
        retry_after,
    })
}

/// Bounded retry with deterministic exponential backoff, for *scrapes*.
///
/// A scrape missing one sample degrades a time series, so it is worth a
/// couple of bounded retries; a liveness poll must stay a single cheap
/// probe (a dead worker should look dead immediately), so callers keep
/// using plain [`http_get`] for `/healthz`. The backoff schedule is fixed
/// — `base`, `2*base`, `4*base`, … with no jitter — so a given failure
/// pattern always costs the same wall time.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, first try included; `1` disables retries.
    pub attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(50),
        }
    }
}

/// [`http_get`] under a [`RetryPolicy`]: retry transport-level failures
/// (connect refused, timeout, garbled response) up to `policy.attempts`
/// total tries. An HTTP error status is a *successful* exchange — the
/// server answered — and is returned immediately, never retried. Each
/// retry (not the first attempt) is counted as
/// `qa_scrape_retries_total` in `metrics` when one is attached.
pub fn http_get_retry(
    addr: impl ToSocketAddrs + Copy,
    path: &str,
    timeouts: HttpTimeouts,
    policy: RetryPolicy,
    metrics: Option<&Metrics>,
) -> std::io::Result<HttpResponse> {
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.base;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            if let Some(m) = metrics {
                m.count(Counter::ScrapeRetries, 1);
            }
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        match http_get(addr, path, timeouts) {
            Ok(resp) => return Ok(resp),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PulseServer, PulseState};
    use qa_obs::Metrics;
    use std::sync::Arc;

    #[test]
    fn client_scrapes_a_pulse_server() {
        let state = PulseState::new(Arc::new(Metrics::new()), "qa_test");
        state.set_ready();
        let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.local_addr();
        let t = HttpTimeouts::default();

        let health = http_get(addr, "/healthz", t).expect("healthz");
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let metrics = http_get(addr, "/metrics", t).expect("metrics");
        assert!(metrics.is_ok());
        assert!(
            metrics.body.contains("qa_test_steps_total 0"),
            "{}",
            metrics.body
        );

        let missing = http_get(addr, "/nope", t).expect("404 still parses");
        assert_eq!(missing.status, 404);
        assert!(!missing.is_ok());

        server.shutdown();
    }

    #[test]
    fn retry_counts_each_extra_attempt_and_returns_the_last_error() {
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let m = Metrics::new();
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
        };
        let t = HttpTimeouts {
            connect: Duration::from_millis(200),
            io: Duration::from_millis(200),
        };
        let err = http_get_retry(dead, "/metrics", t, policy, Some(&m));
        assert!(err.is_err(), "dead port must fail after retries");
        assert_eq!(m.get(qa_obs::Counter::ScrapeRetries), 2, "2 retries");
    }

    #[test]
    fn retry_does_not_retry_http_error_statuses() {
        let state = PulseState::new(Arc::new(Metrics::new()), "qa_test");
        let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let m = Metrics::new();
        let resp = http_get_retry(
            server.local_addr(),
            "/nope",
            HttpTimeouts::default(),
            RetryPolicy::default(),
            Some(&m),
        )
        .expect("404 is a completed exchange");
        assert_eq!(resp.status, 404);
        assert_eq!(m.get(qa_obs::Counter::ScrapeRetries), 0, "no retries");
        server.shutdown();
    }

    #[test]
    fn connect_timeout_fails_fast_on_a_dead_port() {
        // Bind-then-drop guarantees the port is closed at connect time.
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let err = http_get(
            dead,
            "/healthz",
            HttpTimeouts {
                connect: Duration::from_millis(500),
                io: Duration::from_millis(500),
            },
        );
        assert!(err.is_err(), "closed port must not answer");
    }
}
