//! Every numbered example in the paper, exercised through the public API.
//!
//! These double as executable documentation: each test's comment cites the
//! example it reproduces and the behavior the paper describes for it.

use query_automata::mso::{compile_string, naive, unranked};
use query_automata::prelude::*;

/// Example 2.1/2.2: the MSO sentence defining chains of even length
/// (min/max expressed via root/leaf).
#[test]
fn example_2_2_even_chains() {
    let mut a = Alphabet::from_names(["c"]);
    let phi = parse_mso(
        "ex2 X. ( (all x. (root(x) -> x in X)) \
         & (all x. all y. ((x in X & edge(x, y)) -> !(y in X))) \
         & (all x. all y. ((!(x in X) & edge(x, y)) -> y in X)) \
         & (all x. (leaf(x) -> !(x in X))) )",
        &mut a,
    )
    .unwrap();
    let dfa = compile_string::compile_sentence(&phi, 1).unwrap();
    for len in 1..=9usize {
        let w = vec![a.symbol("c"); len];
        assert_eq!(dfa.accepts(&w), len % 2 == 0, "length {len}");
        assert_eq!(
            naive::check(naive::Structure::Word(&w), &phi).unwrap(),
            len % 2 == 0
        );
    }
}

/// Example 3.4: the displayed run on ⊳0110⊲ — 11 configurations, halting
/// at the left endmarker in s₁, selecting exactly the paper's position 3
/// (our 0-based input index 1).
#[test]
fn example_3_4_run_and_selection() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let w = sigma.word("0110");
    let rec = qa.machine().run(&w).unwrap();
    assert!(rec.accepted);
    assert_eq!(rec.trace.len(), 11, "the paper's run has 11 configurations");
    assert_eq!(rec.halt.1, 0, "halts at ⊳");
    assert_eq!(qa.query(&w).unwrap(), vec![1]);
}

/// Example 3.6: the generalized query automaton rewriting ⊳0110⊲ to 0*10.
#[test]
fn example_3_6_gsqa_output() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let g = query_automata::twoway::gsqa::example_3_6_gsqa(&sigma);
    // output alphabet: 0 ↦ 0, 1 ↦ 1, 2 ↦ *
    assert_eq!(g.run(&sigma.word("0110")).unwrap(), vec![0, 2, 1, 0]);
}

/// Example 4.2: the two-way circuit evaluator accepts exactly the circuits
/// evaluating to 1 (F = {v₁}).
#[test]
fn example_4_2_circuit_acceptance() {
    let sigma = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let m = example_4_2(&sigma);
    let mut names = sigma.clone();
    for (src, val) in [
        ("(AND (OR 0 1) (OR 1 0))", true),
        ("(OR (AND 1 0) (AND 0 1))", false),
        ("1", true),
    ] {
        let t = from_sexpr(src, &mut names).unwrap();
        assert_eq!(m.accepts(&t).unwrap(), val, "{src}");
    }
}

/// Example 4.4: with F = Q and the evaluating λ, every node computing 1 is
/// selected — including on circuits whose overall value is 0.
#[test]
fn example_4_4_selects_under_global_zero() {
    let sigma = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = example_4_4(&sigma);
    let mut names = sigma.clone();
    let t = from_sexpr("(AND (OR 1 0) 0)", &mut names).unwrap();
    // overall value 0, but the OR gate and its 1-leaf are selected
    let selected = qa.query(&t).unwrap();
    assert_eq!(selected.len(), 2);
    assert!(!selected.contains(&t.root()));
}

/// Example 5.9: the stay-free unranked query automaton on variadic
/// circuits; λ as in the paper selects exactly the 1-evaluating nodes.
#[test]
fn example_5_9_variadic_circuits() {
    let sigma = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = example_5_9(&sigma);
    assert!(!qa.is_strong(), "no stay transitions");
    let mut names = sigma.clone();
    let t = from_sexpr("(OR (AND 1 1 1) (OR 0 0 0 0) 0)", &mut names).unwrap();
    let selected = qa.query(&t).unwrap();
    // root (OR with a true disjunct), the AND gate, and its three 1-leaves
    assert_eq!(selected.len(), 5);
    assert!(selected.contains(&t.root()));
}

/// Example 5.14 / Proposition 5.10: the stay transition resolves the
/// "first 1-labeled leaf per sibling group" query in one pass; it agrees
/// with both the naive MSO semantics and the compiled automaton.
#[test]
fn example_5_14_three_way_agreement() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let sqa = example_5_14(&sigma);
    let mut names = sigma.clone();
    let mut a2 = sigma.clone();
    let phi = parse_mso(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a2,
    )
    .unwrap();
    let compiled = unranked::compile_unary(&phi, "v", 2).unwrap();
    for src in [
        "1",
        "(0 1 0 1)",
        "(1 (0 1 1) (1 0) 1)",
        "(0 (0 (0 1 1) 1) 1)",
    ] {
        let t = from_sexpr(src, &mut names).unwrap();
        let mut via_sqa = sqa.query(&t).unwrap();
        let mut via_naive: Vec<NodeId> = naive::query(naive::Structure::Tree(&t), &phi, "v")
            .unwrap()
            .into_iter()
            .map(NodeId::from_index)
            .collect();
        let mut via_auto = query_automata::mso::query_eval::eval_unary_unranked(&compiled, &t, 2);
        via_sqa.sort_unstable();
        via_naive.sort_unstable();
        via_auto.sort_unstable();
        assert_eq!(via_sqa, via_naive, "{src}");
        assert_eq!(via_sqa, via_auto, "{src}");
    }
}

/// Remark 3.3: "select first and last position if the word contains σ" —
/// not computable one-way, synthesized here as a genuine two-way machine
/// from its MSO definition.
#[test]
fn remark_3_3_needs_two_way() {
    let sigma = Alphabet::from_names(["a", "b"]);
    let mut a = sigma.clone();
    let phi = parse_mso("(root(v) | leaf(v)) & (ex x. label(x, b))", &mut a).unwrap();
    let d = compile_string::compile_unary(&phi, "v", 2).unwrap();
    let qa = query_automata::mso::to_qa::string_query_to_qa(&d, 2).unwrap();
    assert_eq!(qa.query(&sigma.word("aba")).unwrap(), vec![0, 2]);
    assert_eq!(qa.query(&sigma.word("aaa")).unwrap(), Vec::<usize>::new());
    assert_eq!(qa.query(&sigma.word("b")).unwrap(), vec![0]);
}

/// Remark 4.5: "select the root if some leaf is labeled σ, and all leaves
/// if the root is labeled σ" — the query that separates two-way from
/// one-way tree query automata; via the ranked MSO pipeline.
#[test]
fn remark_4_5_two_sided_query() {
    let mut a = Alphabet::from_names(["s", "t"]);
    let phi = parse_mso(
        "(root(v) & ex l. (leaf(l) & label(l, s))) \
         | (leaf(v) & ex r. (root(r) & label(r, s)))",
        &mut a,
    )
    .unwrap();
    let d = query_automata::mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
    let mut names = a.clone();
    // root labeled s: all leaves selected (and the root too: it has an
    // s-leaf below iff some leaf is s).
    let t = from_sexpr("(s (t s t) t)", &mut names).unwrap();
    let selected = query_automata::mso::query_eval::eval_unary_ranked(&d, &t, 2);
    let leaves: Vec<NodeId> = t.leaves().collect();
    for l in &leaves {
        assert!(selected.contains(l));
    }
    assert!(selected.contains(&t.root()), "s-leaf exists");
    // root not s, no s leaves: nothing selected
    let t2 = from_sexpr("(t (t t) t)", &mut names).unwrap();
    assert!(query_automata::mso::query_eval::eval_unary_ranked(&d, &t2, 2).is_empty());
}

/// Section 1's flagship: "select all leaves if the root is labeled σ" —
/// the query a bottom-up automaton cannot compute (it cannot know the root
/// label at the leaves).
#[test]
fn flagship_root_conditional_leaf_selection() {
    let mut a = Alphabet::from_names(["sig", "tau"]);
    let phi = parse_mso("leaf(v) & (ex r. (root(r) & label(r, sig)))", &mut a).unwrap();
    let d = unranked::compile_unary(&phi, "v", 2).unwrap();
    let mut names = a.clone();
    let yes = from_sexpr("(sig tau (tau sig) tau)", &mut names).unwrap();
    let sel = query_automata::mso::query_eval::eval_unary_unranked(&d, &yes, 2);
    assert_eq!(sel.len(), yes.leaves().count());
    let no = from_sexpr("(tau sig sig)", &mut names).unwrap();
    assert!(query_automata::mso::query_eval::eval_unary_unranked(&d, &no, 2).is_empty());
}
