//! `qa-serve` — a resident query-serving daemon over the paper's query
//! automata.
//!
//! The rest of the workspace evaluates queries *batch-style*: load a
//! tree, compile a formula, run the Figure 6 two-pass algorithm once,
//! exit. This crate keeps everything resident and puts an HTTP API in
//! front of it:
//!
//! - [`DocStore`] holds parsed documents (arena trees under one shared
//!   alphabet) behind `PUT /doc`, with content fingerprints that make
//!   re-ingests idempotent;
//! - [`QueryCache`] compiles MSO formulas once per `(formula, σ)` and
//!   serves the compiled [`PreparedUnary`](qa_mso::PreparedUnary) to
//!   every subsequent `POST /query`;
//! - [`ServeDaemon`] wires both onto the pulse HTTP server, dispatches
//!   evaluations onto a resident [`WorkPool`](qa_par::WorkPool) under
//!   per-request [`Watchdog`](qa_flight::Watchdog) budgets, sheds with
//!   `429 Retry-After` past a configurable queue depth, and feeds every
//!   counter into the served metrics registry so
//!   [`qa_sentinel`] alerting works out of the box;
//! - [`run_soak`] is the deterministic load harness behind
//!   `qa-serve --soak`, gating correctness (served node sets equal the
//!   batch evaluation), shed behavior, and client-observed p99 latency.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod daemon;
pub mod soak;
pub mod store;

pub use cache::{CompiledQuery, QueryCache};
pub use daemon::{ServeConfig, ServeDaemon, DEFAULT_SLO_RULES};
pub use soak::{run_soak, soak_corpus, SoakConfig, SoakReport, SOAK_FORMULAS};
pub use store::{DocStore, IngestReceipt, StoredDoc};
