//! End-to-end tests of the `qa-trace` binary: record two runs differing in
//! one transition, diff them, explain a selection, and export both formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qa_trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-trace"))
        .args(args)
        .output()
        .expect("spawn qa-trace")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

#[test]
fn record_diff_pinpoints_the_changed_transition() {
    let a = tmp("orig.json");
    let b = tmp("variant.json");
    let out = qa_trace(&["record", "example-3-4", "0110", "--out", &a]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = qa_trace(&["record", "example-3-4-variant", "0110", "--out", &b]);
    assert!(out.status.success());

    // identical traces: exit 0
    let same = qa_trace(&["diff", &a, &a]);
    assert!(same.status.success());

    // the one-transition variant: exit 1 and the first divergence named
    let diff = qa_trace(&["diff", &a, &b]);
    assert_eq!(diff.status.code(), Some(1));
    let text = String::from_utf8_lossy(&diff.stdout);
    assert!(
        text.contains("first divergence at step 6"),
        "unexpected diff output:\n{text}"
    );
    assert!(text.contains("q1 @ 4"), "original turns into s1:\n{text}");
    assert!(text.contains("q2 @ 4"), "variant turns into s2:\n{text}");
}

#[test]
fn why_explains_the_example_3_4_selection() {
    let out = qa_trace(&["why", "example-3-4", "0110"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(word index 1)"), "{text}");
    assert!(
        text.contains("position 2 selected: λ(q1, σ1) = 1"),
        "{text}"
    );
    assert!(text.contains("visits:"), "{text}");

    // JSON mode parses back
    let out = qa_trace(&["why", "example-3-4", "0110", "--json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid JSON explanation");
    assert_eq!(v.get("pos").and_then(qa_obs::json::Value::as_u64), Some(2));
}

#[test]
fn why_shows_the_stay_certificate() {
    let out = qa_trace(&["why", "example-5-14"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stay certificate"), "{text}");
}

#[test]
fn replay_and_exports_work_on_recorded_files() {
    let trace = tmp("replay.json");
    let metrics = tmp("metrics.json");
    let out = qa_trace(&[
        "record",
        "example-3-4",
        "0110",
        "--out",
        &trace,
        "--metrics-out",
        &metrics,
    ]);
    assert!(out.status.success());

    let replay = qa_trace(&["replay", &trace]);
    assert!(replay.status.success());
    let text = String::from_utf8_lossy(&replay.stdout);
    assert!(text.contains("q0 @ 0 ->"), "{text}");
    assert!(text.contains("steps:"), "{text}");

    let chrome = qa_trace(&["export", "chrome", &trace]);
    assert!(chrome.status.success());
    let text = String::from_utf8_lossy(&chrome.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid trace-event JSON");
    assert!(v.get("traceEvents").is_some());

    let prom = qa_trace(&["export", "prom", &metrics]);
    assert!(prom.status.success());
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(text.contains("# TYPE qa_steps_total counter"), "{text}");
}

#[test]
fn chrome_export_names_process_and_threads() {
    let trace = tmp("meta.json");
    let out = qa_trace(&["record", "example-3-4", "0110", "--out", &trace]);
    assert!(out.status.success());
    let chrome = qa_trace(&["export", "chrome", &trace]);
    assert!(chrome.status.success());
    let text = String::from_utf8_lossy(&chrome.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid trace-event JSON");
    let events = v
        .get("traceEvents")
        .and_then(qa_obs::json::Value::as_arr)
        .unwrap();
    let metas: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(qa_obs::json::Value::as_str) == Some("M"))
        .filter_map(|e| e.get("name").and_then(qa_obs::json::Value::as_str))
        .collect();
    assert!(metas.contains(&"process_name"), "{metas:?}");
    assert!(metas.contains(&"thread_name"), "{metas:?}");
}

/// A synthetic ten-job wide-event log: two queries, one with perfectly
/// quadratic growth (steps = 2·n²) and one constant.
fn write_events_log() -> String {
    let path = tmp("events.jsonl");
    let mut log = String::new();
    for i in 1u64..=5 {
        let n = 10 * i;
        log.push_str(&format!(
            "{{\"v\":1,\"run\":\"r\",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
             \"job\":{},\"query\":\"quad\",\"query_index\":0,\"doc_index\":{},\
             \"doc_nodes\":{n},\"doc_depth\":3,\"steps\":{},\"reversals\":0,\
             \"cache_hits\":0,\"cache_misses\":0,\"budget_trips\":0,\
             \"selected\":1,\"sampled\":false,\"outcome\":\"ok\",\
             \"worker\":\"local\",\"shard\":\"0/1\",\"start_ns\":1,\"wall_ns\":9}}\n",
            i,
            i + 100,
            i - 1,
            i - 1,
            2 * n * n
        ));
    }
    for i in 6u64..=10 {
        log.push_str(&format!(
            "{{\"v\":1,\"run\":\"r\",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
             \"job\":{},\"query\":\"flat\",\"query_index\":1,\"doc_index\":{},\
             \"doc_nodes\":{},\"doc_depth\":1,\"steps\":7,\"reversals\":0,\
             \"cache_hits\":0,\"cache_misses\":0,\"budget_trips\":0,\
             \"selected\":0,\"sampled\":false,\"outcome\":\"ok\",\
             \"worker\":\"local\",\"shard\":\"0/1\",\"start_ns\":1,\"wall_ns\":9}}\n",
            i,
            i + 100,
            i - 1,
            i - 6,
            10 * (i - 5)
        ));
    }
    std::fs::write(&path, log).expect("write events log");
    path
}

#[test]
fn analyze_reports_heavy_hitters_outliers_and_growth() {
    let events = write_events_log();

    let top = qa_trace(&["analyze", "top", &events, "--k", "2"]);
    assert!(top.status.success());
    let text = String::from_utf8_lossy(&top.stdout);
    assert!(text.contains("top 2 of 10 job(s)"), "{text}");
    // job 4 is the heaviest: 2·50² = 5000 steps
    assert!(
        text.lines().nth(2).unwrap().starts_with("4     quad"),
        "{text}"
    );

    let slow = qa_trace(&["analyze", "slow", &events, "--json"]);
    assert!(slow.status.success());
    let text = String::from_utf8_lossy(&slow.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid slow JSON");
    let queries = v
        .get("queries")
        .and_then(qa_obs::json::Value::as_arr)
        .unwrap();
    assert_eq!(queries.len(), 2);

    let growth = qa_trace(&["analyze", "growth", &events, "--json"]);
    assert!(growth.status.success());
    let text = String::from_utf8_lossy(&growth.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid growth JSON");
    let fits = v.get("fits").and_then(qa_obs::json::Value::as_arr).unwrap();
    let quad_exp = fits[0]
        .get("exponent")
        .and_then(qa_obs::json::Value::as_f64)
        .unwrap();
    assert!((quad_exp - 2.0).abs() < 1e-6, "quad exponent: {quad_exp}");
    assert_eq!(
        fits[0].get("class").and_then(qa_obs::json::Value::as_str),
        Some("quadratic")
    );
    assert_eq!(
        fits[1].get("class").and_then(qa_obs::json::Value::as_str),
        Some("constant")
    );
}

#[test]
fn analyze_slo_replays_rules_offline_and_signals_firing() {
    let events = write_events_log();
    let rules = tmp("steps.rules");
    std::fs::write(
        &rules,
        "alert steps-high threshold qa_fleet_steps_total > 100 for 0\n",
    )
    .unwrap();
    // Cumulative steps blow past 100 on the first job: the alert fires,
    // stays firing through the last tick, and fails the analyzer.
    let out = qa_trace(&["analyze", "slo", &events, "--rules", &rules]);
    assert_eq!(out.status.code(), Some(1), "firing alert must exit 1");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("10 job(s), 1 alert(s) firing"), "{text}");
    assert!(text.contains("-> firing"), "{text}");
    assert!(text.contains("firing: steps-high"), "{text}");

    // The replay sorts by job index, so a completion-ordered log (e.g. a
    // scraped /events tail) produces the identical transition log.
    let shuffled = tmp("events-shuffled.jsonl");
    let mut lines: Vec<String> = std::fs::read_to_string(&events)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    lines.reverse();
    std::fs::write(&shuffled, format!("{}\n", lines.join("\n"))).unwrap();
    let out = qa_trace(&["analyze", "slo", &shuffled, "--rules", &rules]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        text,
        String::from_utf8_lossy(&out.stdout),
        "order-independent"
    );

    // JSON mode serves the engine state; quiet rules exit 0.
    let out = qa_trace(&["analyze", "slo", &events, "--rules", &rules, "--json"]);
    let v =
        qa_obs::json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("valid slo JSON");
    assert_eq!(
        v.get("ticks").and_then(qa_obs::json::Value::as_u64),
        Some(10)
    );
    assert!(v.get("alerts").is_some());
    std::fs::write(
        &rules,
        "alert steps-high threshold qa_fleet_steps_total > 999999999 for 0\n",
    )
    .unwrap();
    let out = qa_trace(&["analyze", "slo", &events, "--rules", &rules]);
    assert!(out.status.success(), "quiet rules exit 0");

    // --rules is mandatory for this report.
    let out = qa_trace(&["analyze", "slo", &events]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_usage_exits_2() {
    assert_eq!(qa_trace(&[]).status.code(), Some(2));
    assert_eq!(
        qa_trace(&["record", "no-such-workload"]).status.code(),
        Some(2)
    );
    assert_eq!(qa_trace(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(
        qa_trace(&["analyze", "nope", "/no/such/file"])
            .status
            .code(),
        Some(2)
    );
}
