//! [`SpanProfiler`]: aggregate the engines' `phase_start`/`phase_end`
//! hooks into a weighted call tree and emit Brendan-Gregg collapsed-stack
//! format.
//!
//! Every instrumented engine already brackets its work in named phases
//! (`"run"`, `"selection scan"`, `"summary fixpoint"`, …) for the
//! [`qa_obs::RunTrace`] Perfetto exports. The profiler reuses exactly
//! those hooks: phases become stack frames, nested phases become nested
//! frames, and each frame accumulates wall-clock self time plus (when a
//! [`CountingAlloc`](crate::CountingAlloc) is installed) allocated-byte
//! volume. [`SpanProfile::to_collapsed`] then renders the classic
//! `frame;frame;frame weight` lines that `flamegraph.pl` and inferno
//! inflate into a flamegraph.
//!
//! Profiles from many runs (or many worker threads) merge with
//! [`SpanProfile::merge`] — the per-run profiler stays single-threaded and
//! lock-free; only the merge into a fleet-wide profile takes a lock, once
//! per run.

use std::time::Instant;

use qa_obs::Observer;

use crate::heap;

/// Which per-frame weight [`SpanProfile::to_collapsed`] emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weight {
    /// Wall-clock self time, in nanoseconds.
    WallNanos,
    /// Bytes allocated while the frame was the innermost open phase
    /// (all zeros unless a counting allocator is installed).
    AllocBytes,
}

#[derive(Clone, Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    /// Total wall-clock nanoseconds spent while this frame was open,
    /// children included (self time is derived at emission).
    total_ns: u64,
    /// Total bytes allocated while this frame was open, children included.
    alloc_bytes: u64,
    /// Completed enter/leave pairs.
    calls: u64,
}

/// A weighted call tree keyed by nested phase names.
#[derive(Clone, Debug, Default)]
pub struct SpanProfile {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl SpanProfile {
    /// Empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Whether any phase has completed.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.calls == 0)
    }

    /// Total wall-clock nanoseconds across all root frames.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|&r| self.nodes[r].total_ns).sum()
    }

    /// Find or create the child of `parent` (`None` = a root frame) named
    /// `name`, returning its index.
    fn child(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node {
            name,
            children: Vec::new(),
            total_ns: 0,
            alloc_bytes: 0,
            calls: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(i),
            None => self.roots.push(i),
        }
        i
    }

    fn add(&mut self, node: usize, ns: u64, bytes: u64) {
        let n = &mut self.nodes[node];
        n.total_ns += ns;
        n.alloc_bytes += bytes;
        n.calls += 1;
    }

    /// Fold `other` into this profile: frames with the same name path
    /// combine their weights, as if both profiles' phases had run under
    /// one profiler. Associative and commutative.
    pub fn merge(&mut self, other: &SpanProfile) {
        fn merge_into(
            dst: &mut SpanProfile,
            parent: Option<usize>,
            src: &SpanProfile,
            src_idx: usize,
        ) {
            let s = &src.nodes[src_idx];
            let d = dst.child(parent, s.name);
            dst.nodes[d].total_ns += s.total_ns;
            dst.nodes[d].alloc_bytes += s.alloc_bytes;
            dst.nodes[d].calls += s.calls;
            for &c in &src.nodes[src_idx].children {
                merge_into(dst, Some(d), src, c);
            }
        }
        for &r in &other.roots {
            merge_into(self, None, other, r);
        }
    }

    /// Collapsed-stack rendering: one `frame;frame;frame weight` line per
    /// stack with positive *self* weight (total minus children — the
    /// convention flamegraph tools expect), children sorted by name so the
    /// output shape is deterministic. Frame names are the engines' phase
    /// names with `' '` → `'_'` and `';'` → `':'` (the collapsed format
    /// reserves both characters).
    pub fn to_collapsed(&self, weight: Weight) -> String {
        fn sanitize(name: &str) -> String {
            name.replace(' ', "_").replace(';', ":")
        }
        fn walk(p: &SpanProfile, idx: usize, path: &mut String, weight: Weight, out: &mut String) {
            let node = &p.nodes[idx];
            let base = path.len();
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(&sanitize(node.name));
            let pick = |n: &Node| match weight {
                Weight::WallNanos => n.total_ns,
                Weight::AllocBytes => n.alloc_bytes,
            };
            let children: u64 = node.children.iter().map(|&c| pick(&p.nodes[c])).sum();
            let self_weight = pick(node).saturating_sub(children);
            if self_weight > 0 {
                out.push_str(path);
                out.push(' ');
                out.push_str(&self_weight.to_string());
                out.push('\n');
            }
            let mut kids = node.children.clone();
            kids.sort_by_key(|&c| p.nodes[c].name);
            for c in kids {
                walk(p, c, path, weight, out);
            }
            path.truncate(base);
        }
        let mut out = String::new();
        let mut roots = self.roots.clone();
        roots.sort_by_key(|&r| self.nodes[r].name);
        let mut path = String::new();
        for r in roots {
            walk(self, r, &mut path, weight, &mut out);
        }
        out
    }
}

struct Frame {
    node: usize,
    started: Instant,
    alloc0: u64,
}

/// [`Observer`] that builds a [`SpanProfile`] from phase events; every
/// other hook keeps its empty zero-cost default.
///
/// # Examples
///
/// ```
/// use qa_obs::Observer;
/// use qa_pulse::{SpanProfiler, Weight};
///
/// let mut p = SpanProfiler::new();
/// p.phase_start("run");
/// p.phase_start("selection scan");
/// p.phase_end("selection scan");
/// p.phase_end("run");
/// let folded = p.into_profile().to_collapsed(Weight::WallNanos);
/// assert!(folded.contains("run;selection_scan "));
/// ```
#[derive(Default)]
pub struct SpanProfiler {
    profile: SpanProfile,
    stack: Vec<Frame>,
}

impl SpanProfiler {
    /// Fresh profiler with an empty profile.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// The profile so far (open frames not yet attributed).
    pub fn profile(&self) -> &SpanProfile {
        &self.profile
    }

    /// Finish, discarding any still-open frames (their completed children
    /// are retained — matching how [`qa_obs::RunTrace`] drops unclosed
    /// phases).
    pub fn into_profile(self) -> SpanProfile {
        self.profile
    }

    fn close_top(&mut self) {
        if let Some(f) = self.stack.pop() {
            let ns = f.started.elapsed().as_nanos() as u64;
            let bytes = heap::allocated_bytes().saturating_sub(f.alloc0);
            self.profile.add(f.node, ns, bytes);
        }
    }
}

impl Observer for SpanProfiler {
    fn phase_start(&mut self, name: &'static str) {
        let parent = self.stack.last().map(|f| f.node);
        let node = self.profile.child(parent, name);
        self.stack.push(Frame {
            node,
            started: Instant::now(),
            alloc0: heap::allocated_bytes(),
        });
    }

    fn phase_end(&mut self, name: &'static str) {
        // Engines nest phases properly; tolerate strays the way RunTrace
        // does (ignore an end with no matching start) and close any frames
        // left open above a matching outer end.
        match self
            .stack
            .iter()
            .rposition(|f| self.profile.nodes[f.node].name == name)
        {
            None => {}
            Some(i) => {
                while self.stack.len() > i {
                    self.close_top();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(p: &mut SpanProfiler, script: &[(&'static str, bool)]) {
        for &(name, start) in script {
            if start {
                p.phase_start(name);
            } else {
                p.phase_end(name);
            }
        }
    }

    /// Parse collapsed text back into (path, weight) pairs.
    fn parse(folded: &str) -> Vec<(String, u64)> {
        folded
            .lines()
            .map(|l| {
                let (path, w) = l.rsplit_once(' ').expect("line is `path weight`");
                (path.to_string(), w.parse().expect("positive integer"))
            })
            .collect()
    }

    #[test]
    fn nested_phases_become_nested_stacks() {
        let mut p = SpanProfiler::new();
        fire(
            &mut p,
            &[
                ("run", true),
                ("bottom-up pass", true),
                ("bottom-up pass", false),
                ("selection scan", true),
                ("selection scan", false),
                ("run", false),
            ],
        );
        let lines = parse(&p.into_profile().to_collapsed(Weight::WallNanos));
        let paths: Vec<&str> = lines.iter().map(|(p, _)| p.as_str()).collect();
        // children sorted by name, spaces sanitized to underscores
        assert!(paths.contains(&"run;bottom-up_pass"), "{paths:?}");
        assert!(paths.contains(&"run;selection_scan"), "{paths:?}");
        assert!(lines.iter().all(|&(_, w)| w > 0), "{lines:?}");
    }

    #[test]
    fn self_time_excludes_children() {
        // Build a profile by hand so the weights are exact.
        let mut prof = SpanProfile::new();
        let run = prof.child(None, "run");
        let inner = prof.child(Some(run), "inner");
        prof.add(inner, 30, 0);
        prof.add(run, 100, 0);
        let lines = parse(&prof.to_collapsed(Weight::WallNanos));
        assert_eq!(
            lines,
            vec![("run".to_string(), 70), ("run;inner".to_string(), 30)]
        );
    }

    #[test]
    fn zero_self_weight_lines_are_omitted() {
        let mut prof = SpanProfile::new();
        let run = prof.child(None, "run");
        let inner = prof.child(Some(run), "inner");
        prof.add(inner, 50, 0);
        prof.add(run, 50, 0); // all of run's time is inside inner
        let lines = parse(&prof.to_collapsed(Weight::WallNanos));
        assert_eq!(lines, vec![("run;inner".to_string(), 50)]);
    }

    #[test]
    fn round_trip_known_tree_through_collapsed_text() {
        // A known nested-phase tree: the collapsed output must reproduce
        // the exact (path, self-weight) multiset.
        let mut prof = SpanProfile::new();
        let a = prof.child(None, "a");
        let ab = prof.child(Some(a), "b");
        let ac = prof.child(Some(a), "c");
        let acb = prof.child(Some(ac), "b");
        prof.add(ab, 5, 0);
        prof.add(acb, 7, 0);
        prof.add(ac, 10, 0);
        prof.add(a, 100, 0);
        let folded = prof.to_collapsed(Weight::WallNanos);
        let lines = parse(&folded);
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 85),
                ("a;b".to_string(), 5),
                ("a;c".to_string(), 3),
                ("a;c;b".to_string(), 7),
            ]
        );
        // Re-merging the same tree doubles every weight, no new paths.
        let mut doubled = prof.clone();
        doubled.merge(&prof);
        let twice = parse(&doubled.to_collapsed(Weight::WallNanos));
        assert_eq!(
            twice,
            lines
                .iter()
                .map(|(p, w)| (p.clone(), w * 2))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_combines_distinct_roots() {
        let mut x = SpanProfile::new();
        let r = x.child(None, "run");
        x.add(r, 10, 2);
        let mut y = SpanProfile::new();
        let f = y.child(None, "fixpoint");
        y.add(f, 20, 4);
        x.merge(&y);
        assert_eq!(x.total_ns(), 30);
        let lines = parse(&x.to_collapsed(Weight::AllocBytes));
        assert_eq!(
            lines,
            vec![("fixpoint".to_string(), 4), ("run".to_string(), 2)]
        );
    }

    #[test]
    fn unbalanced_ends_are_tolerated() {
        let mut p = SpanProfiler::new();
        p.phase_end("stray"); // no matching start: ignored
        p.phase_start("outer");
        p.phase_start("inner");
        p.phase_end("outer"); // closes inner, then outer
        let prof = p.into_profile();
        assert!(!prof.is_empty());
        let lines = parse(&prof.to_collapsed(Weight::WallNanos));
        assert!(lines
            .iter()
            .any(|(p, _)| p == "outer" || p == "outer;inner"));
    }

    #[test]
    fn repeated_phases_accumulate_calls() {
        let mut p = SpanProfiler::new();
        for _ in 0..3 {
            p.phase_start("run");
            p.phase_end("run");
        }
        let prof = p.into_profile();
        assert_eq!(prof.nodes[prof.roots[0]].calls, 3);
    }
}
