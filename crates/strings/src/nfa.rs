//! Nondeterministic finite automata with ε-transitions.

use std::collections::VecDeque;

use qa_base::Symbol;

use crate::{Dfa, StateId};

/// A nondeterministic finite automaton over symbols `0..alphabet_len`.
///
/// Supports ε-transitions (added by the Thompson construction); the run and
/// product algorithms take ε-closures internally. States are dense
/// [`StateId`]s; transitions are stored per-state, per-symbol.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_strings::Nfa;
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// // an NFA for "contains ab"
/// let mut n = Nfa::new(sigma.len());
/// let q0 = n.add_state();
/// let q1 = n.add_state();
/// let q2 = n.add_state();
/// n.set_initial(q0);
/// n.set_accepting(q2, true);
/// n.add_transition(q0, a, q0);
/// n.add_transition(q0, b, q0);
/// n.add_transition(q0, a, q1);
/// n.add_transition(q1, b, q2);
/// n.add_transition(q2, a, q2);
/// n.add_transition(q2, b, q2);
/// assert!(n.accepts(&[b, a, b]));
/// assert!(!n.accepts(&[b, a, a]));
/// ```
#[derive(Clone, Debug)]
pub struct Nfa {
    alphabet_len: usize,
    /// `transitions[state][symbol]` = successor states.
    transitions: Vec<Vec<Vec<StateId>>>,
    /// ε-successors per state.
    epsilon: Vec<Vec<StateId>>,
    initial: Vec<StateId>,
    accepting: Vec<bool>,
}

impl Nfa {
    /// Empty NFA (no states) over an alphabet of `alphabet_len` symbols.
    pub fn new(alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            transitions: Vec::new(),
            epsilon: Vec::new(),
            initial: Vec::new(),
            accepting: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Alphabet size this NFA was built for.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Add a fresh state (initially non-accepting, unconnected).
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.transitions.len());
        self.transitions.push(vec![Vec::new(); self.alphabet_len]);
        self.epsilon.push(Vec::new());
        self.accepting.push(false);
        id
    }

    /// Mark `state` as (an additional) initial state.
    pub fn set_initial(&mut self, state: StateId) {
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
    }

    /// Set whether `state` is accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state.index()] = accepting;
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Add the transition `from --sym--> to` (idempotent).
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!(sym.index() < self.alphabet_len, "symbol outside alphabet");
        let tgts = &mut self.transitions[from.index()][sym.index()];
        if !tgts.contains(&to) {
            tgts.push(to);
        }
    }

    /// Add the ε-transition `from --ε--> to` (idempotent).
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        let tgts = &mut self.epsilon[from.index()];
        if !tgts.contains(&to) {
            tgts.push(to);
        }
    }

    /// Successors of `state` on `sym` (not ε-closed).
    pub fn successors(&self, state: StateId, sym: Symbol) -> &[StateId] {
        &self.transitions[state.index()][sym.index()]
    }

    /// ε-successors of `state`.
    pub fn epsilon_successors(&self, state: StateId) -> &[StateId] {
        &self.epsilon[state.index()]
    }

    /// Whether this NFA has any ε-transitions.
    pub fn has_epsilon(&self) -> bool {
        self.epsilon.iter().any(|e| !e.is_empty())
    }

    /// ε-closure of `set`, as a sorted, deduplicated state list.
    pub fn epsilon_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &s in set {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.epsilon[s.index()] {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The set of states reachable from `set` by reading `sym` (ε-closed on
    /// both ends assuming `set` is already closed).
    pub fn step(&self, set: &[StateId], sym: Symbol) -> Vec<StateId> {
        let mut next: Vec<StateId> = Vec::new();
        for &s in set {
            for &t in self.successors(s, sym) {
                if !next.contains(&t) {
                    next.push(t);
                }
            }
        }
        self.epsilon_closure(&next)
    }

    /// Whether the NFA accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.epsilon_closure(&self.initial);
        for &sym in word {
            if current.is_empty() {
                return false;
            }
            current = self.step(&current, sym);
        }
        current.iter().any(|&s| self.is_accepting(s))
    }

    /// Whether the language is empty, optionally restricted to words over the
    /// symbol subset `allowed` (`None` = full alphabet).
    ///
    /// Restriction support is what Lemma 5.2's PTIME emptiness check for
    /// unranked tree automata needs: "is `δ(q, a) ∩ R*` non-empty?".
    pub fn is_empty_over(&self, allowed: Option<&[bool]>) -> bool {
        if let Some(mask) = allowed {
            debug_assert_eq!(mask.len(), self.alphabet_len);
        }
        let mut seen = vec![false; self.num_states()];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for &s in &self.epsilon_closure(&self.initial) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            if self.is_accepting(s) {
                return false;
            }
            for sym_idx in 0..self.alphabet_len {
                if let Some(mask) = allowed {
                    if !mask[sym_idx] {
                        continue;
                    }
                }
                for &t in &self.transitions[s.index()][sym_idx] {
                    for &u in &self.epsilon_closure(&[t]) {
                        if !seen[u.index()] {
                            seen[u.index()] = true;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }
        true
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.is_empty_over(None)
    }

    /// A shortest accepted word, if the language is non-empty.
    pub fn shortest_witness(&self) -> Option<Vec<Symbol>> {
        // BFS over ε-closed state sets is exponential; BFS over single states
        // with predecessor tracking suffices because acceptance from an
        // initial state through individual transitions witnesses membership.
        let mut pred: Vec<Option<(StateId, Option<Symbol>)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for &s in &self.initial {
            seen[s.index()] = true;
            queue.push_back(s);
        }
        let mut hit: Option<StateId> = None;
        'bfs: while let Some(s) = queue.pop_front() {
            if self.is_accepting(s) {
                hit = Some(s);
                break 'bfs;
            }
            for &t in &self.epsilon[s.index()] {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    pred[t.index()] = Some((s, None));
                    queue.push_back(t);
                }
            }
            for sym_idx in 0..self.alphabet_len {
                let sym = Symbol::from_index(sym_idx);
                for &t in &self.transitions[s.index()][sym_idx] {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        pred[t.index()] = Some((s, Some(sym)));
                        queue.push_back(t);
                    }
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, sym)) = pred[cur.index()] {
            if let Some(sym) = sym {
                word.push(sym);
            }
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Subset-construction determinization.
    pub fn determinize(&self) -> Dfa {
        crate::ops::determinize(self)
    }

    /// The reversal NFA: accepts `w` iff `self` accepts the reverse of `w`.
    pub fn reverse(&self) -> Nfa {
        let mut rev = Nfa::new(self.alphabet_len);
        for _ in 0..self.num_states() {
            rev.add_state();
        }
        for (i, per_sym) in self.transitions.iter().enumerate() {
            let from = StateId::from_index(i);
            for (sym_idx, tgts) in per_sym.iter().enumerate() {
                for &to in tgts {
                    rev.add_transition(to, Symbol::from_index(sym_idx), from);
                }
            }
            for &to in &self.epsilon[i] {
                rev.add_epsilon(to, from);
            }
        }
        for (i, &acc) in self.accepting.iter().enumerate() {
            if acc {
                rev.set_initial(StateId::from_index(i));
            }
        }
        for &s in &self.initial {
            rev.set_accepting(s, true);
        }
        rev
    }

    /// Disjoint union: accepts `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nfa) -> Nfa {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "union over mismatched alphabets"
        );
        let mut u = self.clone();
        let offset = u.num_states();
        for _ in 0..other.num_states() {
            u.add_state();
        }
        let shift = |s: StateId| StateId::from_index(s.index() + offset);
        for (i, per_sym) in other.transitions.iter().enumerate() {
            for (sym_idx, tgts) in per_sym.iter().enumerate() {
                for &to in tgts {
                    u.add_transition(
                        shift(StateId::from_index(i)),
                        Symbol::from_index(sym_idx),
                        shift(to),
                    );
                }
            }
            for &to in &other.epsilon[i] {
                u.add_epsilon(shift(StateId::from_index(i)), shift(to));
            }
        }
        for (i, &acc) in other.accepting.iter().enumerate() {
            if acc {
                u.set_accepting(shift(StateId::from_index(i)), true);
            }
        }
        for &s in &other.initial {
            u.set_initial(shift(s));
        }
        u
    }

    /// Product intersection: accepts `L(self) ∩ L(other)`.
    ///
    /// ε-transitions are supported (a product state may advance either
    /// component on ε).
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "intersection over mismatched alphabets"
        );
        let mut prod = Nfa::new(self.alphabet_len);
        let mut index: std::collections::HashMap<(StateId, StateId), StateId> =
            std::collections::HashMap::new();
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
        let intern = |prod: &mut Nfa,
                      queue: &mut VecDeque<(StateId, StateId)>,
                      index: &mut std::collections::HashMap<(StateId, StateId), StateId>,
                      pair: (StateId, StateId)| {
            *index.entry(pair).or_insert_with(|| {
                queue.push_back(pair);
                prod.add_state()
            })
        };
        for &a in &self.initial {
            for &b in &other.initial {
                let id = intern(&mut prod, &mut queue, &mut index, (a, b));
                prod.set_initial(id);
            }
        }
        while let Some((a, b)) = queue.pop_front() {
            let from = index[&(a, b)];
            if self.is_accepting(a) && other.is_accepting(b) {
                prod.set_accepting(from, true);
            }
            for sym_idx in 0..self.alphabet_len {
                let sym = Symbol::from_index(sym_idx);
                for &ta in self.successors(a, sym) {
                    for &tb in other.successors(b, sym) {
                        let to = intern(&mut prod, &mut queue, &mut index, (ta, tb));
                        prod.add_transition(from, sym, to);
                    }
                }
            }
            for &ta in self.epsilon_successors(a) {
                let to = intern(&mut prod, &mut queue, &mut index, (ta, b));
                prod.add_epsilon(from, to);
            }
            for &tb in other.epsilon_successors(b) {
                let to = intern(&mut prod, &mut queue, &mut index, (a, tb));
                prod.add_epsilon(from, to);
            }
        }
        prod
    }

    /// NFA accepting exactly the single word `word`.
    pub fn literal(alphabet_len: usize, word: &[Symbol]) -> Nfa {
        let mut n = Nfa::new(alphabet_len);
        let mut prev = n.add_state();
        n.set_initial(prev);
        for &sym in word {
            let next = n.add_state();
            n.add_transition(prev, sym, next);
            prev = next;
        }
        n.set_accepting(prev, true);
        n
    }

    /// NFA accepting every word over the alphabet (Σ*).
    pub fn universal(alphabet_len: usize) -> Nfa {
        let mut n = Nfa::new(alphabet_len);
        let q = n.add_state();
        n.set_initial(q);
        n.set_accepting(q, true);
        for sym_idx in 0..alphabet_len {
            n.add_transition(q, Symbol::from_index(sym_idx), q);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        (sigma, a, b)
    }

    /// NFA for `(a|b)* a`: last symbol is `a`.
    fn ends_in_a() -> (Nfa, Symbol, Symbol) {
        let (_, a, b) = ab();
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_initial(q0);
        n.set_accepting(q1, true);
        n.add_transition(q0, a, q0);
        n.add_transition(q0, b, q0);
        n.add_transition(q0, a, q1);
        (n, a, b)
    }

    #[test]
    fn accepts_basic() {
        let (n, a, b) = ends_in_a();
        assert!(n.accepts(&[a]));
        assert!(n.accepts(&[b, b, a]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[a, b]));
    }

    #[test]
    fn epsilon_closure_is_transitive() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_epsilon(q0, q1);
        n.add_epsilon(q1, q2);
        assert_eq!(n.epsilon_closure(&[q0]), vec![q0, q1, q2]);
    }

    #[test]
    fn acceptance_through_epsilon() {
        let (_, a, _) = ab();
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.set_initial(q0);
        n.add_epsilon(q0, q1);
        n.add_transition(q1, a, q2);
        n.set_accepting(q2, true);
        assert!(n.accepts(&[a]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn emptiness_and_witness() {
        let (n, a, _) = ends_in_a();
        assert!(!n.is_empty());
        assert_eq!(n.shortest_witness(), Some(vec![a]));

        let empty = Nfa::new(2);
        assert!(empty.is_empty());
        assert_eq!(empty.shortest_witness(), None);
    }

    #[test]
    fn emptiness_over_restricted_symbols() {
        let (n, _, _) = ends_in_a();
        // Only `b` allowed: no word ending in `a` exists.
        assert!(n.is_empty_over(Some(&[false, true])));
        // Only `a` allowed: `a` itself works.
        assert!(!n.is_empty_over(Some(&[true, false])));
    }

    #[test]
    fn reverse_accepts_reversed_words() {
        let (n, a, b) = ends_in_a();
        let rev = n.reverse();
        // reverse language: first symbol is `a`.
        assert!(rev.accepts(&[a, b, b]));
        assert!(!rev.accepts(&[b, a]));
    }

    #[test]
    fn union_accepts_either() {
        let (n, a, b) = ends_in_a();
        let lit = Nfa::literal(2, &[b, b]);
        let u = n.union(&lit);
        assert!(u.accepts(&[b, a]));
        assert!(u.accepts(&[b, b]));
        assert!(!u.accepts(&[b]));
    }

    #[test]
    fn intersect_requires_both() {
        let (n, a, b) = ends_in_a();
        // words of length exactly 2
        let mut len2 = Nfa::new(2);
        let q0 = len2.add_state();
        let q1 = len2.add_state();
        let q2 = len2.add_state();
        len2.set_initial(q0);
        len2.set_accepting(q2, true);
        for s in [a, b] {
            len2.add_transition(q0, s, q1);
            len2.add_transition(q1, s, q2);
        }
        let i = n.intersect(&len2);
        assert!(i.accepts(&[b, a]));
        assert!(i.accepts(&[a, a]));
        assert!(!i.accepts(&[a]));
        assert!(!i.accepts(&[a, b]));
        assert!(!i.accepts(&[a, a, a]));
    }

    #[test]
    fn literal_and_universal() {
        let (_, a, b) = ab();
        let lit = Nfa::literal(2, &[a, b, a]);
        assert!(lit.accepts(&[a, b, a]));
        assert!(!lit.accepts(&[a, b]));
        assert!(!lit.accepts(&[a, b, b]));
        let uni = Nfa::universal(2);
        assert!(uni.accepts(&[]));
        assert!(uni.accepts(&[a, b, b, a]));
    }

    #[test]
    fn intersect_with_epsilon_components() {
        let (_, a, _) = ab();
        let mut n1 = Nfa::new(2);
        let p0 = n1.add_state();
        let p1 = n1.add_state();
        let p2 = n1.add_state();
        n1.set_initial(p0);
        n1.add_epsilon(p0, p1);
        n1.add_transition(p1, a, p2);
        n1.set_accepting(p2, true);
        let lit = Nfa::literal(2, &[a]);
        let i = n1.intersect(&lit);
        assert!(i.accepts(&[a]));
        assert!(!i.accepts(&[]));
    }
}
