//! [`DocStore`]: the resident, arena-backed document store behind
//! `PUT /doc`.
//!
//! Documents arrive as s-expressions or XML, parse into the workspace's
//! arena [`Tree`] (every node a `u32` index into flat vectors — no
//! per-node allocation), and stay resident under one *shared*
//! [`Alphabet`]. Sharing the alphabet across every document is the
//! store's load-bearing decision: compiled query automata are functions
//! of the alphabet size `σ`, so a single growing alphabet gives the
//! query cache one coherent `σ` axis to key on — ingesting a document
//! with fresh labels bumps `σ`, and the cache recompiles affected
//! queries instead of ever applying a stale automaton to symbols it has
//! never seen.
//!
//! Every document gets a content fingerprint: FNV-1a 64 over its
//! *canonical s-expression* rendering, so the same tree ingested as XML
//! or as an s-expression — or re-ingested byte-differently but
//! structurally identically — fingerprints identically, and re-ingests
//! of unchanged content are cheap idempotent no-ops.

use std::collections::BTreeMap;
use std::sync::Arc;

use qa_base::{Alphabet, Error, Result};
use qa_trees::sexpr::{from_sexpr, to_sexpr};
use qa_trees::Tree;
use qa_xml::parser::{parse_with_alphabet, PCDATA};

/// One resident document.
#[derive(Clone, Debug)]
pub struct StoredDoc {
    /// The name it was ingested under (`PUT /doc?name=…`).
    pub name: String,
    /// The parsed tree, shared with in-flight evaluations.
    pub tree: Arc<Tree>,
    /// FNV-1a 64 over the canonical s-expression rendering.
    pub fingerprint: u64,
    /// Node count.
    pub nodes: usize,
    /// Tree height (root-to-deepest-leaf edges).
    pub height: usize,
}

/// Receipt returned by [`DocStore::ingest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Dense document id (stable across re-ingests of the same name).
    pub id: usize,
    /// Content fingerprint of the ingested tree.
    pub fingerprint: u64,
    /// Node count of the ingested tree.
    pub nodes: usize,
    /// Height of the ingested tree.
    pub height: usize,
    /// Whether the store changed — `false` when re-ingesting a document
    /// whose fingerprint matches what is already resident.
    pub updated: bool,
}

/// The resident document store; see the module docs.
#[derive(Debug, Default)]
pub struct DocStore {
    alphabet: Alphabet,
    docs: Vec<StoredDoc>,
    by_name: BTreeMap<String, usize>,
}

impl DocStore {
    /// An empty store. Its shared alphabet pre-interns
    /// [`PCDATA`] so XML and s-expression ingests
    /// agree on symbol ids from the first document on.
    pub fn new() -> DocStore {
        let mut alphabet = Alphabet::new();
        alphabet.intern(PCDATA);
        DocStore {
            alphabet,
            docs: Vec::new(),
            by_name: BTreeMap::new(),
        }
    }

    /// Parse `text` (XML if it starts with `<`, an s-expression
    /// otherwise) and store it under `name`, extending the shared
    /// alphabet with any fresh labels. Re-ingesting a name with
    /// fingerprint-identical content is an idempotent no-op; different
    /// content replaces the document in place, keeping its id.
    ///
    /// ```
    /// use qa_serve::DocStore;
    ///
    /// let mut store = DocStore::new();
    /// let receipt = store.ingest("pair", "(a (b) (b))").unwrap();
    /// assert_eq!((receipt.nodes, receipt.height), (3, 1));
    /// assert!(receipt.updated);
    ///
    /// // Re-ingesting identical content changes nothing.
    /// let again = store.ingest("pair", "(a b b)").unwrap();
    /// assert_eq!(again.fingerprint, receipt.fingerprint);
    /// assert!(!again.updated);
    ///
    /// // XML and s-expression ingests share one alphabet.
    /// let xml = store.ingest("solo", "<a><b/></a>").unwrap();
    /// assert_eq!(xml.nodes, 2);
    /// ```
    pub fn ingest(&mut self, name: &str, text: &str) -> Result<IngestReceipt> {
        if name.is_empty() {
            return Err(Error::parse("doc", "empty document name".to_string()));
        }
        let trimmed = text.trim();
        let tree = if trimmed.starts_with('<') {
            parse_with_alphabet(trimmed, &mut self.alphabet)?.tree
        } else {
            from_sexpr(trimmed, &mut self.alphabet)?
        };
        let canonical = to_sexpr(&tree, &self.alphabet);
        let fingerprint = qa_obs::fnv1a64(canonical.as_bytes());
        let nodes = tree.num_nodes();
        let height = tree.height();
        if let Some(&id) = self.by_name.get(name) {
            if self.docs[id].fingerprint == fingerprint {
                return Ok(IngestReceipt {
                    id,
                    fingerprint,
                    nodes,
                    height,
                    updated: false,
                });
            }
            self.docs[id] = StoredDoc {
                name: name.to_string(),
                tree: Arc::new(tree),
                fingerprint,
                nodes,
                height,
            };
            return Ok(IngestReceipt {
                id,
                fingerprint,
                nodes,
                height,
                updated: true,
            });
        }
        let id = self.docs.len();
        self.docs.push(StoredDoc {
            name: name.to_string(),
            tree: Arc::new(tree),
            fingerprint,
            nodes,
            height,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(IngestReceipt {
            id,
            fingerprint,
            nodes,
            height,
            updated: true,
        })
    }

    /// Look a document up by name.
    pub fn get(&self, name: &str) -> Option<&StoredDoc> {
        self.by_name.get(name).map(|&id| &self.docs[id])
    }

    /// The dense id a name was assigned at first ingest (stable across
    /// content replacements; also the document's index in [`docs`]).
    ///
    /// [`docs`]: DocStore::docs
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The shared alphabet (usable mutably for query compilation, which
    /// may intern labels documents never carried).
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        &mut self.alphabet
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All resident documents in ingest order.
    pub fn docs(&self) -> &[StoredDoc] {
        &self.docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_and_sexpr_of_the_same_tree_fingerprint_identically() {
        let mut store = DocStore::new();
        let a = store
            .ingest("s", "(bibliography (book author title))")
            .unwrap();
        let b = store
            .ingest(
                "x",
                "<bibliography><book><author/><title/></book></bibliography>",
            )
            .unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.id, b.id, "distinct names are distinct documents");
    }

    #[test]
    fn replacing_content_keeps_the_id_and_reports_updated() {
        let mut store = DocStore::new();
        let first = store.ingest("d", "(a b)").unwrap();
        let second = store.ingest("d", "(a b c)").unwrap();
        assert_eq!(first.id, second.id);
        assert!(second.updated);
        assert_ne!(first.fingerprint, second.fingerprint);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("d").unwrap().nodes, 3);
    }

    #[test]
    fn garbage_is_rejected() {
        let mut store = DocStore::new();
        assert!(store.ingest("bad", "(unclosed").is_err());
        assert!(store.ingest("bad", "<unclosed>").is_err());
        assert!(store.ingest("", "(a)").is_err());
        assert!(store.is_empty());
    }
}
