//! Proposition 6.1: TWO PERSON CORRIDOR TILING reduces to 2DTAʳ
//! non-emptiness.
//!
//! A [`TilingInstance`] describes the corridor game; [`solve_game`] decides
//! the winner directly by alternating-reachability (backward induction),
//! and [`to_tree_automaton`] builds a two-way ranked tree automaton that
//! accepts exactly the trees representing winning strategies for player
//! one — so the automaton is non-empty iff player one wins.
//!
//! Engineering note (recorded in DESIGN.md): the paper keeps the automaton
//! linear in the instance size by checking the vertical constraints with an
//! `n`-step upward walk; our generator instead carries the last `n` tiles
//! in the state (a window), which costs `|T|ⁿ` states but produces a
//! *descend-and-fold* machine whose language is the same set of strategy
//! trees. For the benchmark harness (which measures the decision
//! procedure's blowup on hard instances) both encodings exercise the same
//! pipeline; only reachable states are materialized.

use std::collections::HashMap;

use qa_base::Symbol;
use qa_base::{Alphabet, Error, Result};
use qa_core::ranked::twoway::{Polarity, TwoWayRanked, TwoWayRankedBuilder};
use qa_obs::{Counter, NoopObserver, Observer, Series};
use qa_strings::StateId;

/// A TWO PERSON CORRIDOR TILING instance.
#[derive(Clone, Debug)]
pub struct TilingInstance {
    /// Number of tile types `|T|` (tiles are `0..num_tiles`).
    pub num_tiles: usize,
    /// Allowed horizontal adjacencies `(left, right)`.
    pub horizontal: Vec<(usize, usize)>,
    /// Allowed vertical adjacencies `(below, above)`.
    pub vertical: Vec<(usize, usize)>,
    /// The given bottom row `b̄` (length = corridor width `n`).
    pub bottom: Vec<usize>,
    /// The target top row `t̄` (same length).
    pub top: Vec<usize>,
}

impl TilingInstance {
    /// Corridor width `n`.
    pub fn width(&self) -> usize {
        self.bottom.len()
    }

    /// Validate the instance shape.
    pub fn validate(&self) -> Result<()> {
        if self.bottom.is_empty() || self.bottom.len() != self.top.len() {
            return Err(Error::domain(
                "bottom/top rows must be nonempty and equal length",
            ));
        }
        let ok = |t: usize| t < self.num_tiles;
        if !self.bottom.iter().chain(&self.top).all(|&t| ok(t))
            || !self
                .horizontal
                .iter()
                .chain(&self.vertical)
                .all(|&(a, b)| ok(a) && ok(b))
        {
            return Err(Error::domain("tile id out of range"));
        }
        Ok(())
    }

    fn consistent(&self, window: &[usize], col: usize, tile: usize) -> bool {
        let v_ok = self.vertical.contains(&(window[0], tile));
        let h_ok = col == 0 || self.horizontal.contains(&(window[window.len() - 1], tile));
        v_ok && h_ok
    }

    fn push(&self, window: &[usize], tile: usize) -> Vec<usize> {
        let mut w = window[1..].to_vec();
        w.push(tile);
        w
    }
}

/// Game state: the last `n` placed tiles, the column of the next placement,
/// and whose turn it is.
type GState = (Vec<usize>, usize, bool);

/// Decide the corridor game by backward induction (least fixpoint of the
/// player-one attractor). Exponential in the corridor width — as it must
/// be (the problem is EXPTIME-complete).
pub fn solve_game(inst: &TilingInstance) -> Result<bool> {
    inst.validate()?;
    if inst.bottom == inst.top {
        return Ok(true); // the one-row corridor tiling
    }
    let n = inst.width();
    // enumerate reachable states
    let mut winning: HashMap<GState, bool> = HashMap::new();
    // iterate to fixpoint over the full reachable space
    let mut states: Vec<GState> = vec![(inst.bottom.clone(), 0, true)];
    let mut seen: std::collections::HashSet<GState> = states.iter().cloned().collect();
    let mut i = 0;
    while i < states.len() {
        let (w, col, turn) = states[i].clone();
        for t in 0..inst.num_tiles {
            if inst.consistent(&w, col, t) {
                let nxt = (inst.push(&w, t), (col + 1) % n, !turn);
                if seen.insert(nxt.clone()) {
                    states.push(nxt);
                }
            }
        }
        i += 1;
    }
    loop {
        let mut changed = false;
        for st in &states {
            if winning.get(st) == Some(&true) {
                continue;
            }
            let (w, col, turn) = st;
            let moves: Vec<usize> = (0..inst.num_tiles)
                .filter(|&t| inst.consistent(w, *col, t))
                .collect();
            let wins_now = |t: usize| *col == n - 1 && inst.push(w, t) == inst.top;
            let result = if *turn {
                // player one: some consistent move wins
                moves.iter().any(|&t| {
                    wins_now(t)
                        || winning.get(&(inst.push(w, t), (col + 1) % n, false)) == Some(&true)
                })
            } else {
                // player two: forced inconsistent ⇒ loses; otherwise all
                // consistent moves must be winning for player one
                moves.is_empty()
                    || moves.iter().all(|&t| {
                        wins_now(t)
                            || winning.get(&(inst.push(w, t), (col + 1) % n, true)) == Some(&true)
                    })
            };
            if result {
                winning.insert(st.clone(), true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(winning.get(&(inst.bottom.clone(), 0, true)) == Some(&true))
}

/// Build the strategy-tree alphabet: one symbol per tile, named `t0 …`.
pub fn strategy_alphabet(inst: &TilingInstance) -> Alphabet {
    Alphabet::from_names((0..inst.num_tiles).map(|t| format!("t{t}")))
}

/// Proposition 6.1: the two-way ranked tree automaton accepting exactly
/// the winning-strategy trees of `inst`. Non-empty iff player one wins
/// (checked against [`solve_game`] in the tests).
///
/// Tree shape: the node at depth `d` is the tile placed at step `d`
/// (player one on even depths); player-one nodes have one child, player-two
/// nodes have `|T|` children labeled `t0 … t|T|−1` in order; branches end
/// at a completed top row or at an inconsistent player-two move.
pub fn to_tree_automaton(inst: &TilingInstance) -> Result<TwoWayRanked> {
    to_tree_automaton_with(inst, &mut NoopObserver)
}

/// [`to_tree_automaton`] with an [`Observer`]: every game description
/// interned during the reduction is a [`Counter::SummariesExplored`], and
/// the finished machine's state count is recorded under
/// [`Series::MachineStates`] — the reduction-size metric of
/// Proposition 6.1. With [`NoopObserver`] this monomorphizes to exactly
/// `to_tree_automaton`.
pub fn to_tree_automaton_with<O: Observer>(
    inst: &TilingInstance,
    obs: &mut O,
) -> Result<TwoWayRanked> {
    inst.validate()?;
    if inst.bottom == inst.top {
        // trivially non-empty: accept every single-node tree via a machine
        // that flips the root to an accepting up-state.
        let mut b = TwoWayRankedBuilder::new(inst.num_tiles.max(1), inst.num_tiles.max(1));
        let s = b.add_state();
        let ok = b.add_state();
        b.set_initial(s);
        b.set_final(ok, true);
        b.set_polarity_all(s, Polarity::Down);
        b.set_polarity_all(ok, Polarity::Up);
        for t in 0..inst.num_tiles.max(1) {
            b.set_leaf(s, Symbol::from_index(t), ok);
        }
        let m = b.build()?;
        obs.record(Series::MachineStates, m.num_states() as u64);
        return Ok(m);
    }
    let n = inst.width();
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct Desc {
        window: Vec<usize>,
        col: usize,
        p1_turn: bool,
        /// for player-two alternatives: the tile this node must carry
        expect: Option<usize>,
    }
    let mut builder = TwoWayRankedBuilder::new(inst.num_tiles, inst.num_tiles.max(1));
    let ok_state = builder.add_state();
    builder.set_final(ok_state, true);
    builder.set_polarity_all(ok_state, Polarity::Up);
    // δ↑: any sequence of OK children folds to OK — enumerate the two
    // shapes that occur: singleton sequences, and the full ordered
    // player-two fan (labels t0..t|T|-1).
    for t in 0..inst.num_tiles {
        builder.set_up(&[(ok_state, Symbol::from_index(t))], ok_state);
    }
    let fan: Vec<(StateId, Symbol)> = (0..inst.num_tiles)
        .map(|t| (ok_state, Symbol::from_index(t)))
        .collect();
    if inst.num_tiles > 1 {
        builder.set_up(&fan, ok_state);
    }

    let mut index: HashMap<Desc, StateId> = HashMap::new();
    let mut pending: Vec<Desc> = Vec::new();
    let init = Desc {
        window: inst.bottom.clone(),
        col: 0,
        p1_turn: true,
        expect: None,
    };
    let init_id = builder.add_state();
    builder.set_polarity_all(init_id, Polarity::Down);
    builder.set_initial(init_id);
    index.insert(init.clone(), init_id);
    pending.push(init);

    while let Some(desc) = pending.pop() {
        obs.count(Counter::SummariesExplored, 1);
        let id = index[&desc];
        for tile in 0..inst.num_tiles {
            let label = Symbol::from_index(tile);
            if let Some(exp) = desc.expect {
                if exp != tile {
                    continue; // wrong alternative label: stuck → reject
                }
            }
            let consistent = inst.consistent(&desc.window, desc.col, tile);
            let new_window = inst.push(&desc.window, tile);
            let won = consistent && desc.col == n - 1 && new_window == inst.top;
            // leaf: allowed iff the game just ended here
            if won || (!consistent && !desc.p1_turn) {
                builder.set_leaf(id, label, ok_state);
                continue; // no descent after the game ends
            }
            if !consistent {
                continue; // player one played garbage: stuck everywhere
            }
            // interior: hand states to the children (the next placement)
            let next_col = (desc.col + 1) % n;
            let next_turn = !desc.p1_turn;
            let child_descs: Vec<Desc> = if next_turn {
                // next is player one: a single free choice
                vec![Desc {
                    window: new_window.clone(),
                    col: next_col,
                    p1_turn: true,
                    expect: None,
                }]
            } else {
                // next is player two: all |T| alternatives, in label order
                (0..inst.num_tiles)
                    .map(|t| Desc {
                        window: new_window.clone(),
                        col: next_col,
                        p1_turn: false,
                        expect: Some(t),
                    })
                    .collect()
            };
            let child_ids: Vec<StateId> = child_descs
                .into_iter()
                .map(|d| match index.get(&d) {
                    Some(&s) => s,
                    None => {
                        let s = builder.add_state();
                        builder.set_polarity_all(s, Polarity::Down);
                        index.insert(d.clone(), s);
                        pending.push(d);
                        s
                    }
                })
                .collect();
            builder.set_down(id, label, &child_ids);
        }
    }
    let machine = builder.build()?;
    obs.record(Series::MachineStates, machine.num_states() as u64);
    Ok(machine)
}

/// A small instance where player one wins (free tiling: everything
/// compatible).
pub fn easy_instance(width: usize) -> TilingInstance {
    let all: Vec<(usize, usize)> = (0..2).flat_map(|a| (0..2).map(move |b| (a, b))).collect();
    TilingInstance {
        num_tiles: 2,
        horizontal: all.clone(),
        vertical: all,
        bottom: vec![0; width],
        top: vec![1; width],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_core::ranked::RankedQa;

    /// An instance player one cannot win: no vertical adjacency at all, and
    /// top ≠ bottom.
    fn impossible() -> TilingInstance {
        TilingInstance {
            num_tiles: 2,
            horizontal: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vertical: vec![],
            bottom: vec![0, 0],
            top: vec![1, 1],
        }
    }

    /// Player two can always ruin the corridor: vertical forces copy
    /// (t above t), so the top row 1..1 needs bottom 1..1.
    fn copy_only() -> TilingInstance {
        TilingInstance {
            num_tiles: 2,
            horizontal: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vertical: vec![(0, 0), (1, 1)],
            bottom: vec![0, 0],
            top: vec![1, 1],
        }
    }

    #[test]
    fn game_solver_basic_verdicts() {
        // width 1: player one owns every placement and climbs to the top.
        assert!(solve_game(&easy_instance(1)).unwrap());
        // width 2: player two owns column 1 and can refuse tile 1 forever.
        assert!(!solve_game(&easy_instance(2)).unwrap());
        assert!(!solve_game(&impossible()).unwrap());
        assert!(!solve_game(&copy_only()).unwrap());
        // trivial one-row corridor
        let mut triv = copy_only();
        triv.top = triv.bottom.clone();
        assert!(solve_game(&triv).unwrap());
    }

    #[test]
    fn forced_player_two_cooperates() {
        // vertical rules force every tile above anything to be 1, so player
        // two either cooperates or plays inconsistently (and loses): player
        // one wins at width 2.
        let inst = TilingInstance {
            num_tiles: 2,
            horizontal: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vertical: vec![(0, 1), (1, 1)],
            bottom: vec![0, 0],
            top: vec![1, 1],
        };
        assert!(solve_game(&inst).unwrap());
        let m = to_tree_automaton(&inst).unwrap();
        let mut qa = RankedQa::new(m);
        for s in 0..qa.machine().num_states() {
            for t in 0..qa.machine().alphabet_len() {
                qa.set_selecting(StateId::from_index(s), Symbol::from_index(t), true);
            }
        }
        let w = crate::ranked_decisions::non_emptiness(&qa)
            .unwrap()
            .expect("player one wins ⇒ some strategy tree accepted");
        assert!(qa.machine().accepts(&w.tree).unwrap());
    }

    #[test]
    fn vertical_progression_instance() {
        // tiles 0→1→2 vertically, everything horizontally: player one wins
        // by climbing; width 2.
        let inst = TilingInstance {
            num_tiles: 3,
            horizontal: (0..3).flat_map(|a| (0..3).map(move |b| (a, b))).collect(),
            vertical: vec![(0, 1), (1, 2)],
            bottom: vec![0, 0],
            top: vec![2, 2],
        };
        assert!(solve_game(&inst).unwrap());
    }

    #[test]
    fn automaton_nonempty_iff_player_one_wins() {
        for inst in [
            easy_instance(2),
            impossible(),
            copy_only(),
            TilingInstance {
                num_tiles: 2,
                horizontal: vec![(0, 1), (1, 0)],
                vertical: vec![(0, 1), (1, 0)],
                bottom: vec![0, 1],
                top: vec![1, 0],
            },
        ] {
            let winner = solve_game(&inst).unwrap();
            let machine = to_tree_automaton(&inst).unwrap();
            // language emptiness via the query fixpoint with an
            // everything-selecting λ: the query is non-empty iff some tree
            // is accepted.
            let mut qa = RankedQa::new(machine);
            for s in 0..qa.machine().num_states() {
                for t in 0..qa.machine().alphabet_len() {
                    qa.set_selecting(StateId::from_index(s), Symbol::from_index(t), true);
                }
            }
            let nonempty = crate::ranked_decisions::non_emptiness(&qa)
                .unwrap()
                .is_some();
            assert_eq!(nonempty, winner, "{inst:?}");
        }
    }

    #[test]
    fn strategy_tree_is_accepted_end_to_end() {
        // easy instance, width 1: P1 places tile 1 at column 0 → top row
        // reached immediately. Strategy tree: single node t1.
        let inst = easy_instance(1);
        let m = to_tree_automaton(&inst).unwrap();
        let a = strategy_alphabet(&inst);
        let t = qa_trees::Tree::leaf(a.symbol("t1"));
        assert!(m.accepts(&t).unwrap());
        let t0 = qa_trees::Tree::leaf(a.symbol("t0"));
        assert!(!m.accepts(&t0).unwrap(), "t0 does not complete the top row");
    }

    #[test]
    fn validation_errors() {
        let mut bad = easy_instance(2);
        bad.top = vec![5, 5];
        assert!(bad.validate().is_err());
        bad = easy_instance(2);
        bad.bottom.clear();
        bad.top.clear();
        assert!(bad.validate().is_err());
    }
}
