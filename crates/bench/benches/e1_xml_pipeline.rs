//! E1 (Figures 1–4): the XML pipeline — parse, validate, query — scales
//! linearly in document size.

use qa_bench::Harness;

fn main() {
    let mut h = Harness::new("e1_xml_pipeline");
    // compile the query once (compilation cost is measured separately)
    let (doc0, dtd) = qa_xml::figures::bibliography().unwrap();
    let sigma = doc0.alphabet.len();
    let mut a = doc0.alphabet.clone();
    let phi = qa_mso::parse(
        "label(v, author) & (ex b. (label(b, book) & edge(b, v)))",
        &mut a,
    )
    .unwrap();
    let compiled = qa_mso::unranked::compile_unary(&phi, "v", sigma).unwrap();
    let automaton = qa_xml::validate::to_automaton(&dtd).unwrap();

    for k in [1usize, 4, 16, 64] {
        let xml = qa_bench::bibliography_of_size(k);
        h.bench(&format!("parse/{k}"), || {
            let mut al = doc0.alphabet.clone();
            qa_xml::parser::parse_with_alphabet(&xml, &mut al).unwrap()
        });
        let mut al = doc0.alphabet.clone();
        let doc = qa_xml::parser::parse_with_alphabet(&xml, &mut al).unwrap();
        h.bench(&format!("validate/{k}"), || {
            assert!(automaton.accepts(&doc.tree))
        });
        h.bench(&format!("query/{k}"), || {
            let sel = qa_mso::query_eval::eval_unary_unranked(&compiled, &doc.tree, sigma);
            assert_eq!(sel.len(), 3 * k);
        });
    }
}
