//! Quickstart: build and run query automata from the paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use query_automata::prelude::*;

fn main() -> Result<()> {
    // ── Strings: the Example 3.4 query automaton ────────────────────────
    // "select every 1 at an odd position counting from the right end"
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let w = sigma.word("0110");
    println!("Example 3.4 on 0110 selects positions {:?}", qa.query(&w)?);

    // ── Unranked trees: the Example 5.14 strong query automaton ─────────
    // "select every 1-labeled leaf with no 1-labeled left sibling" — the
    // query Proposition 5.10 proves impossible without stay transitions.
    let sqa = example_5_14(&sigma);
    let mut names = sigma.clone();
    let tree = from_sexpr("(0 0 1 (1 1) 0 1)", &mut names)?;
    println!("tree: {}", tree.render(&names));
    let selected = sqa.query(&tree)?;
    for v in &selected {
        println!(
            "  selected node {v:?} (label {}, depth {})",
            names.name(tree.label(*v)),
            tree.depth(*v)
        );
    }

    // ── The same query, written in MSO and compiled ─────────────────────
    let mut a2 = sigma.clone();
    let phi = parse_mso(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a2,
    )?;
    let automaton = query_automata::mso::unranked::compile_unary(&phi, "v", sigma.len())?;
    let compiled =
        query_automata::mso::query_eval::eval_unary_unranked(&automaton, &tree, sigma.len());
    println!("MSO compilation selects {compiled:?}");
    assert_eq!(
        {
            let mut s = selected.clone();
            s.sort_unstable();
            s
        },
        {
            let mut c = compiled;
            c.sort_unstable();
            c
        },
        "Theorem 5.17: the SQAu and the MSO query agree"
    );

    // ── Decision procedures (Section 6) ─────────────────────────────────
    let witness = query_automata::decision::string_decisions::non_emptiness(&qa)
        .expect("example 3.4 selects something");
    println!(
        "non-emptiness witness: word {:?}, position {}",
        sigma.render(&witness.word),
        witness.position
    );
    Ok(())
}
