//! Kleene's theorem, constructive direction: automata back to regular
//! expressions, by state elimination.
//!
//! Rounds out the Section 2.2 toolkit: `regex → NFA → DFA → regex`. Used
//! by the examples to *display* transition languages (e.g. the up-languages
//! of unranked automata) in human-readable form.

use std::collections::HashMap;

use qa_base::Symbol;

use crate::{Dfa, Nfa, Regex, StateId};

/// Convert an NFA to an equivalent regular expression by state
/// elimination.
///
/// The result can be large (state elimination is worst-case exponential in
/// formula size); it is intended for display and for round-trip testing,
/// not as an internal representation.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    // GNFA edges: (from, to) → regex, over states 0..n plus fresh start =
    // n and accept = n + 1.
    let n = nfa.num_states();
    let start = n;
    let accept = n + 1;
    let mut edges: HashMap<(usize, usize), Regex> = HashMap::new();
    let connect = |edges: &mut HashMap<(usize, usize), Regex>, f: usize, t: usize, r: Regex| {
        let slot = edges.entry((f, t)).or_insert(Regex::Empty);
        *slot = std::mem::replace(slot, Regex::Empty).alt(r);
    };
    for s_idx in 0..n {
        let s = StateId::from_index(s_idx);
        for a in 0..nfa.alphabet_len() {
            let sym = Symbol::from_index(a);
            for &t in nfa.successors(s, sym) {
                connect(&mut edges, s_idx, t.index(), Regex::Sym(sym));
            }
        }
        for &t in nfa.epsilon_successors(s) {
            connect(&mut edges, s_idx, t.index(), Regex::Epsilon);
        }
        if nfa.is_accepting(s) {
            connect(&mut edges, s_idx, accept, Regex::Epsilon);
        }
    }
    for &i in nfa.initial_states() {
        connect(&mut edges, start, i.index(), Regex::Epsilon);
    }

    // Eliminate the original states one by one.
    for k in 0..n {
        let self_loop = edges.remove(&(k, k)).unwrap_or(Regex::Empty);
        let loop_star = self_loop.star();
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|((_, t), _)| *t == k)
            .map(|((f, _), r)| (*f, r.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|((f, _), _)| *f == k)
            .map(|((_, t), r)| (*t, r.clone()))
            .collect();
        edges.retain(|(f, t), _| *f != k && *t != k);
        for (f, rin) in &incoming {
            for (t, rout) in &outgoing {
                let detour = rin.clone().concat(loop_star.clone()).concat(rout.clone());
                connect(&mut edges, *f, *t, detour);
            }
        }
    }
    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

/// Convert a DFA to an equivalent regular expression (via its NFA view).
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    nfa_to_regex(&dfa.to_nfa())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use qa_base::Alphabet;

    fn round_trip(src: &str) {
        let mut a = Alphabet::new();
        let r = crate::regex::parse_chars(src, &mut a).unwrap();
        let nfa = r.to_nfa(a.len().max(1));
        let back = nfa_to_regex(&nfa);
        let nfa2 = back.to_nfa(a.len().max(1));
        assert!(
            ops::nfa_equivalent(&nfa, &nfa2),
            "{src} ≠ {}",
            back.render(&a)
        );
    }

    #[test]
    fn round_trips_basic_expressions() {
        for src in ["a", "ab", "a|b", "a*", "(a|b)*abb", "a+b?", "~", "(ab)*a"] {
            round_trip(src);
        }
    }

    #[test]
    fn empty_language_stays_empty() {
        let nfa = Nfa::new(2);
        assert_eq!(nfa_to_regex(&nfa), Regex::Empty);
    }

    #[test]
    fn dfa_round_trip_through_minimization() {
        let mut a = Alphabet::new();
        let r = crate::regex::parse_chars("(a|b)*a(a|b)", &mut a).unwrap();
        let min = r.to_nfa(2).determinize().minimize();
        let back = dfa_to_regex(&min);
        assert!(ops::nfa_equivalent(&min.to_nfa(), &back.to_nfa(2)));
    }

    #[test]
    fn universal_language_round_trip() {
        let uni = Nfa::universal(2);
        let back = nfa_to_regex(&uni);
        assert!(ops::nfa_equivalent(&uni, &back.to_nfa(2)));
    }
}
