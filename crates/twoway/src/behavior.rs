//! Behavior functions `f←`, `first` and `Assumed` (Theorem 3.9).
//!
//! The proof of Theorem 3.9 shows that a two-way run is fully determined by
//! *local* data: for every prefix `⊳ w₁…wᵢ`, the behavior function
//! `f←` (where does the machine re-emerge when it dives left?), the state
//! `first(w, i)` in which position `i` is first reached, and — fixed
//! right-to-left afterwards — the set `Assumed(w, i)` of all states the run
//! ever assumes at `i`. This module computes those objects by the paper's
//! recurrences (items 1–4 in the proof), *without* replaying the two-way
//! run. Agreement with the literal run engine is property-tested; the same
//! summaries power the Shepherdson conversion and the Section 6 decision
//! procedures.

use std::rc::Rc;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;

use crate::cache::CrossingCache;
use crate::tape::Tape;
use crate::twodfa::{Dir, TwoDfa};

/// What happens when the machine stands at a position `i` in a given state,
/// before it ever crosses from `i` to `i + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// It eventually makes a right move at `i`, arriving at `i + 1` in the
    /// given state.
    Exits(StateId),
    /// It halts (no applicable transition) in the given state, at `i` or
    /// strictly left of it. Outcomes are deliberately position-free so that
    /// behavior columns depend only on the cell content and the column to
    /// their left — the property that makes them hash-consable in a
    /// [`CrossingCache`]. The absolute halt position of the *start run* is
    /// recovered separately; see [`BehaviorAnalysis::halt`].
    Halts(StateId),
    /// It loops forever within `[0, i]`.
    Loops,
}

/// One *crossing-behavior column*: the per-state outcomes and excursion
/// state sets at a single tape position. By the Theorem 3.9 recurrences a
/// column is a pure function of the cell's content and the column one cell
/// to the left — which is exactly what makes columns hash-consable in a
/// [`CrossingCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Column {
    /// `exit[s]`: outcome of standing at this position in state `s`.
    pub(crate) exit: Vec<Outcome>,
    /// `states[s]`: the states assumed here between arriving in `s` and
    /// exiting right / halting / looping — the paper's `States(f←, s)`.
    pub(crate) states: Vec<Vec<StateId>>,
}

/// Per-position behavior summaries of a 2DFA on one input word.
#[derive(Clone, Debug)]
pub struct BehaviorAnalysis {
    /// `chain[i]`: the crossing-behavior column at tape position `i`
    /// (shared with a [`CrossingCache`] when computed by
    /// [`BehaviorAnalysis::analyze_cached`]).
    chain: Vec<Rc<Column>>,
    /// `first[i]`: the state in which `i` is first reached by the start run,
    /// if it is reached at all.
    pub first: Vec<Option<StateId>>,
    /// Overall outcome of the run.
    pub outcome: Outcome,
    /// `Assumed(w, i)` for every tape position; empty sets when the run does
    /// not halt.
    pub assumed: Vec<Vec<StateId>>,
    /// Absolute tape position of the start run's halt, when it halts.
    halt_pos: Option<usize>,
    num_states: usize,
}

/// Compute one column from the cell content and the column to its left —
/// the items 1–2 recurrence of the Theorem 3.9 proof.
pub(crate) fn compute_column<O: Observer>(
    machine: &TwoDfa,
    cell: Tape,
    prev: Option<&Column>,
    obs: &mut O,
) -> Column {
    let states = machine.num_states();
    let mut exit = vec![Outcome::Loops; states];
    let mut statess: Vec<Vec<StateId>> = vec![Vec::new(); states];
    for s in 0..states {
        let start = StateId::from_index(s);
        let mut cur = start;
        let mut visited = vec![false; states];
        let mut seq = Vec::new();
        let outcome = loop {
            if visited[cur.index()] {
                break Outcome::Loops;
            }
            visited[cur.index()] = true;
            seq.push(cur);
            obs.count(Counter::TableLookups, 1);
            obs.state_visit(Machine::Crossing, cur.index() as u32, cell.encode() as u32);
            match machine.action(cur, cell) {
                None => break Outcome::Halts(cur),
                Some((Dir::Right, s2)) => {
                    obs.transition_fired(
                        Machine::Crossing,
                        cur.index() as u32,
                        cell.encode() as u32,
                        s2.index() as u32,
                    );
                    break Outcome::Exits(s2);
                }
                Some((Dir::Left, s1)) => {
                    obs.transition_fired(
                        Machine::Crossing,
                        cur.index() as u32,
                        cell.encode() as u32,
                        s1.index() as u32,
                    );
                    let prev = prev.expect("left move at ⊳ rejected by builder");
                    // Consult the already-computed summary one cell left.
                    match prev.exit[s1.index()] {
                        Outcome::Exits(s2) => cur = s2,
                        other => break other,
                    }
                }
            }
        };
        exit[s] = outcome;
        statess[s] = seq;
    }
    Column {
        exit,
        states: statess,
    }
}

impl BehaviorAnalysis {
    /// Compute all summaries for `machine` on `word` using the recurrences of
    /// Theorem 3.9 (left-to-right for `f←`/`first`, right-to-left for
    /// `Assumed`).
    pub fn analyze(machine: &TwoDfa, word: &[Symbol]) -> BehaviorAnalysis {
        Self::analyze_with(machine, word, &mut NoopObserver)
    }

    /// [`BehaviorAnalysis::analyze`] with an [`Observer`]: table lookups of
    /// the chain recurrences and the sizes of the resulting `Assumed` sets
    /// are reported to `obs`. With [`NoopObserver`] this monomorphizes to
    /// exactly `analyze`.
    pub fn analyze_with<O: Observer>(
        machine: &TwoDfa,
        word: &[Symbol],
        obs: &mut O,
    ) -> BehaviorAnalysis {
        let tape_len = word.len() + 2;
        let mut chain: Vec<Rc<Column>> = Vec::with_capacity(tape_len);
        for i in 0..tape_len {
            let cell = Tape::at(word, i);
            let prev = chain.last().map(Rc::as_ref);
            chain.push(Rc::new(compute_column(machine, cell, prev, obs)));
        }
        Self::finish(machine, word, chain, obs)
    }

    /// [`BehaviorAnalysis::analyze_with`] with crossing-behavior columns
    /// hash-consed in `cache`: a column whose `(cell, left column)` pair has
    /// been seen before — on this word or any earlier word analyzed through
    /// the same cache — is reused instead of recomputed. Reports
    /// [`Counter::CacheHits`] / [`Counter::CacheMisses`] to `obs`; results
    /// are identical to `analyze_with`.
    pub fn analyze_cached<O: Observer>(
        machine: &TwoDfa,
        word: &[Symbol],
        cache: &mut CrossingCache,
        obs: &mut O,
    ) -> BehaviorAnalysis {
        let tape_len = word.len() + 2;
        let mut chain: Vec<Rc<Column>> = Vec::with_capacity(tape_len);
        let mut prev_id: Option<u32> = None;
        cache.ensure_machine(machine);
        for i in 0..tape_len {
            let cell = Tape::at(word, i);
            let (id, col) = cache.column(machine, cell, prev_id, obs);
            chain.push(col);
            prev_id = Some(id);
        }
        Self::finish(machine, word, chain, obs)
    }

    /// Shared tail of `analyze_with`/`analyze_cached`: derive `first`, the
    /// overall outcome (with its absolute halt position), and the `Assumed`
    /// sets from the column chain.
    fn finish<O: Observer>(
        machine: &TwoDfa,
        word: &[Symbol],
        chain: Vec<Rc<Column>>,
        obs: &mut O,
    ) -> BehaviorAnalysis {
        let tape_len = word.len() + 2;

        // first[i] via the left-to-right chain of exits.
        let mut first: Vec<Option<StateId>> = vec![None; tape_len];
        first[0] = Some(machine.initial());
        let mut outcome = Outcome::Loops;
        for i in 0..tape_len {
            let Some(f) = first[i] else { break };
            match chain[i].exit[f.index()] {
                Outcome::Exits(s2) => {
                    if i + 1 < tape_len {
                        first[i + 1] = Some(s2);
                    } else {
                        unreachable!("right move from ⊲ rejected by builder");
                    }
                }
                other => {
                    outcome = other;
                    break;
                }
            }
        }

        // Columns are position-free, so when the run halts we recover the
        // absolute halt position once by replaying the final (rightmost)
        // excursion through the already-computed columns.
        let halt_pos = matches!(outcome, Outcome::Halts(_))
            .then(|| Self::locate_halt(machine, word, &chain, &first));

        // Assumed sets, right-to-left (paper items 3 and 4). Only meaningful
        // when the run halts. Dedup goes through a reusable bitset so each
        // insertion is O(1) instead of a linear scan of the set built so
        // far; insertion order (and therefore the output) is unchanged.
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); tape_len];
        if matches!(outcome, Outcome::Halts(_)) {
            fn insert_once(mask: &mut [u64], set: &mut Vec<StateId>, s: StateId) {
                let idx = s.index();
                let bit = 1u64 << (idx % 64);
                if mask[idx / 64] & bit == 0 {
                    mask[idx / 64] |= bit;
                    set.push(s);
                }
            }
            // Highest position the start run reaches.
            let top = (0..tape_len).rev().find(|&i| first[i].is_some()).unwrap();
            assumed[top] = chain[top].states[first[top].unwrap().index()].clone();
            let mut mask = vec![0u64; machine.num_states().div_ceil(64)];
            for i in (0..top).rev() {
                mask.fill(0);
                let mut set = Vec::new();
                for &s in &chain[i].states[first[i].unwrap().index()] {
                    insert_once(&mut mask, &mut set, s);
                }
                let cell_right = Tape::at(word, i + 1);
                for &s_up in &assumed[i + 1] {
                    if let Some((Dir::Left, s1)) = machine.action(s_up, cell_right) {
                        for &s in &chain[i].states[s1.index()] {
                            insert_once(&mut mask, &mut set, s);
                        }
                    }
                }
                assumed[i] = set;
            }
        }
        if obs.is_enabled() {
            for set in &assumed {
                obs.record(Series::AssumedStates, set.len() as u64);
            }
        }

        BehaviorAnalysis {
            chain,
            first,
            outcome,
            assumed,
            halt_pos,
            num_states: machine.num_states(),
        }
    }

    /// Replay the halting tail of the start run over the columns to find the
    /// absolute halt position. Starts at the highest position the start run
    /// reaches and only consults summaries the actual run consults, so it
    /// terminates in `O(tape length × states)` steps. Only called when the
    /// overall outcome is `Halts`.
    fn locate_halt(
        machine: &TwoDfa,
        word: &[Symbol],
        chain: &[Rc<Column>],
        first: &[Option<StateId>],
    ) -> usize {
        let tape_len = word.len() + 2;
        let mut i = (0..tape_len).rev().find(|&j| first[j].is_some()).unwrap();
        let mut cur = first[i].unwrap();
        loop {
            match machine.action(cur, Tape::at(word, i)) {
                None => return i,
                Some((Dir::Right, _)) => {
                    unreachable!("right move inside a halting excursion")
                }
                Some((Dir::Left, s1)) => match chain[i - 1].exit[s1.index()] {
                    Outcome::Exits(s2) => cur = s2,
                    Outcome::Halts(_) => {
                        i -= 1;
                        cur = s1;
                    }
                    Outcome::Loops => unreachable!("loop inside a halting excursion"),
                },
            }
        }
    }

    /// The paper's behavior function `f←` for the prefix ending at tape
    /// position `i`: `Some(s)` for right-moving states, the first return
    /// state for left-moving ones, `None` when the excursion never returns.
    pub fn paper_f(
        &self,
        machine: &TwoDfa,
        word: &[Symbol],
        i: usize,
        s: StateId,
    ) -> Option<StateId> {
        match machine.action(s, Tape::at(word, i)) {
            Some((Dir::Right, _)) => Some(s),
            Some((Dir::Left, s1)) => match self.chain[i - 1].exit[s1.index()] {
                Outcome::Exits(s2) => Some(s2),
                _ => None,
            },
            None => None,
        }
    }

    /// Outcome of standing at tape position `i` in state `s`.
    pub fn chain_exit(&self, i: usize, s: StateId) -> Outcome {
        self.chain[i].exit[s.index()]
    }

    /// `States(f←, s)` at position `i`: the states assumed at `i` from an
    /// entry in state `s` until the next right-crossing (or halt/loop).
    pub fn chain_states(&self, i: usize, s: StateId) -> &[StateId] {
        &self.chain[i].states[s.index()]
    }

    /// Whether the run halts and accepts.
    pub fn accepted(&self, machine: &TwoDfa) -> bool {
        matches!(self.outcome, Outcome::Halts(h) if machine.is_final(h))
    }

    /// The halting configuration `(state, tape position)` of the start run.
    ///
    /// Errors instead of panicking when the run never halts, so callers
    /// probing arbitrary machines (equivalence tooling, the trace CLI) can
    /// surface the diagnosis to the user.
    pub fn halt(&self) -> Result<(StateId, usize)> {
        match self.outcome {
            Outcome::Halts(s) => Ok((
                s,
                self.halt_pos
                    .expect("halt position computed for halting runs"),
            )),
            Outcome::Loops => Err(Error::stuck(
                "two-way run never halts: it loops inside the tape",
            )),
            Outcome::Exits(_) => Err(Error::ill_formed(
                "behavior outcome",
                "start run exits past the right endmarker",
            )),
        }
    }

    /// Number of machine states (for table sizing by callers).
    pub fn num_states(&self) -> usize {
        self.num_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twodfa::TwoDfaBuilder;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// Example 3.4 machine (walk right, come back alternating s1/s2).
    fn example_3_4() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, true);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        b.build().unwrap()
    }

    /// A zig-zag machine: on each symbol, bounce left once then continue
    /// right — exercises non-trivial excursions.
    fn zigzag() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let fwd = b.add_state();
        let back = b.add_state();
        let ret = b.add_state();
        b.set_initial(fwd);
        b.set_final(fwd, true);
        b.set_action(fwd, Tape::LeftMarker, Dir::Right, fwd);
        // at a symbol going forward: dive left in `back`
        b.set_action_all_symbols(fwd, Dir::Left, back);
        // `back` immediately returns right in `ret`
        b.set_action_all_symbols(back, Dir::Right, ret);
        b.set_action(back, Tape::LeftMarker, Dir::Right, ret);
        // `ret` moves right in `fwd`
        b.set_action_all_symbols(ret, Dir::Right, fwd);
        // halt at ⊲ in fwd (accepting)
        b.build().unwrap()
    }

    fn agree_with_run(m: &TwoDfa, w: &[Symbol]) {
        let rec = m.run(w).expect("halting machine");
        let ba = BehaviorAnalysis::analyze(m, w);
        assert_eq!(ba.accepted(m), rec.accepted, "acceptance on {w:?}");
        let halt = ba.halt().expect("halting machine");
        assert_eq!(halt, rec.halt, "halt config on {w:?}");
        for (i, exp) in rec.assumed.iter().enumerate() {
            let mut got = ba.assumed[i].clone();
            let mut exp = exp.clone();
            got.sort_unstable();
            exp.sort_unstable();
            assert_eq!(got, exp, "assumed at {i} on {w:?}");
        }
    }

    #[test]
    fn matches_run_on_example_3_4() {
        let m = example_3_4();
        for w in [
            vec![],
            vec![sym(0)],
            vec![sym(1)],
            vec![sym(0), sym(1), sym(1), sym(0)],
            vec![sym(1); 5],
        ] {
            agree_with_run(&m, &w);
        }
    }

    #[test]
    fn matches_run_on_zigzag() {
        let m = zigzag();
        assert!(m.halts_on_all_words_up_to(4));
        for w in [
            vec![],
            vec![sym(0)],
            vec![sym(0), sym(1)],
            vec![sym(1), sym(1), sym(0)],
        ] {
            agree_with_run(&m, &w);
        }
    }

    #[test]
    fn exhaustive_agreement_small_words() {
        for m in [example_3_4(), zigzag()] {
            for len in 0..=4usize {
                for mask in 0..(1usize << len) {
                    let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                    agree_with_run(&m, &w);
                }
            }
        }
    }

    #[test]
    fn loop_is_reported_as_loops() {
        let mut b = TwoDfaBuilder::new(1);
        let q = b.add_state();
        let r = b.add_state();
        b.set_initial(q);
        b.set_action(q, Tape::LeftMarker, Dir::Right, q);
        b.set_action_all_symbols(q, Dir::Right, q);
        b.set_action(q, Tape::RightMarker, Dir::Left, r);
        b.set_action_all_symbols(r, Dir::Right, q);
        b.set_action(r, Tape::LeftMarker, Dir::Right, q);
        let m = b.build().unwrap();
        let ba = BehaviorAnalysis::analyze(&m, &[sym(0)]);
        assert_eq!(ba.outcome, Outcome::Loops);
        assert!(!ba.accepted(&m));
        assert!(ba.halt().is_err(), "looping run has no halt configuration");
    }

    #[test]
    fn paper_f_identity_on_right_movers() {
        let m = example_3_4();
        let w = vec![sym(0), sym(1)];
        let ba = BehaviorAnalysis::analyze(&m, &w);
        // s0 moves right everywhere: f(s0) = s0 at any real position.
        let s0 = StateId::from_index(0);
        assert_eq!(ba.paper_f(&m, &w, 1, s0), Some(s0));
        assert_eq!(ba.paper_f(&m, &w, 2, s0), Some(s0));
    }
}
