//! Selection provenance: `why_selected` must return the *correct*
//! certificate — the paper's own evidence for the selection — on the
//! running examples, and trace diffing must pinpoint where two machines
//! differing in one transition part ways.

use query_automata::obs::json::parse;
use query_automata::obs::RunTrace;
use query_automata::prelude::*;
use query_automata::probe::{first_divergence, ProvenanceObserver};
use query_automata::twoway::string_qa::example_3_4_qa;
use query_automata::twoway::Tape;

/// Example 3.4 on `0110`: word index 1 is the unique selected position.
/// The certificate must name the selecting state `s1` reading `1`, and the
/// visit list must be the position's crossing-sequence fragment: the
/// left-to-right sweep in `s0`, then the right-to-left parity visit in `s1`.
#[test]
fn example_3_4_certificate_is_the_crossing_sequence_fragment() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&sigma);
    let w = sigma.word("0110");
    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_with(&w, &mut prov).unwrap();
    assert_eq!(selected, vec![1]);

    let e = prov.why_selected_word(1).expect("index 1 selected");
    assert_eq!(e.pos, 2, "tape coordinates: word index 1 = position 2");
    assert_eq!(e.state, 1, "witnessing state is s1 (odd parity from right)");
    assert_eq!(e.sym, sigma.symbol("1").index() as u32);
    // crossing sequence at position 2: s0 rightward, s1 leftward
    assert_eq!(e.visits.len(), 2);
    assert_eq!((e.visits[0].state, e.visits[0].dir), (0, 1));
    assert_eq!((e.visits[1].state, e.visits[1].dir), (1, -1));
    assert!(e.stay.is_none(), "string runs have no stay certificates");

    // unselected positions have no explanation
    assert!(prov.why_selected_word(0).is_none());
    assert!(prov.why_selected_word(2).is_none());
    assert_eq!(prov.selected_positions(), vec![2]);
}

/// The behavior-function evaluation (Theorem 3.9) selects through the
/// reconstructed `Assumed` sets; its certificates must agree with the
/// literal run's witnessing state.
#[test]
fn example_3_4_behavior_route_yields_the_same_witness() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&sigma);
    let w = sigma.word("0110");
    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_via_behavior_with(&w, &mut prov);
    assert_eq!(selected, vec![1]);
    let e = prov.why_selected_word(1).expect("index 1 selected");
    assert_eq!((e.state, e.sym), (1, 1));
}

/// Example 4.4 ranked circuit query: every selected gate's certificate
/// carries a state the run assumed at that node (the cut through the node,
/// Definition 4.3) with the node's own label.
#[test]
fn example_4_4_certificates_come_from_the_cut() {
    let sigma = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = query_automata::core::ranked::query::example_4_4(&sigma);
    let mut names = sigma.clone();
    let t = from_sexpr("(OR (AND 1 0) 1)", &mut names).unwrap();
    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_with(&t, &mut prov).unwrap();
    assert!(!selected.is_empty(), "the circuit evaluates to true");
    for v in &selected {
        let e = prov
            .why_selected(v.index() as u32)
            .expect("selected node has a certificate");
        assert_eq!(
            e.sym,
            t.label(*v).index() as u32,
            "certificate labels match"
        );
        assert!(
            e.visits.iter().any(|visit| visit.state == e.state),
            "witnessing state q{} was assumed at node {} during the run",
            e.state,
            v.index()
        );
    }
    // a node the query did not select has no certificate
    let unselected = t.nodes().find(|v| !selected.contains(v)).unwrap();
    assert!(prov.why_selected(unselected.index() as u32).is_none());
}

/// Figure 5 two-pass evaluation: the verdict certificate is the marked
/// state `q_marked` the bottom-up run reaches at the node.
#[test]
fn fig5_ranked_eval_certificates_name_the_marked_state() {
    let mut sigma = Alphabet::from_names(["s", "t"]);
    let phi = query_automata::mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut sigma)
        .unwrap();
    let d = query_automata::mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
    let t = query_automata::trees::generate::complete(sigma.symbol("s"), 2, 3);
    let mut prov = ProvenanceObserver::new();
    let selected = query_automata::mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut prov);
    assert_eq!(
        selected.len(),
        8,
        "all leaves of the height-3 complete tree"
    );
    for v in &selected {
        let e = prov
            .why_selected(v.index() as u32)
            .expect("selected leaf has a certificate");
        assert_eq!(e.sym, t.label(*v).index() as u32);
        assert!(
            e.visits.iter().any(|visit| visit.state == e.state),
            "the marked verdict state appears as a recorded configuration"
        );
    }
    assert_eq!(selected.len(), prov.selected_positions().len());
}

/// Example 5.14 (`SQAu`): the selected leaf's state was produced by a stay
/// transition, so its certificate must carry the GSQA child-run evidence.
#[test]
fn example_5_14_certificate_carries_the_stay_evidence() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_5_14(&sigma);
    let mut names = sigma.clone();
    let t = from_sexpr("(0 0 1 (1 1) 0 1)", &mut names).unwrap();
    let mut prov = ProvenanceObserver::new();
    let selected = qa.query_with(&t, &mut prov).unwrap();
    assert_eq!(selected.len(), 2);
    for v in &selected {
        let e = prov
            .why_selected(v.index() as u32)
            .expect("selected node has a certificate");
        assert_eq!(e.sym, sigma.symbol("1").index() as u32, "selects 1-leaves");
        let stay = e
            .stay
            .expect("the `one` verdict is assigned by the stay transition");
        assert_eq!(stay.child, v.index() as u32);
        assert_eq!(stay.state, e.state);
        assert_eq!(
            stay.parent,
            t.parent(*v).unwrap().index() as u32,
            "the stay ran at the selected leaf's parent"
        );
    }
}

/// Two machines differing in ONE transition: Example 3.4 vs a variant whose
/// turn at `⊲` enters the even-parity state. `first_divergence` must point
/// at exactly the first configuration after the turn.
#[test]
fn diff_pinpoints_the_changed_transition() {
    use query_automata::twoway::Dir;
    let sigma = Alphabet::from_names(["0", "1"]);
    let original = example_3_4_qa(&sigma);

    // rebuild the machine with the single changed action
    let one = sigma.symbol("1");
    let mut b = TwoDfaBuilder::new(sigma.len());
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.set_initial(s0);
    b.set_final(s1, true);
    b.set_final(s2, true);
    b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
    b.set_action_all_symbols(s0, Dir::Right, s0);
    b.set_action(s0, Tape::RightMarker, Dir::Left, s2); // original: s1
    b.set_action_all_symbols(s1, Dir::Left, s2);
    b.set_action_all_symbols(s2, Dir::Left, s1);
    let mut variant = StringQa::new(b.build().unwrap());
    variant.set_selecting(s1, one, true);

    let w = sigma.word("0110");
    let mut ta = RunTrace::new();
    let mut tb = RunTrace::new();
    original.query_with(&w, &mut ta).unwrap();
    variant.query_with(&w, &mut tb).unwrap();

    let a = parse(&ta.to_json()).unwrap();
    let b = parse(&tb.to_json()).unwrap();
    let d = first_divergence(&a, &b)
        .unwrap()
        .expect("the changed transition must show up");
    // steps 0..=5 walk right identically (⊳,0,1,1,0,⊲); the turn's target
    // differs at step 6.
    assert_eq!(d.index, 6);
    let (ca, cb) = (d.a.unwrap(), d.b.unwrap());
    assert_eq!(ca.pos, cb.pos, "divergence is in the state, not the head");
    assert_eq!(ca.state, s1.index() as u32);
    assert_eq!(cb.state, s2.index() as u32);

    // sanity: a machine diffed against itself reports nothing
    assert_eq!(first_divergence(&a, &a).unwrap(), None);
}
