//! Two-way deterministic finite automata (Definition 3.1).

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;

use crate::tape::Tape;

/// Direction of a 2DFA move.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Move the head one cell to the left.
    Left,
    /// Move the head one cell to the right.
    Right,
}

/// A two-way deterministic finite automaton over endmarked tapes `⊳ w ⊲`.
///
/// Per Definition 3.1, the pairs `(state, cell)` are partitioned into
/// left-moving (`L`), right-moving (`R`) and undefined (the run halts).
/// Structural invariants enforced at [`TwoDfaBuilder::build`] time:
/// no left move from `⊳`, no right move from `⊲`.
///
/// The run starts at the left endmarker in the initial state and halts at the
/// first configuration with no applicable transition; it accepts iff the
/// halting state is final. A repeated `(state, position)` configuration means
/// the machine loops; the run engine detects this exactly via a
/// `|S| · (|w| + 2)` step bound and reports [`Error::FuelExhausted`].
#[derive(Clone, Debug)]
pub struct TwoDfa {
    alphabet_len: usize,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    /// `action[state][cell]`: the move, if defined.
    action: Vec<Vec<Option<(Dir, StateId)>>>,
}

/// Builder for [`TwoDfa`]; validates invariants in [`TwoDfaBuilder::build`].
#[derive(Clone, Debug)]
pub struct TwoDfaBuilder {
    inner: TwoDfa,
}

impl TwoDfaBuilder {
    /// Start a machine over `alphabet_len` input symbols.
    pub fn new(alphabet_len: usize) -> Self {
        TwoDfaBuilder {
            inner: TwoDfa {
                alphabet_len,
                num_states: 0,
                initial: StateId::from_index(0),
                finals: Vec::new(),
                action: Vec::new(),
            },
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.inner.num_states);
        self.inner.num_states += 1;
        self.inner.finals.push(false);
        self.inner
            .action
            .push(vec![None; Tape::table_len(self.inner.alphabet_len)]);
        id
    }

    /// Set the initial state.
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.inner.initial = state;
        self
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) -> &mut Self {
        self.inner.finals[state.index()] = is_final;
        self
    }

    /// Define the move for `(state, cell)`.
    pub fn set_action(&mut self, state: StateId, cell: Tape, dir: Dir, next: StateId) -> &mut Self {
        self.inner.action[state.index()][cell.encode()] = Some((dir, next));
        self
    }

    /// Convenience: same move on every *real* symbol.
    pub fn set_action_all_symbols(&mut self, state: StateId, dir: Dir, next: StateId) -> &mut Self {
        for i in 0..self.inner.alphabet_len {
            self.set_action(state, Tape::Sym(Symbol::from_index(i)), dir, next);
        }
        self
    }

    /// Validate and finish.
    pub fn build(self) -> Result<TwoDfa> {
        let m = self.inner;
        if m.num_states == 0 {
            return Err(Error::ill_formed("2DFA", "no states"));
        }
        for (s, row) in m.action.iter().enumerate() {
            if let Some((Dir::Left, _)) = row[Tape::LeftMarker.encode()] {
                return Err(Error::ill_formed(
                    "2DFA",
                    format!("state q{s} moves left from the left endmarker"),
                ));
            }
            if let Some((Dir::Right, _)) = row[Tape::RightMarker.encode()] {
                return Err(Error::ill_formed(
                    "2DFA",
                    format!("state q{s} moves right from the right endmarker"),
                ));
            }
        }
        Ok(m)
    }
}

/// One configuration of a 2DFA run: a state and a head position on the
/// endmarked tape (`0 = ⊳`, `|w| + 1 = ⊲`).
pub type Config = (StateId, usize);

/// The complete record of a halting 2DFA run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Whether the halting state was final.
    pub accepted: bool,
    /// The halting configuration.
    pub halt: Config,
    /// For each tape position (including endmarkers), the states assumed
    /// there, in first-visit order — `Assumed(w, i)` of the paper.
    pub assumed: Vec<Vec<StateId>>,
    /// Total number of moves made.
    pub steps: u64,
    /// The full configuration sequence (start configuration first).
    pub trace: Vec<Config>,
}

impl TwoDfa {
    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// The move for `(state, cell)`, if defined.
    #[inline]
    pub fn action(&self, state: StateId, cell: Tape) -> Option<(Dir, StateId)> {
        self.action[state.index()][cell.encode()]
    }

    /// Run on `word`, recording the trace and per-position assumed states.
    ///
    /// Errors with [`Error::FuelExhausted`] iff the machine loops on this
    /// input (a deterministic machine that exceeds `|S| · (|w| + 2)` steps
    /// has repeated a configuration).
    pub fn run(&self, word: &[Symbol]) -> Result<RunRecord> {
        self.run_with(word, &mut NoopObserver)
    }

    /// [`TwoDfa::run`] with an [`Observer`]: every transition-table lookup,
    /// move, head reversal and configuration is reported to `obs`. With
    /// [`NoopObserver`] this monomorphizes to exactly `run`.
    ///
    /// `obs.checkpoint()` is polled once per configuration; a failing
    /// checkpoint (a watchdog budget trip) aborts the run with
    /// [`Error::RunAborted`].
    ///
    /// # Examples
    ///
    /// Count the head moves of one run through a [`qa_obs::Metrics`]
    /// registry:
    ///
    /// ```
    /// use qa_base::Symbol;
    /// use qa_obs::{Counter, Metrics};
    /// use qa_twoway::twodfa::{Dir, TwoDfaBuilder};
    /// use qa_twoway::Tape;
    ///
    /// let mut b = TwoDfaBuilder::new(1);
    /// let q = b.add_state();
    /// b.set_initial(q);
    /// b.set_final(q, true);
    /// b.set_action(q, Tape::LeftMarker, Dir::Right, q);
    /// b.set_action_all_symbols(q, Dir::Right, q);
    /// // No action at the right endmarker: the machine halts there in the
    /// // (final) state q.
    /// let machine = b.build()?;
    ///
    /// let metrics = Metrics::new();
    /// let rec = machine.run_with(&[Symbol::from_index(0); 3], &mut metrics.observer())?;
    /// assert!(rec.accepted);
    /// assert_eq!(rec.steps, 4); // over ⊳ and the three symbols
    /// assert_eq!(metrics.get(Counter::Steps), rec.steps);
    /// # Ok::<(), qa_base::Error>(())
    /// ```
    pub fn run_with<O: Observer>(&self, word: &[Symbol], obs: &mut O) -> Result<RunRecord> {
        let tape_len = word.len() + 2;
        let fuel = (self.num_states as u64) * (tape_len as u64) + 1;
        let mut state = self.initial;
        let mut pos = 0usize;
        let mut steps = 0u64;
        let mut last_dir: Option<Dir> = None;
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); tape_len];
        let mut trace: Vec<Config> = Vec::new();
        loop {
            if let Err(a) = obs.checkpoint() {
                obs.count(Counter::BudgetTrips, 1);
                return Err(Error::aborted(a.what, a.limit, a.actual));
            }
            trace.push((state, pos));
            if !assumed[pos].contains(&state) {
                assumed[pos].push(state);
            }
            obs.count(Counter::TableLookups, 1);
            let cell = Tape::at(word, pos);
            obs.state_visit(Machine::TwoDfa, state.index() as u32, cell.encode() as u32);
            match self.action(state, cell) {
                None => {
                    obs.config(state.index() as u32, pos as u32, 0);
                    obs.record(Series::TraceLength, steps);
                    if obs.is_enabled() {
                        for states in &assumed {
                            obs.record(Series::AssumedStates, states.len() as u64);
                        }
                    }
                    return Ok(RunRecord {
                        accepted: self.is_final(state),
                        halt: (state, pos),
                        assumed,
                        steps,
                        trace,
                    });
                }
                Some((dir, next)) => {
                    obs.transition_fired(
                        Machine::TwoDfa,
                        state.index() as u32,
                        cell.encode() as u32,
                        next.index() as u32,
                    );
                    obs.config(
                        state.index() as u32,
                        pos as u32,
                        match dir {
                            Dir::Left => -1,
                            Dir::Right => 1,
                        },
                    );
                    obs.count(Counter::Steps, 1);
                    if last_dir.is_some_and(|d| d != dir) {
                        obs.count(Counter::HeadReversals, 1);
                    }
                    last_dir = Some(dir);
                    steps += 1;
                    if steps > fuel {
                        obs.count(Counter::BudgetTrips, 1);
                        return Err(Error::FuelExhausted { budget: fuel });
                    }
                    pos = match dir {
                        Dir::Left => pos - 1,
                        Dir::Right => pos + 1,
                    };
                    state = next;
                }
            }
        }
    }

    /// Whether the machine accepts `word` (`Err` if it loops).
    pub fn accepts(&self, word: &[Symbol]) -> Result<bool> {
        Ok(self.run(word)?.accepted)
    }

    /// Whether the machine halts on every word of length `<= max_len`
    /// (exhaustive check, exponential in `max_len`; test helper).
    pub fn halts_on_all_words_up_to(&self, max_len: usize) -> bool {
        let mut stack: Vec<Vec<Symbol>> = vec![Vec::new()];
        while let Some(w) = stack.pop() {
            if self.run(&w).is_err() {
                return false;
            }
            if w.len() < max_len {
                for i in 0..self.alphabet_len {
                    let mut w2 = w.clone();
                    w2.push(Symbol::from_index(i));
                    stack.push(w2);
                }
            }
        }
        true
    }

    /// A one-way left-to-right sweep machine from a [`qa_strings::Dfa`]:
    /// walks right over `⊳ w`, halting on `⊲` in the DFA's state after `w`
    /// (final iff the DFA accepts). The DFA must be total.
    pub fn from_dfa_sweep(dfa: &qa_strings::Dfa) -> Result<TwoDfa> {
        if !dfa.is_total() {
            return Err(Error::ill_formed(
                "2DFA sweep",
                "source DFA must be total (call totalize())",
            ));
        }
        let mut b = TwoDfaBuilder::new(dfa.alphabet_len());
        for _ in 0..dfa.num_states() {
            b.add_state();
        }
        for i in 0..dfa.num_states() {
            let s = StateId::from_index(i);
            b.set_final(s, dfa.is_accepting(s));
            b.set_action(s, Tape::LeftMarker, Dir::Right, s);
            for a in 0..dfa.alphabet_len() {
                let sym = Symbol::from_index(a);
                let t = dfa.next(s, sym).expect("total DFA");
                b.set_action(s, Tape::Sym(sym), Dir::Right, t);
            }
            // no action on ⊲: halt there.
        }
        b.set_initial(dfa.initial());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// The Example 3.4 machine: walk right to ⊲, then walk back alternating
    /// s1/s2 (s1 on odd positions from the right).
    pub(crate) fn example_3_4() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, true);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        // halts on ⊳ (no action defined there for s1/s2)
        b.build().unwrap()
    }

    #[test]
    fn example_3_4_run_matches_paper() {
        let m = example_3_4();
        // input 0110: the paper's run visits positions 1..6 then walks back,
        // halting at ⊳ in state s1 (positions here are 0-based: 0..=5).
        let w = vec![sym(0), sym(1), sym(1), sym(0)];
        let rec = m.run(&w).unwrap();
        assert!(rec.accepted);
        assert_eq!(rec.halt, (StateId::from_index(1), 0));
        // The paper's position 3 (its tape is 1-based with ⊳ at 1) is our
        // tape position 2, the first `1` of the input; it is visited in s1.
        assert!(rec.assumed[2].contains(&StateId::from_index(1)));
        assert!(rec.assumed[3].contains(&StateId::from_index(2)));
        // 11 configurations as in the paper's displayed run
        assert_eq!(rec.trace.len(), 11);
    }

    #[test]
    fn builder_rejects_marker_violations() {
        let mut b = TwoDfaBuilder::new(1);
        let q = b.add_state();
        b.set_action(q, Tape::LeftMarker, Dir::Left, q);
        assert!(b.build().is_err());

        let mut b = TwoDfaBuilder::new(1);
        let q = b.add_state();
        b.set_action(q, Tape::RightMarker, Dir::Right, q);
        assert!(b.build().is_err());

        let b = TwoDfaBuilder::new(1);
        assert!(b.build().is_err(), "no states rejected");
    }

    #[test]
    fn loop_is_detected() {
        let mut b = TwoDfaBuilder::new(1);
        let q = b.add_state();
        let r = b.add_state();
        b.set_initial(q);
        b.set_action(q, Tape::LeftMarker, Dir::Right, q);
        b.set_action_all_symbols(q, Dir::Right, q);
        b.set_action(q, Tape::RightMarker, Dir::Left, r);
        b.set_action_all_symbols(r, Dir::Right, q); // ping-pong forever
        b.set_action(r, Tape::LeftMarker, Dir::Right, q);
        let m = b.build().unwrap();
        assert!(matches!(m.run(&[sym(0)]), Err(Error::FuelExhausted { .. })));
        assert!(!m.halts_on_all_words_up_to(2));
    }

    #[test]
    fn sweep_machine_agrees_with_dfa() {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b_ = sigma.intern("b");
        // DFA: odd number of b's
        let mut d = qa_strings::Dfa::new(2);
        let e = d.add_state();
        let o = d.add_state();
        d.set_initial(e);
        d.set_accepting(o, true);
        d.set_transition(e, a, e);
        d.set_transition(o, a, o);
        d.set_transition(e, b_, o);
        d.set_transition(o, b_, e);
        let m = TwoDfa::from_dfa_sweep(&d).unwrap();
        for w in [vec![], vec![b_], vec![a, b_, b_], vec![b_, a, b_, b_]] {
            assert_eq!(m.accepts(&w).unwrap(), d.accepts(&w), "{w:?}");
        }
        let rec = m.run(&[a, b_]).unwrap();
        assert_eq!(rec.halt.1, 3, "halts at the right endmarker");
    }

    #[test]
    fn trace_starts_at_left_marker_in_initial_state() {
        let m = example_3_4();
        let rec = m.run(&[sym(1)]).unwrap();
        assert_eq!(rec.trace[0], (StateId::from_index(0), 0));
    }

    #[test]
    fn empty_word_runs_over_markers_only() {
        let m = example_3_4();
        let rec = m.run(&[]).unwrap();
        // s0 at ⊳, s0 at ⊲, then left in s1 halting at ⊳.
        assert!(rec.accepted);
        assert_eq!(rec.halt.1, 0);
    }
}
