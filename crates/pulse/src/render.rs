//! Rendering and validation for the `/metrics` endpoint.
//!
//! [`metrics_text`] is the single source of truth for both the live
//! endpoint and the post-run `metrics.prom` file — serving it from one
//! function is what makes the ops acceptance check ("a post-run scrape
//! equals the exported file byte-for-byte") hold by construction. It
//! extends [`qa_probe::export::prometheus_text`] with two gauge families
//! the offline exporter cannot know about:
//!
//! - `qa_build_info{version,rustc} 1` — the standard Prometheus idiom for
//!   attaching build metadata to a scrape (a constant-`1` gauge carrying
//!   its payload in labels).
//! - `qa_heap_*` — the [`HeapStats`] tallies. Emitted only when the
//!   binary installed a [`CountingAlloc`](crate::CountingAlloc) (i.e.
//!   [`HeapStats::enabled`]): without one the numbers are meaningless
//!   zeros, and because they are *live* process state they would also
//!   break the byte-identity guarantees of the deterministic exports.
//!
//! [`validate_prometheus`] is a strict-enough checker for the exposition
//! format used by the e2e tests ("a mid-run scrape parses as valid
//! Prometheus") without dragging in a real Prometheus parser.

use qa_obs::Metrics;
use qa_probe::export::prometheus_text;

use crate::heap::HeapStats;

/// Workspace version baked into `qa_build_info`.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");
/// `rustc --version` of the toolchain that built this crate (captured by
/// `build.rs`; `"unknown"` if the compiler could not be queried).
pub const BUILD_RUSTC: &str = env!("QA_RUSTC_VERSION");

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the exposition format defines).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `metrics` in Prometheus text exposition format, extended with
/// the `qa_build_info` gauge and (when heap accounting is live) the
/// current `qa_heap_*` tallies.
///
/// Counters and histograms carry `prefix` (matching the offline
/// `metrics.prom` files); the build-info and heap gauges use the fixed
/// `qa_` namespace so dashboards can join them across differently-prefixed
/// jobs.
pub fn metrics_text(metrics: &Metrics, prefix: &str) -> String {
    let mut out = prometheus_text(metrics, prefix);
    out.push_str(&format!(
        "# TYPE qa_build_info gauge\nqa_build_info{{version=\"{}\",rustc=\"{}\"}} 1\n",
        escape_label(BUILD_VERSION),
        escape_label(BUILD_RUSTC),
    ));
    let heap = HeapStats::snapshot();
    if !heap.enabled() {
        return out;
    }
    for (name, value) in [
        ("qa_heap_live_bytes", heap.live_bytes),
        ("qa_heap_peak_bytes", heap.peak_bytes),
        ("qa_heap_allocated_bytes", heap.allocated_bytes),
        ("qa_heap_allocs", heap.allocs),
        ("qa_heap_frees", heap.frees),
    ] {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    out
}

/// Check that `text` is well-formed Prometheus text exposition format:
/// every line is a `# TYPE`/`# HELP` comment or a `name{labels} value`
/// sample with a valid metric name and a finite numeric value, every
/// `# TYPE` is followed by at least one sample of that family, no family
/// is declared twice (duplicate metric names), and `# HELP`/`# TYPE`
/// blocks are in order (`HELP` before `TYPE`, both before the family's
/// samples). Returns a description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    let mut pending_type: Option<String> = None;
    // HELP comments waiting for their TYPE/sample block.
    let mut pending_help: Option<String> = None;
    // Families whose comment block is finished: re-declaring one is a
    // duplicate-name error (Prometheus drops all but the first).
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if kind != "TYPE" && kind != "HELP" {
                return Err(format!("line {lineno}: unknown comment kind {kind:?}"));
            }
            if !valid_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if kind == "TYPE" {
                if seen.contains(name) {
                    return Err(format!("line {lineno}: duplicate metric name {name:?}"));
                }
                if let Some(prev) = pending_type.take() {
                    return Err(format!("line {lineno}: TYPE for {prev:?} has no samples"));
                }
                match pending_help.take() {
                    Some(h) if h != name => {
                        return Err(format!(
                            "line {lineno}: HELP for {h:?} not followed by its TYPE/samples"
                        ));
                    }
                    _ => {}
                }
                pending_type = Some(name.to_string());
                seen.insert(name.to_string());
            } else {
                // HELP must open a family block: before its TYPE, and not
                // after the family's samples have started.
                if pending_type.is_some() {
                    return Err(format!(
                        "line {lineno}: HELP for {name:?} after its TYPE (out of order)"
                    ));
                }
                if seen.contains(name) {
                    return Err(format!("line {lineno}: duplicate metric name {name:?}"));
                }
                if let Some(h) = pending_help.take() {
                    return Err(format!("line {lineno}: HELP for {h:?} has no samples"));
                }
                pending_help = Some(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: malformed comment"));
        }
        // Sample line: name[{labels}] value
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value"))?;
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {lineno}: unterminated labels"));
                }
                n
            }
            None => name_part,
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let numeric = value.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false)
            || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !numeric {
            return Err(format!("line {lineno}: bad value {value:?}"));
        }
        if let Some(family) = &pending_type {
            // Histogram samples append _bucket/_sum/_count to the family.
            if name == family || name.starts_with(&format!("{family}_")) {
                pending_type = None;
            } else {
                return Err(format!(
                    "line {lineno}: sample {name:?} does not match TYPE {family:?}"
                ));
            }
        } else if let Some(help) = &pending_help {
            // A HELP-only family (no TYPE) is closed by its first sample.
            if name == help || name.starts_with(&format!("{help}_")) {
                seen.insert(pending_help.take().expect("checked above"));
            } else {
                return Err(format!(
                    "line {lineno}: sample {name:?} does not match HELP {help:?}"
                ));
            }
        }
    }
    if let Some(prev) = pending_type {
        return Err(format!("trailing TYPE for {prev:?} has no samples"));
    }
    if let Some(prev) = pending_help {
        return Err(format!("trailing HELP for {prev:?} has no samples"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::{Counter, Observer, Series};

    fn sample_metrics() -> Metrics {
        let m = Metrics::new();
        {
            let mut o = m.observer();
            o.count(Counter::Steps, 42);
            o.record(Series::TraceLength, 7);
        }
        m
    }

    #[test]
    fn rendered_metrics_validate() {
        let m = sample_metrics();
        let text = metrics_text(&m, "qa_test");
        validate_prometheus(&text).expect("well-formed exposition");
        assert!(text.contains("qa_test_steps_total 42"));
    }

    #[test]
    fn build_info_gauge_is_present_with_labels() {
        let text = metrics_text(&sample_metrics(), "qa_test");
        assert!(text.contains("# TYPE qa_build_info gauge"));
        let line = text
            .lines()
            .find(|l| l.starts_with("qa_build_info{"))
            .expect("build info sample");
        assert!(
            line.contains(&format!("version=\"{BUILD_VERSION}\"")),
            "{line}"
        );
        assert!(line.contains("rustc=\""), "{line}");
        assert!(line.ends_with("} 1"), "{line}");
    }

    #[test]
    fn heap_gauges_follow_heap_accounting_state() {
        // This binary installs no CountingAlloc, but the heap unit tests
        // in this same binary drive the shared tallies directly — so the
        // gauges must appear exactly when accounting reads as enabled at
        // render time, and the text must stay well-formed either way.
        let before = HeapStats::snapshot().enabled();
        let text = metrics_text(&sample_metrics(), "qa_test");
        let after = HeapStats::snapshot().enabled();
        if before == after {
            for name in [
                "qa_heap_live_bytes",
                "qa_heap_peak_bytes",
                "qa_heap_allocated_bytes",
                "qa_heap_allocs",
                "qa_heap_frees",
            ] {
                assert_eq!(
                    text.contains(&format!("# TYPE {name} gauge")),
                    after,
                    "{name} presence should track heap accounting"
                );
            }
        }
        validate_prometheus(&text).expect("well-formed exposition");
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("name notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE lonely counter\n").is_err());
        assert!(validate_prometheus("# WAT x y\n").is_err());
        assert!(validate_prometheus("name{unterminated=\"x\" 1\n").is_err());
        assert!(
            validate_prometheus("# TYPE a counter\nb 1\n").is_err(),
            "sample must match preceding TYPE"
        );
    }

    #[test]
    fn validator_rejects_duplicate_metric_names() {
        let dup_type = "# TYPE a counter\na 1\n# TYPE a counter\na 2\n";
        let err = validate_prometheus(dup_type).unwrap_err();
        assert!(err.contains("duplicate metric name"), "{err}");

        let dup_after_other = "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# HELP a again\na 2\n";
        let err = validate_prometheus(dup_after_other).unwrap_err();
        assert!(err.contains("duplicate metric name \"a\""), "{err}");
    }

    #[test]
    fn validator_rejects_out_of_order_help_and_type() {
        // HELP must come before TYPE, never between TYPE and samples.
        let help_after_type = "# TYPE a counter\n# HELP a docs\na 1\n";
        let err = validate_prometheus(help_after_type).unwrap_err();
        assert!(err.contains("after its TYPE"), "{err}");

        // HELP for one family followed by another family's TYPE.
        let interleaved = "# HELP a docs\n# TYPE b counter\nb 1\n";
        let err = validate_prometheus(interleaved).unwrap_err();
        assert!(err.contains("not followed by its TYPE"), "{err}");

        // HELP that never gets samples.
        assert!(validate_prometheus("# HELP a docs\n").is_err());
        assert!(validate_prometheus("# HELP a docs\n# HELP b docs\nb 1\n").is_err());
    }

    #[test]
    fn validator_accepts_help_type_samples_in_order() {
        let text = "# HELP a docs\n# TYPE a counter\na 1\n# HELP h hist\n# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        validate_prometheus(text).expect("ordered HELP/TYPE/samples");
        // HELP-only families (no TYPE) are legal exposition too.
        validate_prometheus("# HELP a docs\na 1\n").expect("HELP then samples");
    }

    #[test]
    fn validator_accepts_histogram_families() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 9\n\
                    h_count 4\n";
        validate_prometheus(text).expect("histogram family");
    }

    #[test]
    fn label_escaping_handles_quotes_and_backslashes() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }
}
