//! A std-only HTTP/1.1 *client*, the scraping counterpart of
//! [`PulseServer`](crate::PulseServer).
//!
//! The mesh coordinator polls and scrapes many worker pulse servers over
//! loopback; this client is exactly big enough for that job — blocking
//! `GET` with explicit connect/read deadlines, `Connection: close`, body
//! read to EOF — and keeps the workspace's zero-dependency discipline
//! (`std::net` only, no TLS, no keep-alive, no chunked encoding: the pulse
//! server sends none of that).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connect/read deadlines for one request. Scrapes run on the coordinator's
/// poll loop, so a hung worker must cost bounded time, not a stuck fleet.
#[derive(Clone, Copy, Debug)]
pub struct HttpTimeouts {
    /// TCP connect deadline.
    pub connect: Duration,
    /// Socket read/write deadline (per syscall, not per body).
    pub io: Duration,
}

impl Default for HttpTimeouts {
    fn default() -> Self {
        HttpTimeouts {
            connect: Duration::from_secs(2),
            io: Duration::from_secs(5),
        }
    }
}

/// Status line and body of one response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Numeric status code (200, 404, 503, …).
    pub status: u16,
    /// Response body (headers stripped).
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Blocking `GET <path>` against `addr` (e.g. `"127.0.0.1:4471"`), with
/// the given timeouts. Returns the parsed status and body; any socket or
/// parse problem is an `io::Error`, so callers treat "worker unreachable"
/// and "worker sent garbage" the same way: one failed poll.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeouts: HttpTimeouts,
) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
    stream.set_read_timeout(Some(timeouts.io))?;
    stream.set_write_timeout(Some(timeouts.io))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8(response).map_err(|_| bad("response is not UTF-8"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("response has no numeric status"))?;
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PulseServer, PulseState};
    use qa_obs::Metrics;
    use std::sync::Arc;

    #[test]
    fn client_scrapes_a_pulse_server() {
        let state = PulseState::new(Arc::new(Metrics::new()), "qa_test");
        state.set_ready();
        let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.local_addr();
        let t = HttpTimeouts::default();

        let health = http_get(addr, "/healthz", t).expect("healthz");
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let metrics = http_get(addr, "/metrics", t).expect("metrics");
        assert!(metrics.is_ok());
        assert!(
            metrics.body.contains("qa_test_steps_total 0"),
            "{}",
            metrics.body
        );

        let missing = http_get(addr, "/nope", t).expect("404 still parses");
        assert_eq!(missing.status, 404);
        assert!(!missing.is_ok());

        server.shutdown();
    }

    #[test]
    fn connect_timeout_fails_fast_on_a_dead_port() {
        // Bind-then-drop guarantees the port is closed at connect time.
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let err = http_get(
            dead,
            "/healthz",
            HttpTimeouts {
                connect: Duration::from_millis(500),
                io: Duration::from_millis(500),
            },
        );
        assert!(err.is_err(), "closed port must not answer");
    }
}
