//! E3 (Figure 6 / Theorem 5.17): unranked unary-query evaluation — the
//! two-pass algorithm over the FCNS encoding is linear, naive quadratic;
//! the hand-built Example 5.14 SQAu run sits in between (linear, bigger
//! constant from the cut engine).

use qa_bench::Harness;

fn main() {
    let mut h = Harness::new("e3_fig6_unranked_eval");
    let sigma = qa_bench::binary_alphabet();
    let mut a = sigma.clone();
    let phi = qa_mso::parse(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a,
    )
    .unwrap();
    let d = qa_mso::unranked::compile_unary(&phi, "v", 2).unwrap();
    let sqa = qa_core::unranked::query::example_5_14(&sigma);

    for n in [50usize, 200, 800] {
        let t = qa_bench::random_binary_labeled(n, 7 + n as u64);
        h.bench(&format!("fig6_two_pass/{n}"), || {
            qa_mso::query_eval::eval_unary_unranked(&d, &t, 2).len()
        });
        h.bench(&format!("sqau_run/{n}"), || sqa.query(&t).unwrap().len());
        if n <= 200 {
            h.bench(&format!("naive_per_node/{n}"), || {
                qa_mso::query_eval::eval_unary_unranked_naive(&d, &t, 2).len()
            });
        }
    }
}
