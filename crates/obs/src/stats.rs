//! Shared order statistics: the workspace's one percentile rule.
//!
//! The fleet summary, the `qa-trace` analyzers and the sentinel window
//! queries all report percentiles; before this module each carried its own
//! copy of the nearest-rank rule. They now share this implementation —
//! [`percentile_sorted`] for exact sample vectors, [`quantile_from_buckets`]
//! for the power-of-two histogram counts where only bucket totals survive
//! aggregation.

/// Nearest-rank percentile over a sorted slice: the sample at rank
/// `round((len - 1) · p)`, clamped into range. Empty input yields 0, so
/// report renderers never special-case empty windows.
///
/// `p` is a fraction in `[0, 1]` (`0.5` = median); out-of-range values
/// clamp to the extremes.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The largest value mapped to power-of-two bucket `i` — the `le` boundary
/// the Prometheus renderer prints: 0 for bucket 0, `2^i - 1` otherwise.
pub fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

/// Index of the bucket holding the nearest-rank quantile sample, given
/// per-bucket sample counts in ascending boundary order (any bucket
/// ladder, not just power-of-two). `None` when the counts are all zero.
pub fn quantile_bucket(buckets: &[u64], p: f64) -> Option<usize> {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return None;
    }
    let rank = ((count as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as u64;
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if n != 0 && seen > rank {
            return Some(i);
        }
    }
    // Unreachable when the counts sum to `count`, but stay total anyway.
    buckets.iter().rposition(|&n| n != 0)
}

/// Nearest-rank quantile over per-bucket sample counts (the de-cumulated
/// `buckets` of a [`HistogramSnapshot`]): the power-of-two `le` upper
/// bound of the bucket holding the rank-`round((count - 1) · p)` sample.
/// `None` when the window holds no samples.
///
/// Because bucket assignment is monotone in the sample value, this is
/// exactly [`bucket_le`]`(`[`bucket_index`]`(percentile_sorted(samples,
/// p)))` — the property test below pins that equivalence.
///
/// [`HistogramSnapshot`]: crate::HistogramSnapshot
/// [`bucket_index`]: crate::metrics::bucket_index
pub fn quantile_from_buckets(buckets: &[u64], p: f64) -> Option<u64> {
    quantile_bucket(buckets, p).map(bucket_le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_index, HISTOGRAM_BUCKETS};

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        assert_eq!(percentile_sorted(&[42], 0.0), 42);
        assert_eq!(percentile_sorted(&[42], 1.0), 42);
        let v = [1u64, 2, 3, 4, 5];
        assert_eq!(percentile_sorted(&v, 0.0), 1);
        assert_eq!(percentile_sorted(&v, 0.5), 3);
        assert_eq!(percentile_sorted(&v, 1.0), 5);
        // p beyond 1 clamps to the max instead of indexing out of range.
        assert_eq!(percentile_sorted(&v, 2.0), 5);
    }

    #[test]
    fn bucket_le_inverts_bucket_index() {
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_le(i)), i, "bucket {i}");
            // The next value up belongs to the next bucket.
            assert_eq!(bucket_index(bucket_le(i) + 1), i + 1);
        }
    }

    #[test]
    fn bucket_quantile_of_empty_window_is_none() {
        assert_eq!(quantile_from_buckets(&[0; HISTOGRAM_BUCKETS], 0.5), None);
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
    }

    /// Property: the bucketed quantile equals the bucket boundary of the
    /// exact nearest-rank percentile, for random sample sets and ranks.
    #[test]
    fn bucket_quantile_matches_sorted_slice_reference() {
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..200 {
            let n = (next() % 64 + 1) as usize;
            let mut samples: Vec<u64> = (0..n).map(|_| next() % 100_000).collect();
            samples.sort_unstable();
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for &s in &samples {
                buckets[bucket_index(s)] += 1;
            }
            for p in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let exact = percentile_sorted(&samples, p);
                assert_eq!(
                    quantile_from_buckets(&buckets, p),
                    Some(bucket_le(bucket_index(exact))),
                    "case {case}, p={p}, samples={samples:?}"
                );
            }
        }
    }

    #[test]
    fn bucket_quantile_is_monotone_in_p() {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for v in [0u64, 1, 3, 3, 9, 200, 40_000] {
            buckets[bucket_index(v)] += 1;
        }
        let mut last = 0;
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = quantile_from_buckets(&buckets, p).unwrap();
            assert!(q >= last, "quantile must not decrease with p");
            last = q;
        }
    }
}
