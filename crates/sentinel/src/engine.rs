//! The alert engine: rule evaluation and the pending→firing→resolved
//! state machine.
//!
//! [`AlertEngine::eval`] is a pure function of `(rules, store, tick)` —
//! no wall clock, no randomness — so the same sample stream produces the
//! same transition log byte for byte, which is what the fleet's
//! determinism gate compares across `--jobs {1,4}` and reruns.

use qa_obs::json;

use crate::rules::{AlertRule, RuleKind};
use crate::store::{SeriesKey, SeriesStore};

/// Lifecycle state of one alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Condition not holding.
    Inactive,
    /// Condition holding, waiting out the `for` holdoff (since this tick).
    Pending(u64),
    /// Condition held for the full holdoff (firing since this tick).
    Firing(u64),
}

impl AlertState {
    /// Lower-case state name used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending(_) => "pending",
            AlertState::Firing(_) => "firing",
        }
    }
}

/// One state-machine transition, as recorded into the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Logical tick the transition happened at.
    pub tick: u64,
    /// Index of the rule in the engine's rule list.
    pub rule: usize,
    /// Rule name (denormalized for rendering).
    pub name: String,
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
}

impl Transition {
    /// One log line: `tick=7 alert=burn pending -> firing`.
    pub fn render(&self) -> String {
        format!(
            "tick={} alert={} {} -> {}",
            self.tick, self.name, self.from, self.to
        )
    }
}

/// Rule evaluation plus alert lifecycle over a [`SeriesStore`].
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<AlertState>,
    log: Vec<Transition>,
    last_tick: Option<u64>,
}

impl AlertEngine {
    /// Engine over `rules`, all alerts inactive.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let states = vec![AlertState::Inactive; rules.len()];
        AlertEngine {
            rules,
            states,
            log: Vec::new(),
            last_tick: None,
        }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Current state of rule `i`.
    pub fn state(&self, i: usize) -> AlertState {
        self.states[i]
    }

    /// Every recorded transition, in order.
    pub fn log(&self) -> &[Transition] {
        &self.log
    }

    /// Names of the alerts currently firing, in rule order.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| matches!(s, AlertState::Firing(_)))
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// The whole transition log as text, one line per transition — the
    /// `alerts.log` artifact the determinism gate diffs.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for t in &self.log {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Evaluate every rule at `tick` against `store`, advancing the state
    /// machines. Returns the transitions taken this tick (also appended to
    /// the engine's log). Ticks must not decrease across calls.
    pub fn eval(&mut self, store: &SeriesStore, tick: u64) -> Vec<Transition> {
        if let Some(last) = self.last_tick {
            assert!(tick >= last, "alert evaluation ticks must not decrease");
        }
        self.last_tick = Some(tick);
        let mut taken = Vec::new();
        for i in 0..self.rules.len() {
            let holds = condition_holds(&self.rules[i], store, tick);
            let for_ticks = self.rules[i].for_ticks;
            let mut transition = |engine: &mut Self, to: AlertState| {
                let t = Transition {
                    tick,
                    rule: i,
                    name: engine.rules[i].name.clone(),
                    from: engine.states[i].name(),
                    to: to.name(),
                };
                engine.states[i] = to;
                engine.log.push(t.clone());
                taken.push(t);
            };
            match (self.states[i], holds) {
                (AlertState::Inactive, true) => {
                    transition(self, AlertState::Pending(tick));
                    // A zero holdoff fires in the same tick.
                    if for_ticks == 0 {
                        transition(self, AlertState::Firing(tick));
                    }
                }
                (AlertState::Pending(since), true) => {
                    if tick - since >= for_ticks {
                        transition(self, AlertState::Firing(tick));
                    }
                }
                (AlertState::Pending(_), false) => {
                    // Condition broke before the holdoff elapsed: the alert
                    // never fired, so it goes back to inactive (recorded,
                    // but not as a resolve).
                    transition(self, AlertState::Inactive);
                }
                (AlertState::Firing(_), false) => {
                    transition(self, AlertState::Inactive);
                }
                (AlertState::Inactive, false) | (AlertState::Firing(_), true) => {}
            }
        }
        taken
    }

    /// JSON dump of every alert's current state — the `/alerts` endpoint
    /// body: `{"tick":T,"firing":N,"alerts":[{"name","state","since",
    /// "rule"},…]}`.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_u64("tick", self.last_tick.unwrap_or(0));
            w.field_u64("firing", self.firing().len() as u64);
            let alerts = json::array(self.rules.iter().zip(&self.states).map(|(r, s)| {
                json::object(|aw| {
                    aw.field_str("name", &r.name);
                    aw.field_str("state", s.name());
                    match s {
                        AlertState::Pending(since) | AlertState::Firing(since) => {
                            aw.field_u64("since", *since);
                        }
                        AlertState::Inactive => {}
                    }
                    aw.field_str("rule", &r.render());
                })
            }));
            w.field_raw("alerts", &alerts);
            let transitions = json::array(self.log.iter().map(|t| {
                json::object(|tw| {
                    tw.field_u64("tick", t.tick);
                    tw.field_str("alert", &t.name);
                    tw.field_str("from", t.from);
                    tw.field_str("to", t.to);
                })
            }));
            w.field_raw("transitions", &transitions);
        })
    }
}

/// Whether `rule`'s condition holds at `tick` against `store`.
///
/// Missing data is conservative: threshold and burn-rate conditions are
/// false until their metrics have samples (only `absent` reacts to missing
/// series — that is its job).
fn condition_holds(rule: &AlertRule, store: &SeriesStore, tick: u64) -> bool {
    match &rule.kind {
        RuleKind::Threshold {
            metric,
            op,
            value,
            window,
        } => {
            let key = SeriesKey::new(metric, []);
            let observed = match window {
                Some(w) => store.delta(&key, *w, tick),
                None => store.latest(&key).map(|(_, v)| v),
            };
            match observed {
                Some(v) => op.holds(v, *value),
                None => false,
            }
        }
        RuleKind::Absent { metric } => {
            let key = SeriesKey::new(metric, []);
            match store.latest(&key) {
                Some((t, _)) => t < tick,
                None => true,
            }
        }
        RuleKind::Burnrate {
            num,
            den,
            objective,
            fast,
            slow,
            factor,
        } => {
            let burn = |window: u64| -> Option<f64> {
                let nk = SeriesKey::new(num, []);
                let dk = SeriesKey::new(den, []);
                let dn = store.delta(&nk, window, tick)?;
                let dd = store.delta(&dk, window, tick)?;
                if dd <= 0.0 {
                    // No traffic in the window: no budget is being burned.
                    return Some(0.0);
                }
                Some((dn / dd) / objective)
            };
            match (burn(*fast), burn(*slow)) {
                (Some(f), Some(s)) => f > *factor && s > *factor,
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::parse_rules;

    fn feed(store: &mut SeriesStore, name: &str, tick: u64, value: f64) {
        assert!(store.append(SeriesKey::new(name, []), tick, value));
    }

    #[test]
    fn threshold_lifecycle_with_holdoff() {
        let rules = parse_rules("alert hot threshold m > 10 for 2\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);

        feed(&mut store, "m", 1, 5.0);
        assert!(engine.eval(&store, 1).is_empty(), "below threshold");

        feed(&mut store, "m", 2, 11.0);
        let t = engine.eval(&store, 2);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), ("inactive", "pending"));
        assert_eq!(engine.state(0), AlertState::Pending(2));

        feed(&mut store, "m", 3, 12.0);
        assert!(engine.eval(&store, 3).is_empty(), "holdoff not elapsed");

        feed(&mut store, "m", 4, 13.0);
        let t = engine.eval(&store, 4);
        assert_eq!((t[0].from, t[0].to), ("pending", "firing"));
        assert_eq!(engine.firing(), vec!["hot"]);

        feed(&mut store, "m", 5, 1.0);
        let t = engine.eval(&store, 5);
        assert_eq!((t[0].from, t[0].to), ("firing", "inactive"));
        assert!(engine.firing().is_empty());

        assert_eq!(
            engine.render_log(),
            "tick=2 alert=hot inactive -> pending\n\
             tick=4 alert=hot pending -> firing\n\
             tick=5 alert=hot firing -> inactive\n"
        );
    }

    #[test]
    fn pending_cancels_without_firing() {
        let rules = parse_rules("alert hot threshold m > 10 for 5\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        feed(&mut store, "m", 1, 11.0);
        engine.eval(&store, 1);
        feed(&mut store, "m", 2, 2.0);
        let t = engine.eval(&store, 2);
        assert_eq!((t[0].from, t[0].to), ("pending", "inactive"));
        assert!(engine.firing().is_empty());
    }

    #[test]
    fn zero_holdoff_fires_immediately() {
        let rules = parse_rules("alert hot threshold m > 10 for 0\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        feed(&mut store, "m", 1, 11.0);
        let t = engine.eval(&store, 1);
        assert_eq!(t.len(), 2, "pending and firing in one tick");
        assert_eq!((t[1].from, t[1].to), ("pending", "firing"));
    }

    #[test]
    fn windowed_threshold_uses_increase_not_level() {
        let rules = parse_rules("alert spike threshold c > 5 window 2 for 0\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        // A counter reaching a high level by growing slowly never alerts.
        for t in 1..=4 {
            feed(&mut store, "c", t, t as f64);
            assert!(engine.eval(&store, t).is_empty(), "tick {t}");
        }
        // A burst of +10 in one tick trips the windowed increase.
        feed(&mut store, "c", 5, 14.0);
        assert_eq!(engine.eval(&store, 5).len(), 2);
    }

    #[test]
    fn absence_fires_on_stale_series_and_resolves_on_return() {
        let rules = parse_rules("alert gone absent m for 2\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        // Never scraped: pending immediately.
        let t = engine.eval(&store, 1);
        assert_eq!((t[0].from, t[0].to), ("inactive", "pending"));
        engine.eval(&store, 2);
        let t = engine.eval(&store, 3);
        assert_eq!((t[0].from, t[0].to), ("pending", "firing"));
        // The metric comes back: resolves.
        feed(&mut store, "m", 4, 1.0);
        let t = engine.eval(&store, 4);
        assert_eq!((t[0].from, t[0].to), ("firing", "inactive"));
        // Goes stale again: the cycle restarts.
        let t = engine.eval(&store, 5);
        assert_eq!((t[0].from, t[0].to), ("inactive", "pending"));
    }

    #[test]
    fn burnrate_needs_both_windows_over_factor() {
        let rules =
            parse_rules("alert burn burnrate err / total objective 0.1 fast 2 slow 6 for 0\n")
                .unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(64);
        // Ticks 1-6: clean traffic, 10 jobs per tick, no errors.
        for t in 1..=6u64 {
            feed(&mut store, "total", t, (t * 10) as f64);
            feed(&mut store, "err", t, 0.0);
            assert!(engine.eval(&store, t).is_empty(), "clean tick {t}");
        }
        // Ticks 7-8: half the jobs error. Fast window burns hot right
        // away; the slow window dilutes tick 7 below the factor and
        // crosses it at tick 8.
        feed(&mut store, "total", 7, 80.0);
        feed(&mut store, "err", 7, 5.0);
        assert!(
            engine.eval(&store, 7).is_empty(),
            "slow window still under factor"
        );
        feed(&mut store, "total", 8, 90.0);
        feed(&mut store, "err", 8, 10.0);
        let t = engine.eval(&store, 8);
        assert_eq!(t.len(), 2, "both windows over factor: fires");
        // Recovery: errors stop, fast window clears first.
        for t in 9..=11u64 {
            feed(&mut store, "total", t, (90 + (t - 8) * 10) as f64);
            feed(&mut store, "err", t, 10.0);
        }
        let taken = engine.eval(&store, 11);
        assert_eq!((taken[0].from, taken[0].to), ("firing", "inactive"));
    }

    #[test]
    fn burnrate_is_zero_without_traffic() {
        let rules =
            parse_rules("alert burn burnrate err / total objective 0.1 fast 1 slow 1 for 0\n")
                .unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        feed(&mut store, "total", 1, 0.0);
        feed(&mut store, "err", 1, 0.0);
        assert!(engine.eval(&store, 1).is_empty());
    }

    #[test]
    fn alerts_json_shape() {
        let rules = parse_rules("alert hot threshold m > 10 for 1\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut store = SeriesStore::new(16);
        feed(&mut store, "m", 1, 99.0);
        engine.eval(&store, 1);
        let v = json::parse(&engine.to_json()).unwrap();
        assert_eq!(v.get("tick").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("firing").and_then(|x| x.as_u64()), Some(0));
        let alerts = v.get("alerts").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(
            alerts[0].get("state").and_then(|x| x.as_str()),
            Some("pending")
        );
        assert_eq!(alerts[0].get("since").and_then(|x| x.as_u64()), Some(1));
        let transitions = v.get("transitions").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(transitions.len(), 1);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let rules_text = "alert burn burnrate err / total objective 0.05 fast 2 slow 4 for 1\n\
                          alert gone absent other for 2\n";
        let run = || {
            let mut engine = AlertEngine::new(parse_rules(rules_text).unwrap());
            let mut store = SeriesStore::new(32);
            for t in 1..=20u64 {
                feed(&mut store, "total", t, (t * 7) as f64);
                feed(
                    &mut store,
                    "err",
                    t,
                    if t > 10 { (t - 10) as f64 } else { 0.0 },
                );
                engine.eval(&store, t);
            }
            engine.render_log()
        };
        assert_eq!(run(), run(), "same inputs, byte-identical log");
        assert!(!run().is_empty());
    }
}
