//! # qa-base
//!
//! Shared substrate for the `query-automata` workspace: interned symbols,
//! alphabets, typed index vectors and the common error type.
//!
//! Every automaton in the workspace (string automata, two-way automata, tree
//! automata, query automata) ranges over a finite [`Alphabet`] of interned
//! [`Symbol`]s. Interning keeps the hot paths integer-indexed: labels on tree
//! nodes, letters on string positions and transition-table keys are all plain
//! `u32` newtypes.

#![deny(missing_docs)]

pub mod alphabet;
pub mod error;
pub mod idvec;
pub mod rng;
pub mod symbol;

pub use alphabet::Alphabet;
pub use error::{Error, Result};
pub use idvec::IdVec;
pub use symbol::Symbol;
