//! # qa-core
//!
//! The primary contribution of *Query Automata* (Neven & Schwentick,
//! PODS 1999): query automata over ranked and unranked trees.
//!
//! ## Ranked trees (Section 4)
//!
//! - [`ranked::Dbta`] / [`ranked::Nbta`]: deterministic and nondeterministic
//!   bottom-up ranked tree automata (Definition 2.6) with boolean
//!   operations, determinization and emptiness.
//! - [`ranked::TwoWayRanked`]: two-way deterministic ranked tree automata
//!   (Definition 4.1, after Moriya) with the faithful *cut* configuration
//!   semantics, up/down/leaf/root transitions and confluent runs.
//! - [`ranked::RankedQa`]: ranked query automata (Definition 4.3) — a
//!   two-way automaton plus a selection function; Examples 4.2/4.4 (Boolean
//!   circuits) ship as constructors.
//!
//! ## Unranked trees (Section 5)
//!
//! - [`unranked::Nbtau`] / [`unranked::Dbtau`]: bottom-up unranked tree
//!   automata whose transitions `δ(q, a)` are regular string languages over
//!   states (Definition 5.1), with the PTIME emptiness check of Lemma 5.2.
//! - [`unranked::TwoWayUnranked`]: two-way deterministic unranked tree
//!   automata (Definition 5.7) with slender (`x y* z`) down-transition
//!   languages and regular up-transition languages.
//! - [`unranked::StayRule`] / [`unranked::StrongQa`]: stay transitions
//!   computed by generalized string query automata, and strong query
//!   automata (Definitions 5.11–5.13); plain [`unranked::UnrankedQa`]
//!   remains available to exhibit the Proposition 5.10 weakness.

#![deny(missing_docs)]

pub mod ranked;
pub mod unranked;

pub use qa_strings::StateId;
pub use qa_trees::{NodeId, Tree};
