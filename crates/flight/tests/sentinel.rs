//! End-to-end tests of `qa-fleet --slo`: the deterministic alert replay
//! (exit code, alerts.log, postmortem naming), byte-identity of the alert
//! artifacts across `--jobs` settings and mesh topologies, and the live
//! `--scrape-every-ms` loop behind `/series` and `/alerts`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn write_rules(name: &str, rules: &str) -> String {
    let path = tmp(name);
    std::fs::write(&path, rules).expect("write rules file");
    path
}

fn read(dir: &str, name: &str) -> String {
    std::fs::read_to_string(PathBuf::from(dir).join(name))
        .unwrap_or_else(|e| panic!("{dir}/{name}: {e}"))
}

/// A rule every real fleet trips immediately: total steps exceed 10.
const HOT_RULES: &str = "alert steps-high threshold qa_fleet_steps_total > 10 for 0\n";
/// A rule no test-sized fleet can trip.
const COLD_RULES: &str = "alert steps-high threshold qa_fleet_steps_total > 1000000000000 for 0\n";
/// The SLO drill: any budget trip burns error budget at 1000x objective.
const BURN_RULES: &str = "alert error-budget-burn burnrate \
    qa_fleet_budget_trips_total / qa_fleet_jobs_total \
    objective 0.001 fast 2 slow 4 for 1\n";

#[test]
fn firing_alert_fails_a_clean_fleet_and_is_named_in_the_postmortem() {
    // Every run succeeds, but the SLO verdict still fails the fleet: the
    // alert path is an independent exit-1 source, not a failure echo.
    let dir = tmp("slo-hot");
    let rules = write_rules("slo-hot.rules", HOT_RULES);
    let out = qa_fleet(&[
        "--queries",
        "2",
        "--docs",
        "2",
        "--size",
        "64",
        "--out-dir",
        &dir,
        "--slo",
        &rules,
    ]);
    assert_eq!(out.status.code(), Some(1), "firing alert must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("slo: 1 alert(s) firing"), "{stderr}");
    assert!(stderr.contains("steps-high"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 failed"), "{stdout}");

    let log = read(&dir, "alerts.log");
    assert!(log.contains("steps-high"), "{log}");
    assert!(log.contains("-> firing"), "{log}");
    let post = read(&dir, "postmortem.txt");
    assert!(
        post.contains("=== slo alerts firing at batch end ==="),
        "{post}"
    );
    assert!(
        post.contains("alert steps-high threshold qa_fleet_steps_total > 10"),
        "{post}"
    );
    // The replay's transition count lands in the deterministic registry.
    let prom = read(&dir, "metrics.prom");
    assert!(
        prom.contains("qa_fleet_alert_transitions_total 2"),
        "{prom}"
    );
}

#[test]
fn quiet_rules_leave_a_clean_exit_and_an_empty_log() {
    let dir = tmp("slo-cold");
    let rules = write_rules("slo-cold.rules", COLD_RULES);
    let out = qa_fleet(&[
        "--queries",
        "2",
        "--docs",
        "2",
        "--size",
        "64",
        "--out-dir",
        &dir,
        "--slo",
        &rules,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = read(&dir, "alerts.log");
    assert!(!log.contains("firing"), "{log}");
    assert!(
        !PathBuf::from(&dir).join("postmortem.txt").exists(),
        "clean run must not leave a post-mortem"
    );
    let prom = read(&dir, "metrics.prom");
    assert!(
        prom.contains("qa_fleet_alert_transitions_total 0"),
        "{prom}"
    );
}

#[test]
fn bad_rules_files_are_usage_errors() {
    let dir = tmp("slo-bad");
    let rules = write_rules("slo-bad.rules", "alert broken threshold\n");
    let out = qa_fleet(&["--smoke", "--out-dir", &dir, "--slo", &rules]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--slo"), "{stderr}");
    assert!(stderr.contains("line 1"), "{stderr}");

    let out = qa_fleet(&["--smoke", "--out-dir", &dir, "--slo", "/nonexistent.rules"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn alert_log_is_byte_identical_across_jobs_and_reruns() {
    // The burn-rate drill: --max-steps trips every budget, so the burn
    // alert fires during the replay. The transition log depends only on
    // (seed, rules), never on thread count or wall clock.
    let rules = write_rules("slo-burn.rules", BURN_RULES);
    let run = |dir: &str, jobs: &str| {
        let out = qa_fleet(&[
            "--queries",
            "1",
            "--docs",
            "8",
            "--size",
            "64",
            "--seed",
            "9",
            "--max-steps",
            "20",
            "--jobs",
            jobs,
            "--out-dir",
            dir,
            "--slo",
            &rules,
        ]);
        assert_eq!(out.status.code(), Some(1));
        out
    };
    let (a, b, c) = (tmp("slo-det-a"), tmp("slo-det-b"), tmp("slo-det-c"));
    run(&a, "1");
    run(&b, "4");
    run(&c, "4"); // rerun: same bytes again
    let log = read(&a, "alerts.log");
    assert!(log.contains("error-budget-burn"), "{log}");
    assert!(log.contains("-> firing"), "{log}");
    assert_eq!(log, read(&b, "alerts.log"));
    assert_eq!(log, read(&c, "alerts.log"));
    let post = read(&a, "postmortem.txt");
    assert!(post.contains("error-budget-burn"), "{post}");
}

#[test]
fn mesh_replay_of_federated_events_matches_the_in_process_log() {
    // The coordinator replays the federated events.jsonl through the same
    // Replay, so a sharded fleet writes the same alerts.log bytes as an
    // unsharded one over the same corpus.
    let rules = write_rules("slo-mesh.rules", BURN_RULES);
    let flat = tmp("slo-mesh-flat");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "6",
        "--size",
        "64",
        "--seed",
        "5",
        "--max-steps",
        "20",
        "--out-dir",
        &flat,
        "--slo",
        &rules,
    ]);
    assert_eq!(out.status.code(), Some(1));

    let meshed = tmp("slo-mesh-2");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "6",
        "--size",
        "64",
        "--seed",
        "5",
        "--max-steps",
        "20",
        "--mesh",
        "2",
        "--out-dir",
        &meshed,
        "--slo",
        &rules,
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "degraded workers + firing alert"
    );
    assert_eq!(read(&flat, "alerts.log"), read(&meshed, "alerts.log"));
    let post = read(&meshed, "postmortem.txt");
    assert!(post.contains("error-budget-burn"), "{post}");
}

/// Minimal HTTP/1.1 GET against the fleet's pulse server.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to pulse server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_ascii_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn scrape_loop_feeds_live_series_and_alerts_endpoints() {
    // A paced fleet with a fast scrape loop: mid-run, /series serves the
    // accumulating rings and /alerts the engine state. Cold rules keep the
    // exit clean — the live loop never decides the exit code.
    let dir = tmp("slo-serve");
    let rules = write_rules("slo-serve.rules", COLD_RULES);
    let mut child = Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args([
            "--smoke",
            "--out-dir",
            &dir,
            "--serve",
            "127.0.0.1:0",
            "--pace-ms",
            "30",
            "--linger-ms",
            "30000",
            "--slo",
            &rules,
            "--scrape-every-ms",
            "5",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qa-fleet --serve");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child printed the serving line")
            .expect("read child stdout");
        if let Some(a) = line.strip_prefix("pulse: serving on ") {
            break a.to_string();
        }
    };

    // The scrape loop ticks every 5 ms; well before the paced batch ends,
    // the steps ring must hold samples and the alert engine must answer.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (status, body) = http_get(&addr, "/series?name=qa_fleet_steps_total&n=4");
        assert_eq!(status, 200);
        if body.contains("qa_fleet_steps_total") && body.contains("\"samples\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no series showed up in /series: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, alerts) = http_get(&addr, "/alerts");
    assert_eq!(status, 200);
    assert!(alerts.contains("steps-high"), "{alerts}");
    assert!(!alerts.contains("\"state\":\"firing\""), "{alerts}");

    for line in lines.by_ref() {
        if line.expect("read child stdout") == "pulse: run complete" {
            break;
        }
    }
    let (status, _) = http_get(&addr, "/quit");
    assert_eq!(status, 200);
    let out = child.wait().expect("child exits");
    assert!(out.success(), "cold rules keep the fleet green");
}
