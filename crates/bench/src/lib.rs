//! Shared workload generators and the timing harness for the benches.
//!
//! One bench target per experiment id (see DESIGN.md §5 and
//! EXPERIMENTS.md): the paper has no measured tables, so each bench
//! regenerates the *shape* of one of its algorithmic/complexity claims.
//!
//! The harness is hand-rolled (the sandbox has no crates.io access, so no
//! criterion): each measurement auto-calibrates an iteration batch, takes
//! the median over several samples, and prints one `group/name` line.

use std::time::{Duration, Instant};

use qa_base::rng::{Rng, StdRng};
use qa_base::{Alphabet, Symbol};
use qa_trees::Tree;

pub use std::hint::black_box;

/// Target wall-clock per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Samples per benchmark (median reported).
const SAMPLES: usize = 5;

/// Minimal bench harness: median-of-samples nanoseconds per iteration.
pub struct Harness {
    group: &'static str,
}

impl Harness {
    /// Harness for one bench group; prints a header line.
    pub fn new(group: &'static str) -> Self {
        println!("# {group}");
        Harness { group }
    }

    /// Measure `f`, printing `group/name  <median> ns/iter (±spread)`.
    /// Returns the median ns/iter so callers can assert relations.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Calibrate: double the batch until one batch fills the target.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            // aim straight for the target rather than doubling blindly
            let scale = SAMPLE_TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(1.5, 16.0)).ceil() as u64;
        }
        let mut ns: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        ns.sort_by(f64::total_cmp);
        let median = ns[SAMPLES / 2];
        let spread = (ns[SAMPLES - 1] - ns[0]) / 2.0;
        println!(
            "{}/{name}  {median:.1} ns/iter (±{spread:.1}, {iters} iters/sample)",
            self.group
        );
        median
    }
}

/// A bibliography document with `k` copies of the Figure 1 entries.
pub fn bibliography_of_size(k: usize) -> String {
    let book = r#"<book><author>S. Abiteboul</author><author>R. Hull</author><author>V. Vianu</author><title>Foundations of Databases</title><publisher>Addison-Wesley</publisher><year>1995</year></book>"#;
    let article = r#"<article><author>E. Codd</author><title>A Relational Model</title><journal>CACM</journal><year>1970</year></article>"#;
    let mut s = String::from("<bibliography>");
    for _ in 0..k {
        s.push_str(book);
        s.push_str(article);
    }
    s.push_str("</bibliography>");
    s
}

/// The `{0,1}` alphabet shared by the string/unranked benches.
pub fn binary_alphabet() -> Alphabet {
    Alphabet::from_names(["0", "1"])
}

/// The circuit alphabet of Examples 4.2/5.9.
pub fn circuit_alphabet() -> Alphabet {
    Alphabet::from_names(["AND", "OR", "0", "1"])
}

/// A random unranked tree with `n` nodes over `{0,1}`.
pub fn random_binary_labeled(n: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    qa_trees::generate::random(
        &mut rng,
        &[Symbol::from_index(0), Symbol::from_index(1)],
        n,
        None,
    )
}

/// A random full binary circuit with ~`inner` gates.
pub fn random_circuit(inner: usize, seed: u64) -> Tree {
    let a = circuit_alphabet();
    let mut rng = StdRng::seed_from_u64(seed);
    qa_trees::generate::random_full_binary(
        &mut rng,
        &[a.symbol("AND"), a.symbol("OR")],
        &[a.symbol("0"), a.symbol("1")],
        inner,
    )
}

/// A random word of length `n` over `{0,1}`.
pub fn random_word(n: usize, seed: u64) -> Vec<Symbol> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Symbol::from_index(rng.gen_range(0..2)))
        .collect()
}

/// A chain-shaped `Nbtau` with `k` states whose witness is a `k`-node
/// chain — the Lemma 5.2 scaling family.
pub fn chain_nbtau(k: usize) -> qa_core::unranked::Nbtau {
    use qa_strings::Regex;
    let mut n = qa_core::unranked::Nbtau::new(1);
    let states: Vec<_> = (0..k).map(|_| n.add_state()).collect();
    n.set_final(states[k - 1], true);
    let x = Symbol::from_index(0);
    n.set_language(states[0], x, Regex::Epsilon.to_nfa(k))
        .unwrap();
    for i in 1..k {
        n.set_language(
            states[i],
            x,
            Regex::Sym(Symbol::from_index(states[i - 1].index())).to_nfa(k),
        )
        .unwrap();
    }
    n
}
