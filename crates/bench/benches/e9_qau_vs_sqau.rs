//! E9 (Proposition 5.10 vs Example 5.14): the sibling query. The SQAu
//! resolves each sibling group with one stay transition (linear overall);
//! the stay-free workaround — rescanning the left siblings of every leaf —
//! is quadratic in the fanout. Flat trees (the Proposition 5.10 shape)
//! make the gap visible.

use qa_base::Symbol;
use qa_bench::Harness;
use qa_trees::{NodeId, Tree};

/// The stay-free baseline: for every 1-leaf, rescan its left siblings.
fn per_leaf_rescan(t: &Tree, one: Symbol) -> Vec<NodeId> {
    t.nodes()
        .filter(|&v| {
            t.is_leaf(v) && t.label(v) == one && {
                match t.parent(v) {
                    None => true,
                    Some(p) => {
                        let idx = t.child_index(v);
                        t.children(p)[..idx].iter().all(|&w| t.label(w) != one)
                    }
                }
            }
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("e9_qau_vs_sqau");
    let sigma = qa_bench::binary_alphabet();
    let sqa = qa_core::unranked::query::example_5_14(&sigma);
    let one = sigma.symbol("1");
    let zero = sigma.symbol("0");

    for fanout in [64usize, 512, 4096] {
        // flat tree: 0-root with alternating 0/1 children
        let mut t = Tree::leaf(zero);
        for i in 0..fanout {
            t.add_child(t.root(), if i % 3 == 0 { one } else { zero });
        }
        h.bench(&format!("sqau_one_stay/{fanout}"), || {
            sqa.query(&t).unwrap().len()
        });
        h.bench(&format!("per_leaf_rescan/{fanout}"), || {
            per_leaf_rescan(&t, one).len()
        });
    }
}
