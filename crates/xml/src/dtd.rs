//! DTDs as extended context-free grammars (the paper's ECFGs).

use std::collections::HashMap;

use qa_base::{Alphabet, Error, Result, Symbol};
use qa_strings::{regex, Regex};

use crate::parser::PCDATA;

/// A parsed DTD: one content-model regex per declared element.
#[derive(Clone, Debug)]
pub struct Dtd {
    /// Shared element alphabet (including `#pcdata`).
    pub alphabet: Alphabet,
    /// `models[element] = content model` over the alphabet.
    pub models: HashMap<Symbol, Regex>,
    /// The first declared element, used as the expected document root.
    pub root: Symbol,
}

impl Dtd {
    /// Parse a DTD text: a sequence of
    /// `<!ELEMENT name (content-model)>` declarations. Content models use
    /// `,` for concatenation, `|`, `*`, `+`, `?`, parentheses, `PCDATA` /
    /// `#PCDATA` for text content, and `EMPTY` for childless elements.
    /// Extends `alphabet` (which must intern `#pcdata`).
    pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Dtd> {
        let mut models = HashMap::new();
        let mut root = None;
        let mut rest = input;
        while let Some(start) = rest.find("<!ELEMENT") {
            let after = &rest[start + "<!ELEMENT".len()..];
            let end = after
                .find('>')
                .ok_or_else(|| Error::parse("dtd", "unterminated <!ELEMENT"))?;
            let decl = after[..end].trim();
            rest = &after[end + 1..];
            let (name, model_src) = decl
                .split_once(char::is_whitespace)
                .ok_or_else(|| Error::parse("dtd", format!("malformed declaration `{decl}`")))?;
            let sym = alphabet.intern(name.trim());
            if root.is_none() {
                root = Some(sym);
            }
            let model = parse_model(model_src.trim(), alphabet)?;
            if models.insert(sym, model).is_some() {
                return Err(Error::parse(
                    "dtd",
                    format!("element `{name}` declared twice"),
                ));
            }
        }
        let root = root.ok_or_else(|| Error::parse("dtd", "no <!ELEMENT> declarations"))?;
        Ok(Dtd {
            alphabet: alphabet.clone(),
            models,
            root,
        })
    }

    /// The content model of an element, if declared.
    pub fn model(&self, element: Symbol) -> Option<&Regex> {
        self.models.get(&element)
    }
}

/// Parse one content model into a [`Regex`] over the element alphabet.
fn parse_model(src: &str, alphabet: &mut Alphabet) -> Result<Regex> {
    let normalized = src
        .replace("#PCDATA", PCDATA)
        .replace("PCDATA", PCDATA)
        // `##pcdata` if the source already said `#PCDATA` → collapse
        .replace("##pcdata", PCDATA);
    if normalized.trim() == "EMPTY" {
        return Ok(Regex::Epsilon);
    }
    // DTD commas are concatenation: the token-level regex parser treats
    // whitespace as juxtaposition already, so turn commas into spaces.
    let as_regex = normalized.replace(',', " ");
    regex::parse_tokens(&as_regex, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Alphabet {
        let mut a = Alphabet::new();
        a.intern(PCDATA);
        a
    }

    #[test]
    fn parses_figure_2_dtd() {
        let mut a = alpha();
        let dtd = Dtd::parse(crate::figures::FIGURE_2_DTD, &mut a).unwrap();
        assert_eq!(a.name(dtd.root), "bibliography");
        assert_eq!(dtd.models.len(), 8);
        // article := author+, title, journal, year
        let article = dtd.model(a.symbol("article")).unwrap();
        let w = |names: &[&str]| -> Vec<Symbol> { names.iter().map(|n| a.symbol(n)).collect() };
        let n = article.to_nfa(a.len());
        assert!(n.accepts(&w(&["author", "title", "journal", "year"])));
        assert!(n.accepts(&w(&["author", "author", "title", "journal", "year"])));
        assert!(!n.accepts(&w(&["title", "journal", "year"])));
        assert!(!n.accepts(&w(&["author", "title", "publisher", "year"])));
    }

    #[test]
    fn pcdata_and_empty_models() {
        let mut a = alpha();
        let dtd = Dtd::parse("<!ELEMENT note (PCDATA)> <!ELEMENT hr EMPTY>", &mut a).unwrap();
        let note = dtd.model(a.symbol("note")).unwrap();
        let n = note.to_nfa(a.len());
        assert!(n.accepts(&[a.symbol(PCDATA)]));
        assert!(!n.accepts(&[]));
        let hr = dtd.model(a.symbol("hr")).unwrap();
        assert_eq!(*hr, Regex::Epsilon);
    }

    #[test]
    fn alternation_and_nesting() {
        let mut a = alpha();
        let dtd = Dtd::parse(
            "<!ELEMENT list ((item | group)+)> <!ELEMENT item (PCDATA)> \
             <!ELEMENT group (item, item)>",
            &mut a,
        )
        .unwrap();
        let list = dtd.model(a.symbol("list")).unwrap().to_nfa(a.len());
        assert!(list.accepts(&[a.symbol("item"), a.symbol("group"), a.symbol("item")]));
        assert!(!list.accepts(&[]));
    }

    #[test]
    fn errors() {
        let mut a = alpha();
        assert!(Dtd::parse("", &mut a).is_err());
        assert!(Dtd::parse("<!ELEMENT x", &mut a).is_err());
        assert!(Dtd::parse("<!ELEMENT x (a)> <!ELEMENT x (b)>", &mut a).is_err());
        assert!(Dtd::parse("<!ELEMENT>", &mut a).is_err());
    }
}
