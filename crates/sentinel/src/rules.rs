//! Declarative [`AlertRule`]s and their line-oriented rules file.
//!
//! A rules file holds one rule per line (`#` comments and blank lines are
//! skipped). Three shapes:
//!
//! ```text
//! alert <name> threshold <metric> <op> <value> [window <W>] for <D>
//! alert <name> absent <metric> for <D>
//! alert <name> burnrate <num> / <den> objective <O> fast <F> slow <S> [factor <K>] for <D>
//! ```
//!
//! - **threshold** — with `window W`, the increase of `<metric>` over the
//!   last `W` ticks compared against `<value>` (`op` ∈ `> < >= <=`);
//!   without a window, the latest sample value.
//! - **absent** — true whenever `<metric>` has no sample at the current
//!   tick (never scraped, or stale).
//! - **burnrate** — the two-window SLO rule: the error ratio
//!   `Δnum / Δden` over the fast and the slow window, each divided by
//!   `objective`; the condition holds only when *both* burn rates exceed
//!   `factor` (default 1). `for D` on every rule is the pending→firing
//!   holdoff in ticks.

/// Comparison operator of a threshold rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl Cmp {
    /// Apply the comparison.
    pub fn holds(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Le => lhs <= rhs,
        }
    }

    /// The operator's source spelling.
    pub fn render(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Lt => "<",
            Cmp::Ge => ">=",
            Cmp::Le => "<=",
        }
    }

    fn parse(s: &str) -> Option<Cmp> {
        match s {
            ">" => Some(Cmp::Gt),
            "<" => Some(Cmp::Lt),
            ">=" => Some(Cmp::Ge),
            "<=" => Some(Cmp::Le),
            _ => None,
        }
    }
}

/// The condition a rule watches.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleKind {
    /// Compare a metric (latest value, or windowed increase) to a constant.
    Threshold {
        /// Metric name.
        metric: String,
        /// Comparison operator.
        op: Cmp,
        /// Right-hand constant.
        value: f64,
        /// Increase window in ticks; `None` compares the latest sample.
        window: Option<u64>,
    },
    /// True while the metric has no fresh sample.
    Absent {
        /// Metric name.
        metric: String,
    },
    /// Two-window SLO burn rate over an error-budget objective.
    Burnrate {
        /// Numerator (error) counter.
        num: String,
        /// Denominator (traffic) counter.
        den: String,
        /// Error-budget objective, e.g. `0.001` for 0.1%.
        objective: f64,
        /// Fast window in ticks (reacts quickly, e.g. 5).
        fast: u64,
        /// Slow window in ticks (confirms the trend, e.g. 60).
        slow: u64,
        /// Burn-rate factor both windows must exceed (default 1).
        factor: f64,
    },
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// Rule name — the identity alerts are logged and reported under.
    pub name: String,
    /// What the rule watches.
    pub kind: RuleKind,
    /// Pending→firing holdoff: the condition must hold this many ticks.
    pub for_ticks: u64,
}

impl AlertRule {
    /// Every metric name the rule reads — what a replay must feed.
    pub fn metrics(&self) -> Vec<&str> {
        match &self.kind {
            RuleKind::Threshold { metric, .. } | RuleKind::Absent { metric } => vec![metric],
            RuleKind::Burnrate { num, den, .. } => vec![num, den],
        }
    }

    /// Render the rule back to its one-line source form.
    pub fn render(&self) -> String {
        match &self.kind {
            RuleKind::Threshold {
                metric,
                op,
                value,
                window,
            } => {
                let w = match window {
                    Some(w) => format!(" window {w}"),
                    None => String::new(),
                };
                format!(
                    "alert {} threshold {metric} {} {value}{w} for {}",
                    self.name,
                    op.render(),
                    self.for_ticks
                )
            }
            RuleKind::Absent { metric } => {
                format!("alert {} absent {metric} for {}", self.name, self.for_ticks)
            }
            RuleKind::Burnrate {
                num,
                den,
                objective,
                fast,
                slow,
                factor,
            } => format!(
                "alert {} burnrate {num} / {den} objective {objective} \
                 fast {fast} slow {slow} factor {factor} for {}",
                self.name, self.for_ticks
            ),
        }
    }
}

/// Parse a rules file. Errors carry the 1-based line number.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if rules.iter().any(|r: &AlertRule| r.name == rule.name) {
            return Err(format!(
                "line {}: duplicate alert name {:?}",
                i + 1,
                rule.name
            ));
        }
        rules.push(rule);
    }
    Ok(rules)
}

fn parse_rule(line: &str) -> Result<AlertRule, String> {
    let mut toks = line.split_whitespace();
    let mut next = |what: &str| {
        toks.next()
            .ok_or_else(|| format!("expected {what}, found end of line"))
    };
    if next("`alert`")? != "alert" {
        return Err("rule must start with `alert`".to_string());
    }
    let name = next("alert name")?.to_string();
    let kind_tok = next("rule kind (threshold/absent/burnrate)")?;
    let (kind, for_ticks) = match kind_tok {
        "threshold" => {
            let metric = next("metric name")?.to_string();
            let op_tok = next("comparison operator")?;
            let op = Cmp::parse(op_tok).ok_or_else(|| format!("bad operator {op_tok:?}"))?;
            let value = parse_f64(next("threshold value")?)?;
            let mut window = None;
            let for_ticks;
            loop {
                match next("`window` or `for`")? {
                    "window" => window = Some(parse_u64(next("window ticks")?)?),
                    "for" => {
                        for_ticks = parse_u64(next("for ticks")?)?;
                        break;
                    }
                    t => return Err(format!("unexpected token {t:?}")),
                }
            }
            (
                RuleKind::Threshold {
                    metric,
                    op,
                    value,
                    window,
                },
                for_ticks,
            )
        }
        "absent" => {
            let metric = next("metric name")?.to_string();
            if next("`for`")? != "for" {
                return Err("absent rule takes `for <ticks>`".to_string());
            }
            let for_ticks = parse_u64(next("for ticks")?)?;
            (RuleKind::Absent { metric }, for_ticks)
        }
        "burnrate" => {
            let num = next("numerator metric")?.to_string();
            if next("`/`")? != "/" {
                return Err("burnrate takes `<num> / <den>`".to_string());
            }
            let den = next("denominator metric")?.to_string();
            let mut objective = None;
            let mut fast = None;
            let mut slow = None;
            let mut factor = 1.0;
            let for_ticks;
            loop {
                match next("`objective`/`fast`/`slow`/`factor`/`for`")? {
                    "objective" => objective = Some(parse_f64(next("objective")?)?),
                    "fast" => fast = Some(parse_u64(next("fast window")?)?),
                    "slow" => slow = Some(parse_u64(next("slow window")?)?),
                    "factor" => factor = parse_f64(next("factor")?)?,
                    "for" => {
                        for_ticks = parse_u64(next("for ticks")?)?;
                        break;
                    }
                    t => return Err(format!("unexpected token {t:?}")),
                }
            }
            let objective = objective.ok_or("burnrate rule needs `objective <O>`")?;
            if objective <= 0.0 {
                return Err("objective must be positive".to_string());
            }
            let fast = fast.ok_or("burnrate rule needs `fast <F>`")?;
            let slow = slow.ok_or("burnrate rule needs `slow <S>`")?;
            if fast == 0 || slow == 0 {
                return Err("burnrate windows must be at least 1 tick".to_string());
            }
            if fast > slow {
                return Err("fast window must not exceed the slow window".to_string());
            }
            (
                RuleKind::Burnrate {
                    num,
                    den,
                    objective,
                    fast,
                    slow,
                    factor,
                },
                for_ticks,
            )
        }
        t => return Err(format!("unknown rule kind {t:?}")),
    };
    if let Some(extra) = toks.next() {
        return Err(format!("trailing token {extra:?}"));
    }
    Ok(AlertRule {
        name,
        kind,
        for_ticks,
    })
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad integer {s:?}"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad number {s:?}"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("non-finite number {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_rule_shapes() {
        let text = "\
# error budget: 0.1% of jobs may trip their budget
alert burn burnrate qa_fleet_budget_trips_total / qa_fleet_jobs_total \
objective 0.001 fast 5 slow 60 for 2

alert hot-steps threshold qa_fleet_steps_total > 1000 window 10 for 1
alert no-scrapes absent qa_fleet_jobs_total for 3
alert latest-gauge threshold qa_heap_live_bytes >= 5.5 for 0
";
        let rules = parse_rules(text).expect("parses");
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].name, "burn");
        assert_eq!(rules[0].for_ticks, 2);
        match &rules[0].kind {
            RuleKind::Burnrate {
                num,
                den,
                objective,
                fast,
                slow,
                factor,
            } => {
                assert_eq!(num, "qa_fleet_budget_trips_total");
                assert_eq!(den, "qa_fleet_jobs_total");
                assert_eq!(*objective, 0.001);
                assert_eq!((*fast, *slow), (5, 60));
                assert_eq!(*factor, 1.0, "factor defaults to 1");
            }
            k => panic!("wrong kind: {k:?}"),
        }
        assert_eq!(
            rules[1].kind,
            RuleKind::Threshold {
                metric: "qa_fleet_steps_total".to_string(),
                op: Cmp::Gt,
                value: 1000.0,
                window: Some(10),
            }
        );
        assert_eq!(
            rules[2].kind,
            RuleKind::Absent {
                metric: "qa_fleet_jobs_total".to_string()
            }
        );
        assert_eq!(
            rules[3].kind,
            RuleKind::Threshold {
                metric: "qa_heap_live_bytes".to_string(),
                op: Cmp::Ge,
                value: 5.5,
                window: None,
            }
        );
        // Rules render back to one-line source form.
        assert_eq!(
            rules[2].render(),
            "alert no-scrapes absent qa_fleet_jobs_total for 3"
        );
        assert!(rules[0].render().contains("factor 1 for 2"));
    }

    #[test]
    fn rejects_malformed_rules_with_line_numbers() {
        for (text, needle) in [
            ("watch x for 3", "must start with `alert`"),
            ("alert a sideways x for 1", "unknown rule kind"),
            ("alert a threshold x ~ 3 for 1", "bad operator"),
            ("alert a threshold x > y for 1", "bad number"),
            ("alert a threshold x > 1", "end of line"),
            ("alert a absent x", "end of line"),
            ("alert a burnrate n / d objective 0.1 fast 5 for 1", "slow"),
            (
                "alert a burnrate n / d objective 0 fast 1 slow 2 for 1",
                "positive",
            ),
            (
                "alert a burnrate n / d objective 0.1 fast 9 slow 2 for 1",
                "must not exceed",
            ),
            ("alert a absent x for 1 extra", "trailing token"),
            (
                "alert a absent x for 1\nalert a absent y for 1",
                "line 2: duplicate",
            ),
        ] {
            let err = parse_rules(text).expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_rules("\n# nothing\n\n").unwrap(), vec![]);
    }

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::Gt.holds(2.0, 1.0));
        assert!(!Cmp::Gt.holds(1.0, 1.0));
        assert!(Cmp::Ge.holds(1.0, 1.0));
        assert!(Cmp::Lt.holds(0.5, 1.0));
        assert!(Cmp::Le.holds(1.0, 1.0));
    }

    #[test]
    fn rule_metrics_lists_reads() {
        let rules = parse_rules(
            "alert b burnrate n / d objective 0.5 fast 1 slow 2 for 0\n\
             alert t threshold m > 1 for 0\n",
        )
        .unwrap();
        assert_eq!(rules[0].metrics(), vec!["n", "d"]);
        assert_eq!(rules[1].metrics(), vec!["m"]);
    }
}
