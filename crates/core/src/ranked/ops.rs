//! Boolean operations, determinization and emptiness for ranked tree
//! automata — the closure properties behind Theorem 2.8.

use std::collections::{HashMap, VecDeque};

use qa_base::Symbol;
use qa_strings::StateId;

use super::{Dbta, Nbta};

/// Subset-construction determinization of an NBTAʳ.
///
/// Only reachable subsets are built; the result is total over tuples of
/// reachable subsets (the empty subset acts as the dead state).
pub fn determinize(n: &Nbta) -> Dbta {
    // Group transitions by (arity, label) for tuple evaluation.
    let mut d = Dbta::new(n.alphabet_len(), n.max_rank());
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut subsets: Vec<Vec<StateId>> = Vec::new();

    let intern = |d: &mut Dbta,
                  subsets: &mut Vec<Vec<StateId>>,
                  index: &mut HashMap<Vec<StateId>, StateId>,
                  set: Vec<StateId>| {
        match index.get(&set) {
            Some(&id) => id,
            None => {
                let id = d.add_state();
                debug_assert_eq!(id.index(), subsets.len());
                d.set_final(id, set.iter().any(|&q| n.is_final(q)));
                subsets.push(set.clone());
                index.insert(set, id);
                id
            }
        }
    };

    // Leaf subsets first.
    let mut queue: VecDeque<StateId> = VecDeque::new();
    for a in 0..n.alphabet_len() {
        let label = Symbol::from_index(a);
        let mut set: Vec<StateId> = n.targets(&[], label).to_vec();
        set.sort_unstable();
        let id = intern(&mut d, &mut subsets, &mut index, set);
        d.set_leaf(label, id);
        if !queue.contains(&id) {
            queue.push_back(id);
        }
    }

    // Saturate: for every arity/tuple over known subsets, compute the image.
    // Iterate to a fixpoint because new subsets enable new tuples.
    let mut processed_tuples: std::collections::HashSet<(Vec<StateId>, Symbol)> =
        std::collections::HashSet::new();
    loop {
        let num_known = subsets.len();
        let mut added = false;
        // enumerate tuples of known subset-ids for each arity 1..=max_rank
        for arity in 1..=n.max_rank() {
            let mut tuple = vec![0usize; arity];
            'tuples: loop {
                let ids: Vec<StateId> = tuple.iter().map(|&i| StateId::from_index(i)).collect();
                for a in 0..n.alphabet_len() {
                    let label = Symbol::from_index(a);
                    if processed_tuples.contains(&(ids.clone(), label)) {
                        continue;
                    }
                    // image subset: union over member tuples
                    let mut img: Vec<StateId> = Vec::new();
                    let member_sets: Vec<&Vec<StateId>> =
                        ids.iter().map(|&i| &subsets[i.index()]).collect();
                    let mut mt = vec![0usize; arity];
                    if member_sets.iter().all(|s| !s.is_empty()) {
                        'members: loop {
                            let children: Vec<StateId> =
                                member_sets.iter().zip(&mt).map(|(s, &i)| s[i]).collect();
                            for &q in n.targets(&children, label) {
                                if !img.contains(&q) {
                                    img.push(q);
                                }
                            }
                            let mut k = 0;
                            loop {
                                if k == arity {
                                    break 'members;
                                }
                                mt[k] += 1;
                                if mt[k] < member_sets[k].len() {
                                    break;
                                }
                                mt[k] = 0;
                                k += 1;
                            }
                        }
                    }
                    img.sort_unstable();
                    let before = subsets.len();
                    let target = intern(&mut d, &mut subsets, &mut index, img);
                    if subsets.len() > before {
                        added = true;
                    }
                    d.set_transition(&ids, label, target);
                    processed_tuples.insert((ids.clone(), label));
                }
                // next tuple over 0..num_known
                let mut k = 0;
                loop {
                    if k == arity {
                        break 'tuples;
                    }
                    tuple[k] += 1;
                    if tuple[k] < num_known {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
            }
        }
        if !added && subsets.len() == num_known {
            break;
        }
    }
    d
}

/// Make a DBTAʳ total by adding a dead state (if not already total over the
/// full tuple space).
pub fn totalize(d: &Dbta) -> Dbta {
    let mut out = d.clone();
    let dead = out.add_state();
    let n = out.num_states();
    for a in 0..out.alphabet_len() {
        let label = Symbol::from_index(a);
        for arity in 0..=out.max_rank() {
            let mut tuple = vec![0usize; arity];
            loop {
                let ids: Vec<StateId> = tuple.iter().map(|&i| StateId::from_index(i)).collect();
                if out.transition(&ids, label).is_none() {
                    out.set_transition(&ids, label, dead);
                }
                let mut k = 0;
                let mut done = false;
                loop {
                    if k == arity {
                        done = true;
                        break;
                    }
                    tuple[k] += 1;
                    if tuple[k] < n {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
                if done {
                    break;
                }
            }
        }
    }
    out
}

/// Complement of a DBTAʳ (totalize, then flip finals).
pub fn complement(d: &Dbta) -> Dbta {
    let mut out = totalize(d);
    for i in 0..out.num_states() {
        let s = StateId::from_index(i);
        let f = out.is_final(s);
        out.set_final(s, !f);
    }
    out
}

/// Product of two DBTAʳs; `combine` decides finality. Lazy over reachable
/// pairs.
pub fn product(a: &Dbta, b: &Dbta, combine: impl Fn(bool, bool) -> bool) -> Dbta {
    assert_eq!(a.alphabet_len(), b.alphabet_len());
    let rank = a.max_rank().max(b.max_rank());
    let at = totalize(a);
    let bt = totalize(b);
    let mut out = Dbta::new(a.alphabet_len(), rank);
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();

    let intern = |out: &mut Dbta,
                  pairs: &mut Vec<(StateId, StateId)>,
                  index: &mut HashMap<(StateId, StateId), StateId>,
                  p: (StateId, StateId)| {
        match index.get(&p) {
            Some(&id) => id,
            None => {
                let id = out.add_state();
                out.set_final(id, combine(at.is_final(p.0), bt.is_final(p.1)));
                index.insert(p, id);
                pairs.push(p);
                id
            }
        }
    };

    // saturate reachable pairs
    for a_idx in 0..out.alphabet_len() {
        let label = Symbol::from_index(a_idx);
        if let (Some(qa), Some(qb)) = (at.transition(&[], label), bt.transition(&[], label)) {
            let id = intern(&mut out, &mut pairs, &mut index, (qa, qb));
            out.set_leaf(label, id);
        }
    }
    loop {
        let known = pairs.len();
        for arity in 1..=rank {
            let mut tuple = vec![0usize; arity];
            'tuples: loop {
                if tuple.iter().any(|&i| i >= pairs.len()) {
                    break 'tuples;
                }
                let chosen: Vec<(StateId, StateId)> = tuple.iter().map(|&i| pairs[i]).collect();
                let ids: Vec<StateId> = tuple.iter().map(|&i| StateId::from_index(i)).collect();
                for s_idx in 0..out.alphabet_len() {
                    let label = Symbol::from_index(s_idx);
                    let qa = at.transition(&chosen.iter().map(|p| p.0).collect::<Vec<_>>(), label);
                    let qb = bt.transition(&chosen.iter().map(|p| p.1).collect::<Vec<_>>(), label);
                    if let (Some(qa), Some(qb)) = (qa, qb) {
                        let id = intern(&mut out, &mut pairs, &mut index, (qa, qb));
                        out.set_transition(&ids, label, id);
                    }
                }
                let mut k = 0;
                loop {
                    if k == arity {
                        break 'tuples;
                    }
                    tuple[k] += 1;
                    if tuple[k] < known {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
            }
        }
        if pairs.len() == known {
            break;
        }
    }
    out
}

/// Intersection of two DBTAʳ languages.
pub fn intersect(a: &Dbta, b: &Dbta) -> Dbta {
    product(a, b, |x, y| x && y)
}

/// Union of two DBTAʳ languages.
pub fn union(a: &Dbta, b: &Dbta) -> Dbta {
    product(a, b, |x, y| x || y)
}

/// Difference `L(a) \ L(b)`.
pub fn difference(a: &Dbta, b: &Dbta) -> Dbta {
    product(a, b, |x, y| x && !y)
}

/// Whether the language of a DBTAʳ is empty (reachable-states fixpoint).
pub fn is_empty(d: &Dbta) -> bool {
    witness(d).is_none()
}

/// A smallest-ish witness tree, if the language is non-empty.
///
/// Computes reachable states with representative trees attached.
pub fn witness(d: &Dbta) -> Option<qa_trees::Tree> {
    let mut reached: HashMap<StateId, qa_trees::Tree> = HashMap::new();
    loop {
        let mut added = false;
        for (children, label, q) in d.transitions() {
            if reached.contains_key(&q) {
                continue;
            }
            if let Some(kids) = children
                .iter()
                .map(|c| reached.get(c).cloned())
                .collect::<Option<Vec<_>>>()
            {
                reached.insert(q, qa_trees::Tree::node(label, kids));
                added = true;
            }
        }
        if !added {
            break;
        }
    }
    reached
        .iter()
        .filter(|(q, _)| d.is_final(**q))
        .map(|(_, t)| t.clone())
        .min_by_key(|t| t.num_nodes())
}

/// Whether `L(a) ⊆ L(b)`.
pub fn is_subset(a: &Dbta, b: &Dbta) -> bool {
    is_empty(&difference(a, b))
}

/// Whether `L(a) = L(b)`.
pub fn equivalent(a: &Dbta, b: &Dbta) -> bool {
    is_subset(a, b) && is_subset(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;
    use qa_trees::Tree;

    fn circuit_alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    /// NBTA accepting trees with at least one `1` leaf (nondeterministically
    /// guesses a path to it).
    fn has_one_leaf(a: &Alphabet) -> Nbta {
        let one = a.symbol("1");
        let mut n = Nbta::new(a.len(), 2);
        let any = n.add_state();
        let hit = n.add_state();
        n.set_final(hit, true);
        for s in 0..a.len() {
            let label = Symbol::from_index(s);
            n.add_transition(&[], label, any);
            if label == one {
                n.add_transition(&[], label, hit);
            }
            for (l, r, q) in [
                (any, any, any),
                (hit, any, hit),
                (any, hit, hit),
                (hit, hit, hit),
            ] {
                n.add_transition(&[l, r], label, q);
            }
        }
        n
    }

    #[test]
    fn determinize_preserves_language() {
        let mut a = circuit_alpha();
        let n = has_one_leaf(&a);
        let d = determinize(&n);
        for s in [
            "0",
            "1",
            "(AND 0 0)",
            "(AND 0 1)",
            "(AND (OR 0 0) (OR 0 0))",
            "(AND (OR 0 1) (OR 0 0))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(n.accepts(&t), d.accepts(&t), "{s}");
        }
    }

    #[test]
    fn complement_flips() {
        let mut a = circuit_alpha();
        let d = determinize(&has_one_leaf(&a));
        let c = complement(&d);
        for s in ["0", "1", "(AND 0 1)", "(OR 0 0)"] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(d.accepts(&t), !c.accepts(&t), "{s}");
        }
    }

    #[test]
    fn boolean_products() {
        let mut a = circuit_alpha();
        let circuit = Dbta::boolean_circuit(&a);
        let one_leaf = determinize(&has_one_leaf(&a));
        let both = intersect(&circuit, &one_leaf);
        let t = from_sexpr("(OR 0 1)", &mut a).unwrap();
        assert!(both.accepts(&t));
        let t = from_sexpr("(OR 0 0)", &mut a).unwrap();
        assert!(!both.accepts(&t));

        let either = union(&circuit, &one_leaf);
        assert!(either.accepts(&from_sexpr("(AND 1 0)", &mut a).unwrap()));
        assert!(!either.accepts(&from_sexpr("(AND 0 0)", &mut a).unwrap()));

        // circuits evaluating to 1 with no 1-leaf: impossible
        let weird = difference(&circuit, &one_leaf);
        assert!(is_empty(&weird));
    }

    #[test]
    fn emptiness_and_witness() {
        let a = circuit_alpha();
        let circuit = Dbta::boolean_circuit(&a);
        assert!(!is_empty(&circuit));
        let w = witness(&circuit).unwrap();
        assert!(circuit.accepts(&w));
        assert_eq!(w.num_nodes(), 1, "smallest witness is the leaf `1`");

        let empty = Dbta::new(a.len(), 2);
        assert!(is_empty(&empty));
        assert!(witness(&empty).is_none());
    }

    #[test]
    fn subset_and_equivalence() {
        let a = circuit_alpha();
        let circuit = Dbta::boolean_circuit(&a);
        let one_leaf = determinize(&has_one_leaf(&a));
        assert!(is_subset(&circuit, &one_leaf));
        assert!(!is_subset(&one_leaf, &circuit));
        assert!(equivalent(&circuit, &circuit.clone()));
        assert!(!equivalent(&circuit, &one_leaf));
    }

    #[test]
    fn totalize_keeps_language() {
        let a = circuit_alpha();
        let circuit = Dbta::boolean_circuit(&a);
        let total = totalize(&circuit);
        let one = a.symbol("1");
        let and = a.symbol("AND");
        let t = Tree::node(and, vec![Tree::leaf(one), Tree::leaf(one)]);
        assert_eq!(circuit.accepts(&t), total.accepts(&t));
        // the unary AND now has a (dead) transition but still rejects
        let t2 = Tree::node(and, vec![Tree::leaf(one)]);
        assert!(total.run(&t2).is_some());
        assert!(!total.accepts(&t2));
    }
}

/// Trim to *productive* states: those reachable bottom-up by some tree AND
/// able to reach a final state in some context. Transitions mentioning
/// pruned states are dropped; the language is unchanged.
pub fn trim(d: &Dbta) -> Dbta {
    // bottom-up reachable
    let mut reach = vec![false; d.num_states()];
    loop {
        let mut changed = false;
        for (children, _l, q) in d.transitions() {
            if !reach[q.index()] && children.iter().all(|c| reach[c.index()]) {
                reach[q.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // co-reachable (can appear under an accepting run): final states, plus
    // states occurring as a child in a transition whose target is
    // co-reachable and whose sibling slots are bottom-up reachable.
    let mut co = vec![false; d.num_states()];
    for (i, slot) in co.iter_mut().enumerate() {
        *slot = d.is_final(StateId::from_index(i));
    }
    loop {
        let mut changed = false;
        for (children, _l, q) in d.transitions() {
            if !co[q.index()] {
                continue;
            }
            for (i, c) in children.iter().enumerate() {
                if !co[c.index()]
                    && children
                        .iter()
                        .enumerate()
                        .all(|(j, cc)| j == i || reach[cc.index()])
                {
                    co[c.index()] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let keep: Vec<bool> = (0..d.num_states()).map(|i| reach[i] && co[i]).collect();
    let mut map: Vec<Option<StateId>> = vec![None; d.num_states()];
    let mut out = Dbta::new(d.alphabet_len(), d.max_rank());
    for (i, &k) in keep.iter().enumerate() {
        if k {
            let id = out.add_state();
            out.set_final(id, d.is_final(StateId::from_index(i)));
            map[i] = Some(id);
        }
    }
    for (children, l, q) in d.transitions() {
        let Some(nq) = map[q.index()] else { continue };
        if let Some(nc) = children
            .iter()
            .map(|c| map[c.index()])
            .collect::<Option<Vec<_>>>()
        {
            out.set_transition(&nc, l, nq);
        }
    }
    out
}

/// Minimize a DBTAʳ: trim, totalize, then Moore-refine state classes until
/// stable and rebuild on representatives.
///
/// The signature of a state under a partition is, for every transition
/// tuple over class representatives with the state substituted at each
/// argument position, the class of the target. Cost is
/// `O(passes · classes^rank · |Σ|)` — fine for the rank-2 automata the MSO
/// compiler produces.
pub fn minimize(d: &Dbta) -> Dbta {
    let t = totalize(&trim(d));
    let n = t.num_states();
    if n == 0 {
        return t;
    }
    let mut class: Vec<usize> = (0..n)
        .map(|i| usize::from(t.is_final(StateId::from_index(i))))
        .collect();
    let mut num_classes = 1 + class.iter().max().copied().unwrap_or(0);
    loop {
        // Signature of a state: for every label/arity/position and every
        // CONCRETE tuple of sibling states, the target's class. Concrete
        // siblings (not class representatives) keep each refinement step
        // sound before the partition is a congruence.
        let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_class = vec![0usize; n];
        for s_idx in 0..n {
            let s = StateId::from_index(s_idx);
            let mut sig: Vec<usize> = Vec::new();
            for a in 0..t.alphabet_len() {
                let label = Symbol::from_index(a);
                for arity in 1..=t.max_rank() {
                    for pos in 0..arity {
                        let others = arity - 1;
                        let mut tuple = vec![0usize; others];
                        loop {
                            let mut children: Vec<StateId> = Vec::with_capacity(arity);
                            let mut oi = 0;
                            for p in 0..arity {
                                if p == pos {
                                    children.push(s);
                                } else {
                                    children.push(StateId::from_index(tuple[oi]));
                                    oi += 1;
                                }
                            }
                            let tclass = t
                                .transition(&children, label)
                                .map(|q| class[q.index()])
                                .unwrap_or(usize::MAX);
                            sig.push(tclass);
                            // next tuple over concrete states
                            let mut k = 0;
                            let mut done = others == 0;
                            while k < others {
                                tuple[k] += 1;
                                if tuple[k] < n {
                                    break;
                                }
                                tuple[k] = 0;
                                k += 1;
                                if k == others {
                                    done = true;
                                }
                            }
                            if done {
                                break;
                            }
                        }
                    }
                }
            }
            let key = (class[s_idx], sig);
            let next = sig_index.len();
            new_class[s_idx] = *sig_index.entry(key).or_insert(next);
        }
        let new_count = sig_index.len();
        class = new_class;
        if new_count == num_classes {
            break;
        }
        num_classes = new_count;
    }
    // rebuild on classes
    let mut out = Dbta::new(t.alphabet_len(), t.max_rank());
    for _ in 0..num_classes {
        out.add_state();
    }
    for (i, &ci) in class.iter().enumerate().take(n) {
        let c = StateId::from_index(ci);
        if t.is_final(StateId::from_index(i)) {
            out.set_final(c, true);
        }
    }
    for (children, l, q) in t.transitions() {
        let nc: Vec<StateId> = children
            .iter()
            .map(|c| StateId::from_index(class[c.index()]))
            .collect();
        out.set_transition(&nc, l, StateId::from_index(class[q.index()]));
    }
    out
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        let mut a = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let circuit = Dbta::boolean_circuit(&a);
        // inflate: duplicate through a product with itself
        let inflated = intersect(&circuit, &circuit);
        let min = minimize(&inflated);
        assert!(min.num_states() <= inflated.num_states());
        assert!(equivalent(&min, &circuit));
        for s in ["1", "(AND 1 0)", "(OR (AND 1 1) 0)"] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(min.accepts(&t), circuit.accepts(&t), "{s}");
        }
    }

    #[test]
    fn trim_drops_useless_states() {
        let a = Alphabet::from_names(["x"]);
        let mut d = Dbta::new(1, 2);
        let q0 = d.add_state();
        let junk = d.add_state();
        d.set_final(q0, true);
        d.set_leaf(a.symbol("x"), q0);
        d.set_transition(&[junk, junk], a.symbol("x"), junk);
        let t = trim(&d);
        assert_eq!(t.num_states(), 1);
        assert!(!is_empty(&t));
    }

    #[test]
    fn minimize_empty_language() {
        let d = Dbta::new(2, 2);
        let m = minimize(&d);
        assert!(is_empty(&m));
    }
}
