//! Typed dense index vectors.

use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A key type usable with [`IdVec`]: a newtype over a dense `usize` index.
pub trait Id: Copy {
    /// Build a key from a dense index.
    fn from_index(index: usize) -> Self;
    /// The dense index of this key.
    fn index(self) -> usize;
}

impl Id for crate::Symbol {
    fn from_index(index: usize) -> Self {
        crate::Symbol::from_index(index)
    }
    fn index(self) -> usize {
        crate::Symbol::index(self)
    }
}

/// Declare a `u32` newtype id usable as an [`IdVec`] key.
///
/// ```
/// qa_base::define_id!(pub StateId, "q");
/// let q = StateId::from_index(4);
/// assert_eq!(format!("{q:?}"), "q4");
/// ```
#[macro_export]
macro_rules! define_id {
    ($vis:vis $name:ident, $prefix:literal) => {
        /// Dense `u32` newtype id (see [`qa_base::define_id!`]).
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name(pub u32);

        impl $name {
            /// Build from a dense index.
            #[inline]
            $vis fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id overflow"))
            }
            /// The dense index.
            #[inline]
            $vis fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $crate::idvec::Id for $name {
            #[inline]
            fn from_index(index: usize) -> Self {
                $name::from_index(index)
            }
            #[inline]
            fn index(self) -> usize {
                $name::index(self)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A vector indexed by a typed id instead of a bare `usize`.
///
/// Prevents the classic off-by-one-abstraction bug of indexing the states
/// table with a symbol index (or vice versa).
#[derive(Clone, PartialEq, Eq)]
pub struct IdVec<K, V> {
    items: Vec<V>,
    _k: PhantomData<fn(K) -> K>,
}

impl<K: Id, V> IdVec<K, V> {
    /// Empty vector.
    pub fn new() -> Self {
        IdVec {
            items: Vec::new(),
            _k: PhantomData,
        }
    }

    /// Vector with `n` copies of `value`.
    pub fn filled(value: V, n: usize) -> Self
    where
        V: Clone,
    {
        IdVec {
            items: vec![value; n],
            _k: PhantomData,
        }
    }

    /// Push a value, returning its fresh key.
    pub fn push(&mut self, value: V) -> K {
        let k = K::from_index(self.items.len());
        self.items.push(value);
        k
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over `(key, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterate over keys.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterate over values.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.items.iter()
    }

    /// Mutable value iteration.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.items.iter_mut()
    }

    /// Borrow by key, if present.
    pub fn get(&self, k: K) -> Option<&V> {
        self.items.get(k.index())
    }
}

impl<K: Id, V> Default for IdVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Id, V> Index<K> for IdVec<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, k: K) -> &V {
        &self.items[k.index()]
    }
}

impl<K: Id, V> IndexMut<K> for IdVec<K, V> {
    #[inline]
    fn index_mut(&mut self, k: K) -> &mut V {
        &mut self.items[k.index()]
    }
}

impl<K: Id, V: std::fmt::Debug> std::fmt::Debug for IdVec<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<K: Id, V> FromIterator<V> for IdVec<K, V> {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        IdVec {
            items: iter.into_iter().collect(),
            _k: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id!(TestId, "t");

    #[test]
    fn push_returns_sequential_keys() {
        let mut v: IdVec<TestId, &str> = IdVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
    }

    #[test]
    fn filled_and_mutation() {
        let mut v: IdVec<TestId, u32> = IdVec::filled(0, 3);
        v[TestId::from_index(1)] = 9;
        assert_eq!(v.values().copied().collect::<Vec<_>>(), vec![0, 9, 0]);
    }

    #[test]
    fn iter_pairs_keys_and_values() {
        let v: IdVec<TestId, char> = "xy".chars().collect();
        let pairs: Vec<(usize, char)> = v.iter().map(|(k, &c)| (k.index(), c)).collect();
        assert_eq!(pairs, vec![(0, 'x'), (1, 'y')]);
    }

    #[test]
    fn get_is_bounds_checked() {
        let v: IdVec<TestId, u8> = IdVec::filled(1, 1);
        assert!(v.get(TestId::from_index(0)).is_some());
        assert!(v.get(TestId::from_index(5)).is_none());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", TestId::from_index(2)), "t2");
    }
}
