//! Exact decision procedures for string query automata.
//!
//! The selection language `L_sel(A) = {(w, i) | i ∈ A(w)}` over the marked
//! alphabet `Σ ⊎ Σ̂` is regular (crossing-sequence construction,
//! `qa_twoway::crossing`); query non-emptiness, containment and equivalence
//! are then regular-language emptiness and containment:
//!
//! - `A` is non-empty ⟺ `L_sel(A) ≠ ∅`;
//! - `A₁ ⊑ A₂` (query containment) ⟺ `L_sel(A₁) ⊆ L_sel(A₂)`;
//! - `A₁ ≡ A₂` ⟺ mutual containment.

use qa_base::Symbol;
use qa_obs::{NoopObserver, Observer, Series};
use qa_strings::{ops, Nfa};
use qa_twoway::crossing;
use qa_twoway::StringQa;

/// A witness that some query automaton selects a position: the word and the
/// selected position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StringWitness {
    /// The input word.
    pub word: Vec<Symbol>,
    /// The selected position (0-based).
    pub position: usize,
}

/// Decode a marked word (over `Σ ⊎ Σ̂`) into a [`StringWitness`].
fn decode_marked(marked: &[Symbol], sigma: usize) -> StringWitness {
    let mut word = Vec::with_capacity(marked.len());
    let mut position = 0;
    for (i, &s) in marked.iter().enumerate() {
        if s.index() >= sigma {
            position = i;
            word.push(Symbol::from_index(s.index() - sigma));
        } else {
            word.push(s);
        }
    }
    StringWitness { word, position }
}

/// Non-emptiness: is there a word on which `qa` selects some position?
/// Returns a shortest witness.
pub fn non_emptiness(qa: &StringQa) -> Option<StringWitness> {
    non_emptiness_with(qa, &mut NoopObserver)
}

/// [`non_emptiness`] with an [`Observer`]: the crossing-sequence
/// construction and the witness search run as named phases, the selection
/// NFA's size lands in [`Series::MachineStates`], and a found witness's
/// length in [`Series::WitnessSize`]. With [`NoopObserver`] this
/// monomorphizes to exactly `non_emptiness`.
pub fn non_emptiness_with<O: Observer>(qa: &StringQa, obs: &mut O) -> Option<StringWitness> {
    let sigma = qa.machine().alphabet_len();
    obs.phase_start("crossing construction");
    let nfa = crossing::selection_nfa(qa);
    obs.phase_end("crossing construction");
    obs.record(Series::MachineStates, nfa.num_states() as u64);
    obs.phase_start("witness search");
    let witness = nfa.shortest_witness().map(|w| decode_marked(&w, sigma));
    obs.phase_end("witness search");
    if let Some(w) = &witness {
        obs.record(Series::WitnessSize, w.word.len() as u64);
    }
    witness
}

/// Containment: `A₁(w) ⊆ A₂(w)` for every `w`? On violation returns a
/// counterexample (a word and a position selected by `A₁` but not `A₂`).
pub fn containment(a1: &StringQa, a2: &StringQa) -> Result<(), StringWitness> {
    containment_with(a1, a2, &mut NoopObserver)
}

/// [`containment`] with an [`Observer`] (see [`non_emptiness_with`]; both
/// selection NFAs and the violation product are sized into
/// [`Series::MachineStates`]).
pub fn containment_with<O: Observer>(
    a1: &StringQa,
    a2: &StringQa,
    obs: &mut O,
) -> Result<(), StringWitness> {
    let sigma = a1.machine().alphabet_len();
    assert_eq!(sigma, a2.machine().alphabet_len(), "mismatched alphabets");
    obs.phase_start("crossing construction");
    let l1 = crossing::selection_nfa(a1);
    let l2 = crossing::selection_nfa(a2);
    obs.phase_end("crossing construction");
    obs.record(Series::MachineStates, l1.num_states() as u64);
    obs.record(Series::MachineStates, l2.num_states() as u64);
    obs.phase_start("violation product");
    let not_l2 = ops::complement(&l2).to_nfa();
    let violation: Nfa = l1.intersect(&not_l2);
    obs.phase_end("violation product");
    obs.record(Series::MachineStates, violation.num_states() as u64);
    obs.phase_start("witness search");
    let witness = violation.shortest_witness();
    obs.phase_end("witness search");
    match witness {
        None => Ok(()),
        Some(w) => {
            let w = decode_marked(&w, sigma);
            obs.record(Series::WitnessSize, w.word.len() as u64);
            Err(w)
        }
    }
}

/// Equivalence: do `A₁` and `A₂` compute the same query? On violation
/// returns a counterexample and which side selected it.
pub fn equivalence(a1: &StringQa, a2: &StringQa) -> Result<(), (StringWitness, bool)> {
    equivalence_with(a1, a2, &mut NoopObserver)
}

/// [`equivalence`] with an [`Observer`]: two instrumented containment
/// checks. A returned counterexample pairs with `qa-trace diff`: run both
/// automata on the witness word under a `RunTrace` each and diff the
/// recorded traces to see *where* the behaviors part ways.
pub fn equivalence_with<O: Observer>(
    a1: &StringQa,
    a2: &StringQa,
    obs: &mut O,
) -> Result<(), (StringWitness, bool)> {
    if let Err(w) = containment_with(a1, a2, obs) {
        return Err((w, true));
    }
    if let Err(w) = containment_with(a2, a1, obs) {
        return Err((w, false));
    }
    Ok(())
}

/// Language-level (tree-language analogue) equivalence of the underlying
/// 2DFAs — the contrast the paper draws between "same language" and "same
/// query".
pub fn language_equivalence(a1: &StringQa, a2: &StringQa) -> bool {
    let n1 = crossing::acceptance_nfa(a1.machine());
    let n2 = crossing::acceptance_nfa(a2.machine());
    ops::nfa_equivalent(&n1, &n2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_strings::StateId;
    use qa_twoway::string_qa::example_3_4_qa;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["0", "1"])
    }

    #[test]
    fn example_3_4_is_nonempty_with_minimal_witness() {
        let a = alpha();
        let qa = example_3_4_qa(&a);
        let w = non_emptiness(&qa).expect("selects something");
        // shortest: the single word "1" (position 1 from the right is odd)
        assert_eq!(w.word, vec![a.symbol("1")]);
        assert_eq!(w.position, 0);
        // verify the witness against the semantics
        assert!(qa.query(&w.word).unwrap().contains(&w.position));
    }

    #[test]
    fn deselected_automaton_is_empty() {
        let a = alpha();
        let mut qa = example_3_4_qa(&a);
        qa.set_selecting(StateId::from_index(1), a.symbol("1"), false);
        assert!(non_emptiness(&qa).is_none());
    }

    #[test]
    fn containment_of_restricted_selection() {
        let a = alpha();
        let full = example_3_4_qa(&a);
        // `less`: same machine, but selects nothing
        let mut less = example_3_4_qa(&a);
        less.set_selecting(StateId::from_index(1), a.symbol("1"), false);
        assert!(containment(&less, &full).is_ok());
        let err = containment(&full, &less).unwrap_err();
        assert!(full.query(&err.word).unwrap().contains(&err.position));
        assert!(!less.query(&err.word).unwrap().contains(&err.position));
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_difference() {
        let a = alpha();
        let qa = example_3_4_qa(&a);
        assert!(equivalence(&qa, &qa.clone()).is_ok());
        let mut other = example_3_4_qa(&a);
        // also select 0s at odd positions
        other.set_selecting(StateId::from_index(1), a.symbol("0"), true);
        let (w, first_selects) = equivalence(&qa, &other).unwrap_err();
        assert!(!first_selects, "the enlarged side selects the extra pair");
        assert!(other.query(&w.word).unwrap().contains(&w.position));
    }

    #[test]
    fn same_language_different_query_proposition() {
        // Two automata over the same (universal) language computing
        // different queries — the paper's central distinction.
        let a = alpha();
        let odd = example_3_4_qa(&a);
        let mut even = example_3_4_qa(&a);
        // select 1s on EVEN positions from the right instead (state s2)
        even.set_selecting(StateId::from_index(1), a.symbol("1"), false);
        even.set_selecting(StateId::from_index(2), a.symbol("1"), true);
        assert!(language_equivalence(&odd, &even));
        assert!(equivalence(&odd, &even).is_err());
    }

    #[test]
    fn witnesses_agree_with_direct_simulation() {
        // cross-check every decision against brute force on short words
        let a = alpha();
        let qa = example_3_4_qa(&a);
        let brute: Vec<(Vec<Symbol>, usize)> = {
            let mut out = Vec::new();
            for len in 0..=4usize {
                for mask in 0..(1usize << len) {
                    let w: Vec<Symbol> = (0..len)
                        .map(|i| Symbol::from_index((mask >> i) & 1))
                        .collect();
                    for p in qa.query(&w).unwrap() {
                        out.push((w.clone(), p));
                    }
                }
            }
            out
        };
        assert!(!brute.is_empty());
        let w = non_emptiness(&qa).unwrap();
        assert!(brute.contains(&(w.word, w.position)));
    }
}
