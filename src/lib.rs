//! # query-automata
//!
//! A Rust implementation of **Query Automata** (Frank Neven & Thomas
//! Schwentick, PODS 1999): deterministic two-way automata over strings,
//! ranked trees and unranked trees, extended with *selection functions* so
//! that a run computes a unary query — a set of positions or nodes — rather
//! than just accepting or rejecting.
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`base`] | alphabets, symbols, errors | — |
//! | [`strings`] | NFA/DFA, regexes, slender `x y* z` languages | §2.2, §5 |
//! | [`twoway`] | 2DFA, string query automata, GSQA, behavior functions, Shepherdson, crossing sequences, Hopcroft–Ullman composition | §3 |
//! | [`trees`] | arena trees, s-expressions, FCNS encoding | §2.3 |
//! | [`core`] | bottom-up & two-way tree automata, ranked and (strong) unranked query automata | §2.3, §4, §5 |
//! | [`mso`] | MSO logic, naive semantics, compilation to automata, Figure 5/6 evaluation, QA synthesis | §2, §3–5 |
//! | [`decision`] | non-emptiness / containment / equivalence, corridor tiling | §6 |
//! | [`obs`] | zero-cost [`Observer`](obs::Observer) instrumentation, [`Metrics`](obs::Metrics), [`RunTrace`](obs::RunTrace) | — |
//! | [`probe`] | selection provenance ([`ProvenanceObserver`](probe::ProvenanceObserver)), Chrome trace-event / Prometheus exports, trace diffing, the `qa-trace` CLI | §3–5 certificates |
//! | [`flight`] | always-on telemetry: [`FlightRecorder`](flight::FlightRecorder) ring, [`Watchdog`](flight::Watchdog) budgets, deterministic sampling, the `qa-fleet` batch runner | — |
//! | [`par`] | parallel batch evaluation ([`par_batch`](par::par_batch) work-stealing executor) with per-worker [`BehaviorCache`](par::BehaviorCache) memoization | §3.9, §5.11, §6 at batch scale |
//! | [`pulse`] | live ops surface: std-only HTTP [`PulseServer`](pulse::PulseServer) (`/metrics`, health, `/flight`, `/profile`), HTTP client + Prometheus parser for federation, [`SpanProfiler`](pulse::SpanProfiler) flamegraphs, opt-in [`CountingAlloc`](pulse::CountingAlloc) heap accounting | — |
//! | [`mesh`] | multi-process fleets: [`run_mesh`](mesh::run_mesh) coordinator sharding jobs over spawned workers, federated metrics/profiles/flight dumps, liveness timelines, chaos-tolerant reassignment | — |
//! | [`sentinel`] | embedded time-series rings ([`SeriesStore`](sentinel::SeriesStore)), window queries (rate/delta/quantile), declarative [`AlertRule`](sentinel::AlertRule)s with SLO burn-rate, deterministic [`Replay`](sentinel::Replay) alerting | — |
//! | [`serve`] | resident query serving: [`DocStore`](serve::DocStore) + [`QueryCache`](serve::QueryCache) behind a `PUT /doc` / `POST /query` HTTP API ([`ServeDaemon`](serve::ServeDaemon)), admission control, soak harness | §4–5 served live |
//! | [`xml`] | XML subset, DTDs, validation (Figures 1–4) | §1 |
//!
//! ## Quickstart
//!
//! ```
//! use query_automata::prelude::*;
//!
//! // The Example 5.14 strong query automaton: select every 1-labeled leaf
//! // with no 1-labeled node among its left siblings.
//! let sigma = Alphabet::from_names(["0", "1"]);
//! let qa = example_5_14(&sigma);
//!
//! let mut names = sigma.clone();
//! let tree = from_sexpr("(0 0 1 (1 1) 0 1)", &mut names).unwrap();
//! let selected = qa.query(&tree).unwrap();
//! // the first 1-leaf at depth 1 (index 2 in the child list) and the first
//! // 1-leaf inside the inner node
//! assert_eq!(selected.len(), 2);
//! ```

pub use qa_base as base;
pub use qa_core as core;
pub use qa_decision as decision;
pub use qa_flight as flight;
pub use qa_mesh as mesh;
pub use qa_mso as mso;
pub use qa_obs as obs;
pub use qa_par as par;
pub use qa_probe as probe;
pub use qa_pulse as pulse;
pub use qa_sentinel as sentinel;
pub use qa_serve as serve;
pub use qa_strings as strings;
pub use qa_trees as trees;
pub use qa_twoway as twoway;
pub use qa_xml as xml;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use qa_base::{Alphabet, Error, Result, Symbol};
    pub use qa_core::ranked::query::example_4_4;
    pub use qa_core::ranked::twoway::example_4_2;
    pub use qa_core::ranked::{Dbta, Nbta, RankedQa, TwoWayRanked, TwoWayRankedBuilder};
    pub use qa_core::unranked::query::{example_5_14, example_5_9};
    pub use qa_core::unranked::{
        Dbtau, Nbtau, StayRule, StrongQa, TwoWayUnranked, TwoWayUnrankedBuilder, UnrankedQa,
    };
    pub use qa_flight::{Budget, FlightRecorder, Watchdog};
    pub use qa_mso::{parse as parse_mso, Formula};
    pub use qa_obs::{Metrics, NoopObserver, Observer, RunTrace};
    pub use qa_par::{par_batch, par_evaluate, BehaviorCache, Job, Outcome};
    pub use qa_probe::{Explanation, ProvenanceObserver};
    pub use qa_pulse::{PulseServer, PulseState, SpanProfiler};
    pub use qa_trees::sexpr::{from_sexpr, to_sexpr};
    pub use qa_trees::{NodeId, Tree};
    pub use qa_twoway::{Bimachine, Gsqa, StringQa, TwoDfa, TwoDfaBuilder};
    pub use qa_xml::{parse_document, Dtd};
}
