//! Shared workload generators for the benchmark harness.
//!
//! One bench target per experiment id (see DESIGN.md §5 and
//! EXPERIMENTS.md): the paper has no measured tables, so each bench
//! regenerates the *shape* of one of its algorithmic/complexity claims.

use qa_base::{Alphabet, Symbol};
use qa_trees::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Standard Criterion settings: short, stable runs so the whole harness
/// finishes in minutes.
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

/// A bibliography document with `k` copies of the Figure 1 entries.
pub fn bibliography_of_size(k: usize) -> String {
    let book = r#"<book><author>S. Abiteboul</author><author>R. Hull</author><author>V. Vianu</author><title>Foundations of Databases</title><publisher>Addison-Wesley</publisher><year>1995</year></book>"#;
    let article = r#"<article><author>E. Codd</author><title>A Relational Model</title><journal>CACM</journal><year>1970</year></article>"#;
    let mut s = String::from("<bibliography>");
    for _ in 0..k {
        s.push_str(book);
        s.push_str(article);
    }
    s.push_str("</bibliography>");
    s
}

/// The `{0,1}` alphabet shared by the string/unranked benches.
pub fn binary_alphabet() -> Alphabet {
    Alphabet::from_names(["0", "1"])
}

/// The circuit alphabet of Examples 4.2/5.9.
pub fn circuit_alphabet() -> Alphabet {
    Alphabet::from_names(["AND", "OR", "0", "1"])
}

/// A random unranked tree with `n` nodes over `{0,1}`.
pub fn random_binary_labeled(n: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    qa_trees::generate::random(
        &mut rng,
        &[Symbol::from_index(0), Symbol::from_index(1)],
        n,
        None,
    )
}

/// A random full binary circuit with ~`inner` gates.
pub fn random_circuit(inner: usize, seed: u64) -> Tree {
    let a = circuit_alphabet();
    let mut rng = StdRng::seed_from_u64(seed);
    qa_trees::generate::random_full_binary(
        &mut rng,
        &[a.symbol("AND"), a.symbol("OR")],
        &[a.symbol("0"), a.symbol("1")],
        inner,
    )
}

/// A random word of length `n` over `{0,1}`.
pub fn random_word(n: usize, seed: u64) -> Vec<Symbol> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Symbol::from_index(rng.gen_range(0..2)))
        .collect()
}

/// A chain-shaped `Nbtau` with `k` states whose witness is a `k`-node
/// chain — the Lemma 5.2 scaling family.
pub fn chain_nbtau(k: usize) -> qa_core::unranked::Nbtau {
    use qa_strings::Regex;
    let mut n = qa_core::unranked::Nbtau::new(1);
    let states: Vec<_> = (0..k).map(|_| n.add_state()).collect();
    n.set_final(states[k - 1], true);
    let x = Symbol::from_index(0);
    n.set_language(states[0], x, Regex::Epsilon.to_nfa(k))
        .unwrap();
    for i in 1..k {
        n.set_language(
            states[i],
            x,
            Regex::Sym(Symbol::from_index(states[i - 1].index())).to_nfa(k),
        )
        .unwrap();
    }
    n
}
