//! DTD validation — directly and through unranked tree automata.
//!
//! "This is no loss of generality, as tree automata can easily determine
//! whether the input tree is a derivation tree of a given (E)CFG" — the
//! compiled route builds an [`Nbtau`] whose transition language for each
//! element is its content model; the direct route walks the tree and
//! produces a useful error message. They are property-tested to agree.

use qa_base::{Error, Result, Symbol};
use qa_core::unranked::Nbtau;
use qa_strings::StateId;
use qa_trees::Tree;

use crate::dtd::Dtd;
use crate::parser::PCDATA;

/// Validate `tree` against `dtd` directly; errors name the first offending
/// element.
pub fn validate(dtd: &Dtd, tree: &Tree) -> Result<()> {
    let a = &dtd.alphabet;
    if tree.label(tree.root()) != dtd.root {
        return Err(Error::invalid(format!(
            "root is <{}>, expected <{}>",
            a.name(tree.label(tree.root())),
            a.name(dtd.root)
        )));
    }
    let pcdata = a.symbol(PCDATA);
    for v in tree.preorder() {
        let label = tree.label(v);
        if label == pcdata {
            if !tree.is_leaf(v) {
                return Err(Error::invalid("#pcdata node with children"));
            }
            continue;
        }
        let Some(model) = dtd.model(label) else {
            return Err(Error::invalid(format!(
                "element <{}> is not declared",
                a.name(label)
            )));
        };
        let children: Vec<Symbol> = tree.children(v).iter().map(|&c| tree.label(c)).collect();
        if !model.matches(a.len(), &children) {
            return Err(Error::invalid(format!(
                "content of <{}> does not match its model: [{}]",
                a.name(label),
                a.render(&children)
            )));
        }
    }
    Ok(())
}

/// Compile `dtd` into an unranked bottom-up tree automaton accepting
/// exactly its valid documents.
///
/// States: one per declared element, plus one for `#pcdata`. The transition
/// language of the element state on the element label is the content model
/// with element names replaced by their states.
pub fn to_automaton(dtd: &Dtd) -> Result<Nbtau> {
    let a = &dtd.alphabet;
    let mut n = Nbtau::new(a.len());
    // state for each symbol of the alphabet (element or pcdata); undeclared
    // elements simply get no transitions.
    let states: Vec<StateId> = (0..a.len()).map(|_| n.add_state()).collect();
    let pcdata = a.symbol(PCDATA);
    n.set_language(
        states[pcdata.index()],
        pcdata,
        qa_strings::Regex::Epsilon.to_nfa(a.len()),
    )?;
    for (&elem, model) in &dtd.models {
        // content model symbols are alphabet symbols; the transition
        // language ranges over *states*, which we indexed identically.
        let relabeled = relabel(model);
        n.set_language(states[elem.index()], elem, relabeled.to_nfa(a.len()))?;
    }
    n.set_final(states[dtd.root.index()], true);
    Ok(n)
}

/// Content models talk about alphabet symbols; transition languages talk
/// about states. The two are index-aligned, so this is the identity — kept
/// explicit to make the state/symbol distinction visible.
fn relabel(model: &qa_strings::Regex) -> qa_strings::Regex {
    model.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::bibliography;
    use crate::parser::parse_with_alphabet;

    #[test]
    fn figure_1_validates_against_figure_2() {
        let (doc, dtd) = bibliography().unwrap();
        validate(&dtd, &doc.tree).unwrap();
        let auto = to_automaton(&dtd).unwrap();
        assert!(auto.accepts(&doc.tree));
    }

    #[test]
    fn automaton_agrees_with_direct_validation() {
        let (doc, dtd) = bibliography().unwrap();
        let auto = to_automaton(&dtd).unwrap();
        let mut alphabet = doc.alphabet.clone();
        for (xml, ok) in [
            // a book without a publisher
            (
                "<bibliography><book><author>x</author><title>t</title><year>y</year></book></bibliography>",
                false,
            ),
            // minimal valid article
            (
                "<bibliography><article><author>x</author><title>t</title><journal>j</journal><year>y</year></article></bibliography>",
                true,
            ),
            // empty bibliography violates (book|article)+
            ("<bibliography></bibliography>", false),
            // journal inside a book
            (
                "<bibliography><book><author>x</author><title>t</title><journal>j</journal><year>y</year></book></bibliography>",
                false,
            ),
        ] {
            let d = parse_with_alphabet(xml, &mut alphabet).unwrap();
            assert_eq!(validate(&dtd, &d.tree).is_ok(), ok, "direct: {xml}");
            assert_eq!(auto.accepts(&d.tree), ok, "automaton: {xml}");
        }
    }

    #[test]
    fn wrong_root_is_rejected() {
        let (_, dtd) = bibliography().unwrap();
        let mut alphabet = dtd.alphabet.clone();
        let d = parse_with_alphabet("<book></book>", &mut alphabet).unwrap();
        assert!(validate(&dtd, &d.tree).is_err());
    }

    #[test]
    fn dtd_nonemptiness_via_lemma_5_2() {
        // the DTD language is non-empty, and Lemma 5.2's algorithm finds a
        // minimal valid document.
        let (_, dtd) = bibliography().unwrap();
        let auto = to_automaton(&dtd).unwrap();
        assert!(qa_core::unranked::emptiness::is_nonempty(&auto));
        let w = qa_core::unranked::emptiness::witness(&auto).unwrap();
        assert!(auto.accepts(&w));
        validate(&dtd, &w).unwrap();
    }
}
