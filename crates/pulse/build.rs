//! Captures the compiler version at build time so `/metrics` can expose a
//! `qa_build_info{version,rustc}` gauge attributing scraped fleets to the
//! exact toolchain that produced them. No crates.io dependencies: the
//! version string comes from running the same `rustc` cargo is using.

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    println!("cargo:rerun-if-env-changed=RUSTC");
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=QA_RUSTC_VERSION={version}");
}
