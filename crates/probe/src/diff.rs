//! Trace diffing: find the first configuration where two recorded runs
//! diverge — the debugging primitive for equivalence counterexamples
//! (Section 6 procedures produce a witness word; diffing the two machines'
//! traces on it shows *where* their behaviors part ways).

use qa_obs::json::Value;
use qa_obs::TraceConfig;

/// The first point where two traces disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the configuration streams (0-based step).
    pub index: usize,
    /// Configuration of the first trace at that step (`None` = it ended).
    pub a: Option<TraceConfig>,
    /// Configuration of the second trace at that step (`None` = it ended).
    pub b: Option<TraceConfig>,
}

fn configs_of(trace: &Value) -> Result<Vec<TraceConfig>, String> {
    let arr = trace
        .get("configs")
        .and_then(Value::as_arr)
        .ok_or("trace report has no \"configs\" array")?;
    arr.iter()
        .map(|c| {
            Ok(TraceConfig {
                state: c
                    .get("state")
                    .and_then(Value::as_u64)
                    .ok_or("config without state")? as u32,
                pos: c
                    .get("pos")
                    .and_then(Value::as_u64)
                    .ok_or("config without pos")? as u32,
                dir: c
                    .get("dir")
                    .and_then(Value::as_f64)
                    .ok_or("config without dir")? as i8,
            })
        })
        .collect()
}

/// Compare two parsed `RunTrace::to_json` documents configuration by
/// configuration. Returns `Ok(None)` when the streams are identical, and
/// the first diverging step otherwise (a longer trace diverges from a
/// shorter identical prefix at the shorter one's end).
pub fn first_divergence(a: &Value, b: &Value) -> Result<Option<Divergence>, String> {
    let (ca, cb) = (configs_of(a)?, configs_of(b)?);
    let mut ia = ca.iter();
    let mut ib = cb.iter();
    let mut index = 0usize;
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => return Ok(None),
            (x, y) if x == y => index += 1,
            (x, y) => {
                return Ok(Some(Divergence {
                    index,
                    a: x.copied(),
                    b: y.copied(),
                }))
            }
        }
    }
}

/// Counter totals that differ between two trace/metrics reports, as
/// `(name, a, b)` triples in the first report's key order (keys only in the
/// second report follow). Missing counters count as 0.
pub fn counter_drift(a: &Value, b: &Value) -> Vec<(String, u64, u64)> {
    let get = |v: &Value, k: &str| -> u64 {
        v.get("counters")
            .and_then(|c| c.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let mut keys: Vec<String> = Vec::new();
    for v in [a, b] {
        if let Some(obj) = v.get("counters").and_then(Value::as_obj) {
            for (k, _) in obj {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    keys.into_iter()
        .filter_map(|k| {
            let (va, vb) = (get(a, &k), get(b, &k));
            (va != vb).then_some((k, va, vb))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::json::parse;
    use qa_obs::{Counter, Observer, RunTrace};

    fn trace(steps: &[(u32, u32, i8)]) -> Value {
        let mut t = RunTrace::new();
        for &(s, p, d) in steps {
            t.config(s, p, d);
        }
        parse(&t.to_json()).unwrap()
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = trace(&[(0, 0, 1), (0, 1, 1), (1, 2, -1)]);
        assert_eq!(first_divergence(&a, &a).unwrap(), None);
    }

    #[test]
    fn pinpoints_first_differing_step() {
        let a = trace(&[(0, 0, 1), (0, 1, 1), (1, 2, -1)]);
        let b = trace(&[(0, 0, 1), (0, 1, 1), (2, 2, -1)]);
        let d = first_divergence(&a, &b).unwrap().unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.a.unwrap().state, 1);
        assert_eq!(d.b.unwrap().state, 2);
    }

    #[test]
    fn shorter_trace_diverges_at_its_end() {
        let a = trace(&[(0, 0, 1)]);
        let b = trace(&[(0, 0, 1), (0, 1, 1)]);
        let d = first_divergence(&a, &b).unwrap().unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.a, None);
        assert_eq!(d.b.unwrap().pos, 1);
    }

    #[test]
    fn counter_drift_reports_differences() {
        let mut t1 = RunTrace::new();
        t1.count(Counter::Steps, 5);
        t1.count(Counter::TableLookups, 2);
        let mut t2 = RunTrace::new();
        t2.count(Counter::Steps, 5);
        t2.count(Counter::HeadReversals, 1);
        let a = parse(&t1.to_json()).unwrap();
        let b = parse(&t2.to_json()).unwrap();
        let drift = counter_drift(&a, &b);
        assert!(drift.contains(&("table_lookups".to_string(), 2, 0)));
        assert!(drift.contains(&("head_reversals".to_string(), 0, 1)));
        assert!(!drift.iter().any(|(k, _, _)| k == "steps"));
    }
}
