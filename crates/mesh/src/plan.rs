//! [`ShardPlan`]: the deterministic assignment of fleet jobs to shards.
//!
//! A fleet's job grid is `queries × docs`, flattened to global indices
//! `qi * docs + di` (the same indexing `qa-fleet` uses for its slots).
//! The plan deals those indices round-robin over `shards` workers:
//! job `j` belongs to shard `j % shards`. Round-robin (rather than
//! contiguous ranges) keeps every shard's workload mix identical — each
//! worker sees every query kind — so per-worker step counts are
//! comparable and a lost shard is never "all the expensive queries".
//!
//! The plan is pure arithmetic shared by coordinator and tests; the
//! worker side reimplements nothing (it filters its spec list with the
//! same `% shards` predicate).

/// Assignment of `jobs` global job indices to `shards` round-robin shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (worker processes). At least 1.
    pub shards: usize,
    /// Total number of jobs in the grid.
    pub jobs: usize,
}

impl ShardPlan {
    /// Plan dealing `jobs` jobs over `shards` workers (`shards ≥ 1`).
    pub fn new(shards: usize, jobs: usize) -> ShardPlan {
        assert!(shards >= 1, "a mesh needs at least one shard");
        ShardPlan { shards, jobs }
    }

    /// The shard that owns global job `job`.
    pub fn shard_of(&self, job: usize) -> usize {
        job % self.shards
    }

    /// All global job indices owned by `shard`, ascending.
    pub fn jobs_for(&self, shard: usize) -> Vec<usize> {
        (0..self.jobs)
            .filter(|j| self.shard_of(*j) == shard)
            .collect()
    }

    /// Number of jobs owned by `shard`.
    pub fn len_for(&self, shard: usize) -> usize {
        self.jobs_for(shard).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partitions_the_grid() {
        let plan = ShardPlan::new(3, 10);
        let mut all: Vec<usize> = (0..3).flat_map(|s| plan.jobs_for(s)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(plan.jobs_for(0), vec![0, 3, 6, 9]);
        assert_eq!(plan.jobs_for(1), vec![1, 4, 7]);
        assert_eq!(plan.len_for(2), 3);
        for j in 0..10 {
            assert!(plan.jobs_for(plan.shard_of(j)).contains(&j));
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let plan = ShardPlan::new(1, 5);
        assert_eq!(plan.jobs_for(0), vec![0, 1, 2, 3, 4]);
    }
}
