//! Bottom-up unranked tree automata (Definition 5.1).

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::{Dfa, Nfa, StateId};
use qa_trees::Tree;

/// A nondeterministic bottom-up unranked tree automaton `(Q, Σ, F, δ)`:
/// each transition `δ(q, a)` is a *regular language* over `Q`, represented
/// by an [`Nfa`] whose alphabet is the automaton's own state set.
///
/// `q ∈ δ*(σ(t₁…tₙ))` iff some choice of `qᵢ ∈ δ*(tᵢ)` spells a word of
/// `δ(q, σ)`. Leaves use the ε-membership case.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_core::unranked::Nbtau;
/// use qa_trees::sexpr::from_sexpr;
/// let mut sigma = Alphabet::new();
/// sigma.intern("AND"); sigma.intern("OR"); sigma.intern("0"); sigma.intern("1");
/// let circuit = Nbtau::boolean_circuit(&sigma);
/// let t = from_sexpr("(OR (AND 1 1 0) 1 0)", &mut sigma).unwrap();
/// assert!(circuit.accepts(&t));
/// ```
#[derive(Clone, Debug)]
pub struct Nbtau {
    alphabet_len: usize,
    num_states: usize,
    finals: Vec<bool>,
    /// `δ(q, a)` as an NFA over the state alphabet; missing entry = ∅.
    delta: HashMap<(StateId, Symbol), Nfa>,
}

impl Nbtau {
    /// An automaton with no states (rejects everything).
    pub fn new(alphabet_len: usize) -> Self {
        Nbtau {
            alphabet_len,
            num_states: 0,
            finals: Vec::new(),
            delta: HashMap::new(),
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.num_states);
        self.num_states += 1;
        self.finals.push(false);
        id
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) {
        self.finals[state.index()] = is_final;
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// Define `δ(state, label)` as the language of `nfa` (over the state
    /// alphabet). Errors if the NFA's alphabet size differs from the current
    /// number of states — add all states first.
    pub fn set_language(&mut self, state: StateId, label: Symbol, nfa: Nfa) -> Result<()> {
        if nfa.alphabet_len() != self.num_states {
            return Err(Error::ill_formed(
                "NBTAu",
                format!(
                    "transition NFA alphabet {} != state count {}",
                    nfa.alphabet_len(),
                    self.num_states
                ),
            ));
        }
        self.delta.insert((state, label), nfa);
        Ok(())
    }

    /// The transition language `δ(state, label)`, if non-empty.
    pub fn language(&self, state: StateId, label: Symbol) -> Option<&Nfa> {
        self.delta.get(&(state, label))
    }

    /// Iterate over all defined transition languages, in `(state, label)`
    /// order — deterministic so fixpoint step counts and witness shapes are
    /// reproducible across runs (the bench_obs regression gate depends on
    /// this).
    pub fn languages(&self) -> impl Iterator<Item = (StateId, Symbol, &Nfa)> + '_ {
        let mut entries: Vec<(StateId, Symbol, &Nfa)> =
            self.delta.iter().map(|(&(q, a), n)| (q, a, n)).collect();
        entries.sort_by_key(|&(q, a, _)| (q.index(), a.index()));
        entries.into_iter()
    }

    /// `δ*(t)` at every node: `table[v]` is the sorted set of states
    /// assignable to the subtree rooted at `v`.
    pub fn run_table(&self, tree: &Tree) -> Vec<Vec<StateId>> {
        self.run_table_with(tree, &mut NoopObserver)
    }

    /// [`Nbtau::run_table`] with an [`Observer`]: each candidate-state NFA
    /// simulation is a [`Counter::TableLookups`], each state admitted at a
    /// node a [`Counter::Steps`] plus a [`Machine::Nbtau`]
    /// [`Observer::state_visit`]; the total admitted-state count lands in
    /// [`Series::RunSteps`]. With [`NoopObserver`] this monomorphizes to
    /// exactly `run_table`.
    pub fn run_table_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Vec<Vec<StateId>> {
        let mut table: Vec<Vec<StateId>> = vec![Vec::new(); tree.num_nodes()];
        let mut steps = 0u64;
        for v in tree.postorder() {
            let label = tree.label(v);
            let mut acc = Vec::new();
            for q_idx in 0..self.num_states {
                let q = StateId::from_index(q_idx);
                let Some(nfa) = self.language(q, label) else {
                    continue;
                };
                obs.count(Counter::TableLookups, 1);
                // Does δ(q, label) contain a word w with wᵢ ∈ table[childᵢ]?
                // Simulate the NFA set-wise over the children's state sets.
                let mut cur = nfa.epsilon_closure(nfa.initial_states());
                let mut dead = false;
                for &c in tree.children(v) {
                    let mut next: Vec<StateId> = Vec::new();
                    for &sym_state in &table[c.index()] {
                        for s in nfa.step(&cur, Symbol::from_index(sym_state.index())) {
                            if !next.contains(&s) {
                                next.push(s);
                            }
                        }
                    }
                    if next.is_empty() {
                        dead = true;
                        break;
                    }
                    next.sort_unstable();
                    cur = next;
                }
                if !dead && cur.iter().any(|&s| nfa.is_accepting(s)) {
                    steps += 1;
                    obs.count(Counter::Steps, 1);
                    obs.state_visit(Machine::Nbtau, q.index() as u32, label.index() as u32);
                    acc.push(q);
                }
            }
            table[v.index()] = acc;
        }
        obs.record(Series::RunSteps, steps);
        table
    }

    /// `δ*(t)` at the root.
    pub fn run(&self, tree: &Tree) -> Vec<StateId> {
        self.run_table(tree).swap_remove(tree.root().index())
    }

    /// Whether the automaton accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> bool {
        self.run(tree).iter().any(|&q| self.is_final(q))
    }

    /// Whether the automaton is deterministic: `δ(q, a) ∩ δ(q', a) = ∅` for
    /// all `q ≠ q'` (checked by product emptiness).
    pub fn is_deterministic(&self) -> bool {
        for a_idx in 0..self.alphabet_len {
            let a = Symbol::from_index(a_idx);
            let langs: Vec<(StateId, &Nfa)> = (0..self.num_states)
                .map(StateId::from_index)
                .filter_map(|q| self.language(q, a).map(|n| (q, n)))
                .collect();
            for i in 0..langs.len() {
                for j in i + 1..langs.len() {
                    if !langs[i].1.intersect(langs[j].1).is_empty() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Example 5.9's evaluation core as a one-way automaton: Boolean
    /// circuits with arbitrary fan-in over `{AND, OR, 0, 1}`, accepting
    /// those evaluating to 1. States: `q0` (evaluates 0), `q1` (evaluates 1).
    ///
    /// The alphabet must contain symbols named `AND`, `OR`, `0`, `1`.
    pub fn boolean_circuit(alphabet: &qa_base::Alphabet) -> Nbtau {
        use qa_strings::Regex;
        let and = alphabet.symbol("AND");
        let or = alphabet.symbol("OR");
        let zero = alphabet.symbol("0");
        let one = alphabet.symbol("1");
        let mut n = Nbtau::new(alphabet.len());
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_final(q1, true);
        let s0 = Regex::Sym(Symbol::from_index(q0.index()));
        let s1 = Regex::Sym(Symbol::from_index(q1.index()));
        let any = s0.clone().alt(s1.clone());
        // leaves: ε ∈ δ(q_b, b)
        n.set_language(q0, zero, Regex::Epsilon.to_nfa(2)).unwrap();
        n.set_language(q1, one, Regex::Epsilon.to_nfa(2)).unwrap();
        // AND: all ones → 1; at least one zero → 0
        n.set_language(q1, and, s1.clone().plus().to_nfa(2))
            .unwrap();
        n.set_language(
            q0,
            and,
            Regex::seq([any.clone().star(), s0.clone(), any.clone().star()]).to_nfa(2),
        )
        .unwrap();
        // OR: at least one one → 1; all zeros → 0
        n.set_language(
            q1,
            or,
            Regex::seq([any.clone().star(), s1, any.star()]).to_nfa(2),
        )
        .unwrap();
        n.set_language(q0, or, s0.plus().to_nfa(2)).unwrap();
        n
    }
}

/// A deterministic bottom-up unranked tree automaton.
///
/// Determinism is guaranteed *by construction*: each symbol `a` has one
/// total classifier DFA over the state alphabet, and an assignment from its
/// accepting classifier states to automaton states. `δ(q, a)` is then the
/// set of words the classifier maps to `q` — automatically pairwise
/// disjoint, as Definition 5.1 requires.
#[derive(Clone, Debug)]
pub struct Dbtau {
    alphabet_len: usize,
    num_states: usize,
    finals: Vec<bool>,
    /// One classifier per symbol.
    classifiers: Vec<Option<Dfa>>,
    /// `(symbol, classifier state) → automaton state`.
    assign: HashMap<(Symbol, StateId), StateId>,
}

impl Dbtau {
    /// An automaton with no states.
    pub fn new(alphabet_len: usize) -> Self {
        Dbtau {
            alphabet_len,
            num_states: 0,
            finals: Vec::new(),
            classifiers: vec![None; alphabet_len],
            assign: HashMap::new(),
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.num_states);
        self.num_states += 1;
        self.finals.push(false);
        id
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) {
        self.finals[state.index()] = is_final;
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// Install the classifier for `label`: a DFA over the state alphabet
    /// plus the mapping from classifier states to assigned automaton states.
    pub fn set_classifier(
        &mut self,
        label: Symbol,
        dfa: Dfa,
        assign: impl IntoIterator<Item = (StateId, StateId)>,
    ) -> Result<()> {
        if dfa.alphabet_len() != self.num_states {
            return Err(Error::ill_formed(
                "DBTAu",
                "classifier alphabet must equal the state count",
            ));
        }
        for (cs, q) in assign {
            self.assign.insert((label, cs), q);
        }
        self.classifiers[label.index()] = Some(dfa);
        Ok(())
    }

    /// `δ*(t_v)` for every node, if defined everywhere.
    pub fn run_table(&self, tree: &Tree) -> Option<Vec<StateId>> {
        self.run_table_with(tree, &mut NoopObserver)
    }

    /// [`Dbtau::run_table`] with an [`Observer`]: each classifier step over
    /// a child is a [`Counter::TableLookups`], each assigned node state a
    /// [`Counter::Steps`] plus a [`Machine::Dbtau`]
    /// [`Observer::state_visit`] and one [`Observer::transition_fired`] per
    /// folded child; assigned nodes land in [`Series::RunSteps`]. With
    /// [`NoopObserver`] this monomorphizes to exactly `run_table`.
    pub fn run_table_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Option<Vec<StateId>> {
        let mut table: Vec<Option<StateId>> = vec![None; tree.num_nodes()];
        let mut steps = 0u64;
        for v in tree.postorder() {
            let label = tree.label(v);
            let dfa = self.classifiers[label.index()].as_ref()?;
            let mut cs = dfa.initial();
            for &c in tree.children(v) {
                let q = table[c.index()]?;
                obs.count(Counter::TableLookups, 1);
                cs = dfa.next(cs, Symbol::from_index(q.index()))?;
            }
            let q2 = self.assign.get(&(label, cs)).copied();
            if let Some(q2) = q2 {
                steps += 1;
                obs.count(Counter::Steps, 1);
                obs.state_visit(Machine::Dbtau, q2.index() as u32, label.index() as u32);
                if obs.is_enabled() {
                    for &c in tree.children(v) {
                        if let Some(q) = table[c.index()] {
                            obs.transition_fired(
                                Machine::Dbtau,
                                q.index() as u32,
                                label.index() as u32,
                                q2.index() as u32,
                            );
                        }
                    }
                }
            }
            table[v.index()] = q2;
            table[v.index()]?;
        }
        obs.record(Series::RunSteps, steps);
        table.into_iter().collect()
    }

    /// `δ*(t)` at the root.
    pub fn run(&self, tree: &Tree) -> Option<StateId> {
        self.run_table(tree).map(|t| t[tree.root().index()])
    }

    /// Whether the automaton accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> bool {
        self.run(tree).is_some_and(|q| self.is_final(q))
    }

    /// View as an [`Nbtau`] (each `δ(q, a)` = classifier words assigned to
    /// `q`).
    pub fn to_nbtau(&self) -> Nbtau {
        let mut n = Nbtau::new(self.alphabet_len);
        for _ in 0..self.num_states {
            n.add_state();
        }
        for i in 0..self.num_states {
            let s = StateId::from_index(i);
            n.set_final(s, self.is_final(s));
        }
        for (a_idx, dfa) in self.classifiers.iter().enumerate() {
            let Some(dfa) = dfa else { continue };
            let label = Symbol::from_index(a_idx);
            for q_idx in 0..self.num_states {
                let q = StateId::from_index(q_idx);
                // language: words whose classifier state maps to q
                let mut d = dfa.clone();
                for cs_idx in 0..d.num_states() {
                    let cs = StateId::from_index(cs_idx);
                    d.set_accepting(cs, self.assign.get(&(label, cs)) == Some(&q));
                }
                if !d.is_empty() {
                    n.set_language(q, label, d.to_nfa())
                        .expect("same state count");
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    /// Reference evaluator for variadic circuits.
    fn eval(t: &Tree, a: &Alphabet) -> bool {
        let one = a.symbol("1");
        let and = a.symbol("AND");
        let vals = qa_trees::traverse::fold_bottom_up(t, |t, v, kids: &[bool]| {
            if t.is_leaf(v) {
                t.label(v) == one
            } else if t.label(v) == and {
                kids.iter().all(|&b| b)
            } else {
                kids.iter().any(|&b| b)
            }
        });
        vals[t.root().index()]
    }

    #[test]
    fn variadic_circuit_evaluation() {
        let mut a = alpha();
        let n = Nbtau::boolean_circuit(&a);
        for s in [
            "1",
            "0",
            "(AND 1 1 1 1)",
            "(AND 1 1 0 1)",
            "(OR 0 0 0)",
            "(OR 0 (AND 1 1) 0)",
            "(AND (OR 0 1) (OR 1) (AND 1 1 1))",
            "(OR (AND 1 0) (AND 0) (OR 0 0 0))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(n.accepts(&t), eval(&t, &a), "{s}");
        }
    }

    #[test]
    fn circuit_is_deterministic() {
        let a = alpha();
        let n = Nbtau::boolean_circuit(&a);
        assert!(n.is_deterministic());
    }

    #[test]
    fn nondeterministic_overlap_is_detected() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let mut n = Nbtau::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        // both δ(q0, x) and δ(q1, x) contain ε
        n.set_language(q0, x, qa_strings::Regex::Epsilon.to_nfa(2))
            .unwrap();
        n.set_language(q1, x, qa_strings::Regex::Epsilon.to_nfa(2))
            .unwrap();
        assert!(!n.is_deterministic());
    }

    #[test]
    fn run_table_exposes_subtree_states() {
        let mut a = alpha();
        let n = Nbtau::boolean_circuit(&a);
        let t = from_sexpr("(OR (AND 1 0) 1)", &mut a).unwrap();
        let table = n.run_table(&t);
        let and_node = t.child(t.root(), 0);
        assert_eq!(table[and_node.index()], vec![StateId::from_index(0)]);
        assert_eq!(table[t.root().index()], vec![StateId::from_index(1)]);
    }

    #[test]
    fn dbtau_classifier_form_agrees() {
        // Deterministic circuit evaluator in classifier form.
        let mut a = alpha();
        let mut d = Dbtau::new(a.len());
        let q0 = d.add_state();
        let q1 = d.add_state();
        d.set_final(q1, true);
        // classifier for AND: all-ones vs any-zero (and ε = all-ones… but a
        // leaf labeled AND is not a circuit; assign ε → none by giving the
        // empty word the all-ones class only for ops with children — for
        // simplicity accept it as q1 (vacuous AND).
        let mut and_dfa = Dfa::new(2);
        let all1 = and_dfa.add_state();
        let any0 = and_dfa.add_state();
        and_dfa.set_initial(all1);
        and_dfa.set_transition(all1, Symbol::from_index(1), all1);
        and_dfa.set_transition(all1, Symbol::from_index(0), any0);
        and_dfa.set_transition(any0, Symbol::from_index(0), any0);
        and_dfa.set_transition(any0, Symbol::from_index(1), any0);
        d.set_classifier(a.symbol("AND"), and_dfa.clone(), [(all1, q1), (any0, q0)])
            .unwrap();
        // OR: dual
        let mut or_dfa = Dfa::new(2);
        let all0 = or_dfa.add_state();
        let any1 = or_dfa.add_state();
        or_dfa.set_initial(all0);
        or_dfa.set_transition(all0, Symbol::from_index(0), all0);
        or_dfa.set_transition(all0, Symbol::from_index(1), any1);
        or_dfa.set_transition(any1, Symbol::from_index(0), any1);
        or_dfa.set_transition(any1, Symbol::from_index(1), any1);
        d.set_classifier(a.symbol("OR"), or_dfa, [(all0, q0), (any1, q1)])
            .unwrap();
        // leaves: 0 → q0, 1 → q1 (classifier on the empty child word)
        let mut leaf0 = Dfa::new(2);
        let z = leaf0.add_state();
        leaf0.set_initial(z);
        d.set_classifier(a.symbol("0"), leaf0.clone(), [(z, q0)])
            .unwrap();
        let mut leaf1 = Dfa::new(2);
        let o = leaf1.add_state();
        leaf1.set_initial(o);
        d.set_classifier(a.symbol("1"), leaf1, [(o, q1)]).unwrap();

        let n = Nbtau::boolean_circuit(&a);
        for s in [
            "1",
            "0",
            "(AND 1 1 0)",
            "(OR 0 0 1)",
            "(AND (OR 0 1) (AND 1 1))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(d.accepts(&t), n.accepts(&t), "{s}");
            assert_eq!(d.accepts(&t), eval(&t, &a), "{s}");
        }
        // round-trip through Nbtau
        let view = d.to_nbtau();
        assert!(view.is_deterministic());
        let t = from_sexpr("(AND 1 (OR 0 1))", &mut a).unwrap();
        assert_eq!(view.accepts(&t), d.accepts(&t));
    }
}
