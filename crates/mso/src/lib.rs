//! # qa-mso
//!
//! Monadic second-order logic over strings, ranked trees and unranked trees,
//! with the compilation pipelines behind the paper's expressiveness results:
//!
//! - [`ast`] / [`parser`]: MSO formulas (first-order and set variables,
//!   label/edge/order/membership atoms, derived predicates) with a text
//!   syntax.
//! - [`naive`]: direct model-checking semantics (exponential in set
//!   quantifiers) — the ground truth every compilation is property-tested
//!   against.
//! - [`compile_string`]: Büchi's construction (Theorem 2.5) — formulas to
//!   automata over the bit-extended alphabet `Σ × {0,1}ᵏ`, with
//!   minimization after every operation.
//! - [`compile_ranked`]: Doner/Thatcher–Wright (Theorem 2.8) for trees of a
//!   fixed rank.
//! - [`unranked`]: unranked MSO via the first-child/next-sibling encoding —
//!   atoms are translated to the binary encoding (Theorem 5.4's
//!   expressiveness, realized constructively).
//! - [`query_eval`]: unary queries `φ(x)`: the naive per-node strategy and
//!   the **two-pass algorithm of Figures 5/6** (bottom-up states, top-down
//!   contexts) computing all selected nodes in one pass each way.
//! - [`to_qa`]: Theorem 3.9, constructive direction — a unary string query
//!   compiled into a literal [`qa_twoway::StringQa`] via the
//!   Hopcroft–Ullman composition (Lemma 3.10).

pub mod ast;
pub mod compile_ranked;
pub mod compile_string;
pub mod naive;
pub mod parser;
pub mod query_eval;
pub mod to_qa;
pub mod unranked;

pub use ast::{Formula, Var};
pub use parser::parse;
pub use query_eval::PreparedUnary;
