//! In-process end-to-end tests for the pulse HTTP server: real sockets,
//! real request bytes, no child processes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use qa_obs::{Counter, Metrics, Observer};
use qa_pulse::{validate_prometheus, PulseServer, PulseState, SpanProfiler, Weight};

/// Minimal HTTP/1.1 request with an arbitrary method; returns
/// (status, head, body).
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

/// Minimal HTTP/1.1 GET; returns (status, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = request(addr, "GET", path);
    (status, body)
}

fn server_with_metrics() -> (PulseServer, Arc<PulseState>) {
    let metrics = Arc::new(Metrics::new());
    {
        let mut obs = metrics.observer();
        obs.count(Counter::Steps, 1234);
        obs.count(Counter::BudgetTrips, 1);
    }
    let state = PulseState::new(metrics, "qa_test");
    let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind loopback");
    (server, state)
}

#[test]
fn health_and_readiness_endpoints() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Not ready until the binary says so.
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 503);
    state.set_ready();
    let (status, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    server.shutdown();
}

#[test]
fn metrics_endpoint_sends_the_prometheus_exposition_content_type() {
    let (server, _state) = server_with_metrics();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let head = response.split_once("\r\n\r\n").expect("has headers").0;
    assert!(
        head.lines()
            .any(|l| l == "Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    server.shutdown();
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_matching_state_render() {
    let (server, state) = server_with_metrics();
    let (status, body) = get(server.local_addr(), "/metrics");
    assert_eq!(status, 200);
    validate_prometheus(&body).expect("scrape parses as Prometheus text");
    assert!(body.contains("qa_test_steps_total 1234"), "{body}");
    assert!(body.contains("qa_build_info{"), "{body}");
    // No counting allocator is installed in this test binary, so the
    // qa_heap_* gauges must be omitted (they are live process state).
    assert!(!body.contains("qa_heap_"), "{body}");
    // The endpoint and the post-run file render are the same bytes.
    assert_eq!(body, state.metrics_text());
    server.shutdown();
}

#[test]
fn profile_endpoint_serves_collapsed_stacks() {
    let (server, state) = server_with_metrics();

    let mut profiler = SpanProfiler::new();
    profiler.phase_start("run");
    profiler.phase_start("selection scan");
    profiler.phase_end("selection scan");
    profiler.phase_end("run");
    state.merge_profile(&profiler.into_profile());

    let (status, body) = get(server.local_addr(), "/profile");
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    for line in body.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!path.is_empty());
        assert!(count.parse::<u64>().expect("integer weight") > 0, "{line}");
    }
    assert!(body.contains("run;selection_scan "), "{body}");
    assert_eq!(body, state.profile_collapsed(Weight::WallNanos));

    // ?weight=alloc selects the allocation weighting (empty here: no
    // counting allocator installed in this test binary).
    let (status, alloc_body) = get(server.local_addr(), "/profile?weight=alloc");
    assert_eq!(status, 200);
    assert_eq!(alloc_body, state.profile_collapsed(Weight::AllocBytes));

    server.shutdown();
}

#[test]
fn flight_endpoint_requires_a_registered_source() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, _) = get(addr, "/flight");
    assert_eq!(status, 404, "no source registered yet");

    state.set_flight_source(Box::new(|_tail| "{\"events\":[]}".to_string()));
    let (status, body) = get(addr, "/flight");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"events\":[]}");

    server.shutdown();
}

#[test]
fn flight_and_events_take_a_bounds_checked_tail_limit() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    // The sources receive the parsed ?n=K (or the bounds-checked default).
    state.set_flight_source(Box::new(|tail| format!("{{\"tail\":{tail}}}")));
    state.set_events_source(Box::new(|tail| format!("tail={tail}\n")));

    let (status, body) = get(addr, "/flight?n=7");
    assert_eq!((status, body.as_str()), (200, "{\"tail\":7}"));
    let (status, body) = get(addr, "/events?n=7");
    assert_eq!((status, body.as_str()), (200, "tail=7\n"));

    // No ?n → the default tail; huge ?n → clamped to the cap.
    let (_, body) = get(addr, "/flight");
    assert_eq!(body, format!("{{\"tail\":{}}}", qa_pulse::DEFAULT_TAIL));
    let (_, body) = get(addr, "/events?n=999999999");
    assert_eq!(body, format!("tail={}\n", qa_pulse::MAX_TAIL));

    // Unparseable or zero n is a client error, not a silent default.
    for bad in ["/events?n=0", "/events?n=-1", "/flight?n=ten", "/flight?n="] {
        let (status, _) = get(addr, bad);
        assert_eq!(status, 400, "{bad} must be rejected");
    }

    server.shutdown();
}

#[test]
fn events_endpoint_requires_a_registered_ring() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, _) = get(addr, "/events");
    assert_eq!(status, 404, "no ring registered yet");

    state.set_events_source(Box::new(|_tail| "{\"job\":0}\n{\"job\":1}\n".to_string()));
    let (status, body) = get(addr, "/events");
    assert_eq!(status, 200);
    assert_eq!(body.lines().count(), 2, "{body}");

    server.shutdown();
}

#[test]
fn series_endpoint_passes_filter_and_tail_to_the_source() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, _) = get(addr, "/series");
    assert_eq!(status, 404, "no sentinel registered yet");

    state.set_series_source(Box::new(|name, tail| {
        format!("{{\"name\":{:?},\"tail\":{tail}}}", name.unwrap_or("*"))
    }));
    let (status, body) = get(addr, "/series?name=qa_fleet_jobs_total&n=9");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"name\":\"qa_fleet_jobs_total\",\"tail\":9}");

    // No filter (or an empty one) dumps every series at the default tail.
    let (_, body) = get(addr, "/series");
    assert_eq!(
        body,
        format!("{{\"name\":\"*\",\"tail\":{}}}", qa_pulse::DEFAULT_TAIL)
    );
    let (_, body) = get(addr, "/series?name=&n=2");
    assert_eq!(body, "{\"name\":\"*\",\"tail\":2}");

    let (status, _) = get(addr, "/series?n=0");
    assert_eq!(status, 400, "zero tail is a client error");

    server.shutdown();
}

#[test]
fn alerts_endpoint_serves_the_registered_engine_state() {
    let (server, state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, _) = get(addr, "/alerts");
    assert_eq!(status, 404, "no sentinel registered yet");

    state.set_alerts_source(Box::new(|| "{\"firing\":[\"hot\"]}".to_string()));
    let (status, body) = get(addr, "/alerts");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"firing\":[\"hot\"]}");

    server.shutdown();
}

#[test]
fn non_get_methods_on_known_routes_get_405_with_allow() {
    let (server, _state) = server_with_metrics();
    let addr = server.local_addr();

    for path in ["/", "/healthz", "/metrics", "/flight", "/events?n=3"] {
        let (status, head, _) = request(addr, "POST", path);
        assert_eq!(status, 405, "POST {path}");
        assert!(
            head.lines().any(|l| l == "Allow: GET"),
            "POST {path}: {head}"
        );
    }
    let (status, _, _) = request(addr, "DELETE", "/quit");
    assert_eq!(status, 405, "non-GET /quit must not stop the server");
    assert!(server.is_running(), "only GET /quit stops the accept loop");

    // Unknown paths stay 404 whatever the method.
    let (status, _, _) = request(addr, "POST", "/definitely-not-a-route");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn unknown_routes_get_404_and_quit_stops_the_server() {
    let (server, _state) = server_with_metrics();
    let addr = server.local_addr();

    let (status, _) = get(addr, "/definitely-not-a-route");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/quit");
    assert_eq!((status, body.as_str()), (200, "bye\n"));

    // The accept loop exits promptly after /quit.
    for _ in 0..50 {
        if !server.is_running() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!server.is_running());
    server.shutdown();
}
