//! Write MSO, get automata: the Büchi / Doner–Thatcher–Wright pipelines and
//! the constructive Theorem 3.9 synthesis.
//!
//! ```sh
//! cargo run --example mso_queries
//! ```

use query_automata::mso::{compile_string, naive, query_eval, to_qa, unranked};
use query_automata::prelude::*;

fn main() -> Result<()> {
    let sigma = Alphabet::from_names(["a", "b"]);

    // ── Sentences on strings (Theorem 2.5) ───────────────────────────────
    let mut names = sigma.clone();
    let phi = parse_mso(
        "all x. all y. (edge(x, y) -> !(label(x, b) & label(y, b)))",
        &mut names,
    )?;
    let dfa = compile_string::compile_sentence(&phi, sigma.len())?;
    println!(
        "\"no two consecutive b\" compiled to a {}-state DFA",
        dfa.num_states()
    );
    for text in ["abab", "abba", ""] {
        let w = names.word(text);
        println!(
            "  {text:?}: automaton={} naive={}",
            dfa.accepts(&w),
            naive::check(naive::Structure::Word(&w), &phi)?
        );
    }

    // ── Unary query → literal two-way query automaton (Theorem 3.9) ─────
    let mut names2 = sigma.clone();
    let psi = parse_mso("(root(v) | leaf(v)) & (ex x. label(x, b))", &mut names2)?;
    let marked = compile_string::compile_unary(&psi, "v", sigma.len())?;
    let synthesized: StringQa = to_qa::string_query_to_qa(&marked, sigma.len())?;
    println!(
        "\nRemark 3.3's query synthesized as a 2DFA with {} states:",
        synthesized.machine().num_states()
    );
    for text in ["aba", "aaa", "b"] {
        let w = names2.word(text);
        println!("  {text:?} selects {:?}", synthesized.query(&w)?);
    }

    // ── Unranked trees (Theorems 5.4/5.17) ───────────────────────────────
    let mut names3 = sigma.clone();
    let tree = from_sexpr("(a b (a b b) a b)", &mut names3)?;
    let chi = parse_mso("label(v, b) & !(ex w. (w < v & label(w, b)))", &mut names3)?;
    let automaton = unranked::compile_unary(&chi, "v", sigma.len())?;
    let fast = query_eval::eval_unary_unranked(&automaton, &tree, sigma.len());
    let slow = naive::query(naive::Structure::Tree(&tree), &chi, "v")?;
    println!(
        "\n\"first b among siblings\" on {}:\n  two-pass (Fig. 6): {fast:?}\n  naive MSO:        {slow:?}",
        tree.render(&names3)
    );
    Ok(())
}
