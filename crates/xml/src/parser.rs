//! A parser for the XML subset the paper abstracts over.
//!
//! Supported: elements `<name> … </name>`, self-closing `<name/>`, text
//! content, comments `<!-- … -->`, and a leading `<?xml … ?>` declaration.
//! Not supported (not needed for the abstraction): attributes, namespaces,
//! entities, CDATA. Text content becomes `#pcdata` leaves; pure-whitespace
//! text is dropped. This is exactly the Figure 1 → Figure 3/4 step.

use qa_base::{Alphabet, Error, Result, Symbol};
use qa_trees::{NodeId, Tree};

/// The `#pcdata` leaf label name.
pub const PCDATA: &str = "#pcdata";

/// A parsed document: the abstracted tree, the element alphabet (including
/// [`PCDATA`]), and the text content of each `#pcdata` leaf.
#[derive(Clone, Debug)]
pub struct Document {
    /// The abstracted element tree.
    pub tree: Tree,
    /// Element names + `#pcdata`.
    pub alphabet: Alphabet,
    /// `texts[node.index()]` = the text of that `#pcdata` leaf, if any.
    pub texts: Vec<Option<String>>,
}

impl Document {
    /// The [`PCDATA`] symbol.
    pub fn pcdata(&self) -> Symbol {
        self.alphabet.symbol(PCDATA)
    }

    /// The text under a `#pcdata` node.
    pub fn text_of(&self, v: NodeId) -> Option<&str> {
        self.texts.get(v.index()).and_then(|t| t.as_deref())
    }
}

/// Parse a document, interning element names into a fresh alphabet.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut alphabet = Alphabet::new();
    alphabet.intern(PCDATA);
    parse_with_alphabet(input, &mut alphabet)
}

/// Parse a document using (and extending) an existing alphabet, which must
/// already intern [`PCDATA`].
pub fn parse_with_alphabet(input: &str, alphabet: &mut Alphabet) -> Result<Document> {
    let pcdata = alphabet.symbol(PCDATA);
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut tree: Option<Tree> = None;
    let mut texts: Vec<Option<String>> = Vec::new();
    // stack of open elements
    let mut open: Vec<(String, NodeId)> = Vec::new();

    let err = |pos: usize, msg: &str| Error::parse("xml", format!("{msg} at byte {pos}"));

    let record_text = |tree: &mut Option<Tree>,
                       texts: &mut Vec<Option<String>>,
                       open: &[(String, NodeId)],
                       text: &str,
                       pos: usize|
     -> Result<()> {
        if text.trim().is_empty() {
            return Ok(());
        }
        let Some((_, parent)) = open.last() else {
            return Err(err(pos, "text outside the root element"));
        };
        let t = tree.as_mut().expect("open implies tree");
        let leaf = t.add_child(*parent, pcdata);
        if texts.len() <= leaf.index() {
            texts.resize(leaf.index() + 1, None);
        }
        texts[leaf.index()] = Some(text.trim().to_owned());
        Ok(())
    };

    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if input[pos..].starts_with("<!--") {
                let end = input[pos..]
                    .find("-->")
                    .ok_or_else(|| err(pos, "unterminated comment"))?;
                pos += end + 3;
                continue;
            }
            if input[pos..].starts_with("<?") {
                let end = input[pos..]
                    .find("?>")
                    .ok_or_else(|| err(pos, "unterminated processing instruction"))?;
                pos += end + 2;
                continue;
            }
            if input[pos..].starts_with("<!") {
                // DOCTYPE etc.: skip to the matching `>`
                let end = input[pos..]
                    .find('>')
                    .ok_or_else(|| err(pos, "unterminated declaration"))?;
                pos += end + 1;
                continue;
            }
            let tag_start = pos;
            let close = input[pos..]
                .find('>')
                .ok_or_else(|| err(pos, "unterminated tag"))?;
            let inner = &input[pos + 1..pos + close];
            pos += close + 1;
            if let Some(name) = inner.strip_prefix('/') {
                let name = name.trim();
                match open.pop() {
                    Some((opened, _)) if opened == name => {}
                    Some((opened, _)) => {
                        return Err(err(tag_start, &format!("</{name}> closes <{opened}>")))
                    }
                    None => return Err(err(tag_start, &format!("stray </{name}>"))),
                }
            } else {
                let self_closing = inner.ends_with('/');
                let name = inner.trim_end_matches('/').trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(err(tag_start, &format!("bad element name `{name}`")));
                }
                let sym = alphabet.intern(name);
                let node = match (&mut tree, open.last()) {
                    (None, _) => {
                        tree = Some(Tree::leaf(sym));
                        tree.as_ref().unwrap().root()
                    }
                    (Some(t), Some((_, parent))) => t.add_child(*parent, sym),
                    (Some(_), None) => return Err(err(tag_start, "second root element")),
                };
                if !self_closing {
                    open.push((name.to_owned(), node));
                }
            }
        } else {
            let next = input[pos..].find('<').unwrap_or(input.len() - pos);
            record_text(&mut tree, &mut texts, &open, &input[pos..pos + next], pos)?;
            pos += next;
        }
    }
    if let Some((name, _)) = open.last() {
        return Err(err(pos, &format!("unclosed <{name}>")));
    }
    let tree = tree.ok_or_else(|| err(0, "no root element"))?;
    texts.resize(tree.num_nodes(), None);
    Ok(Document {
        tree,
        alphabet: alphabet.clone(),
        texts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_document("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(doc.tree.render(&doc.alphabet), "(a b (c d))");
    }

    #[test]
    fn text_becomes_pcdata_leaves() {
        let doc = parse_document("<author>E. Codd</author>").unwrap();
        assert_eq!(doc.tree.render(&doc.alphabet), "(author #pcdata)");
        let leaf = doc.tree.child(doc.tree.root(), 0);
        assert_eq!(doc.text_of(leaf), Some("E. Codd"));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.tree.num_nodes(), 2);
    }

    #[test]
    fn comments_and_declarations_are_skipped() {
        let doc =
            parse_document("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>").unwrap();
        assert_eq!(doc.tree.render(&doc.alphabet), "(a b)");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_document("").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></b>").is_err());
        assert!(parse_document("</a>").is_err());
        assert!(parse_document("<a></a><b></b>").is_err());
        assert!(parse_document("text").is_err());
        assert!(parse_document("<a><b></a></b>").is_err());
    }

    #[test]
    fn mixed_content_order_is_preserved() {
        let doc = parse_document("<p>one<b/>two</p>").unwrap();
        let kids = doc.tree.children(doc.tree.root());
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.text_of(kids[0]), Some("one"));
        assert_eq!(doc.alphabet.name(doc.tree.label(kids[1])), "b");
        assert_eq!(doc.text_of(kids[2]), Some("two"));
    }
}
