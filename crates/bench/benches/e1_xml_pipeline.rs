//! E1 (Figures 1–4): the XML pipeline — parse, validate, query — scales
//! linearly in document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_xml_pipeline");
    // compile the query once (compilation cost is measured separately)
    let (doc0, dtd) = qa_xml::figures::bibliography().unwrap();
    let sigma = doc0.alphabet.len();
    let mut a = doc0.alphabet.clone();
    let phi = qa_mso::parse(
        "label(v, author) & (ex b. (label(b, book) & edge(b, v)))",
        &mut a,
    )
    .unwrap();
    let compiled = qa_mso::unranked::compile_unary(&phi, "v", sigma).unwrap();
    let automaton = qa_xml::validate::to_automaton(&dtd).unwrap();

    for k in [1usize, 4, 16, 64] {
        let xml = qa_bench::bibliography_of_size(k);
        group.bench_with_input(BenchmarkId::new("parse", k), &xml, |b, xml| {
            b.iter(|| {
                let mut al = doc0.alphabet.clone();
                qa_xml::parser::parse_with_alphabet(xml, &mut al).unwrap()
            })
        });
        let mut al = doc0.alphabet.clone();
        let doc = qa_xml::parser::parse_with_alphabet(&xml, &mut al).unwrap();
        group.bench_with_input(BenchmarkId::new("validate", k), &doc.tree, |b, t| {
            b.iter(|| assert!(automaton.accepts(t)))
        });
        group.bench_with_input(BenchmarkId::new("query", k), &doc.tree, |b, t| {
            b.iter(|| {
                let sel = qa_mso::query_eval::eval_unary_unranked(&compiled, t, sigma);
                assert_eq!(sel.len(), 3 * k);
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
