//! E2 (Figure 5 / Theorem 4.8): ranked unary-query evaluation — the
//! two-pass algorithm is linear, the naive per-node re-run quadratic.
//! Also the observability parity check: evaluation through the
//! `Observer`-generic entry point with `NoopObserver` must match the
//! plain entry point to within noise (they monomorphize to the same
//! code), while a live `MetricsObserver` shows the cost of counting.

use qa_base::Alphabet;
use qa_bench::Harness;
use qa_obs::{Metrics, NoopObserver};

fn main() {
    let mut h = Harness::new("e2_fig5_ranked_eval");
    let mut a = Alphabet::from_names(["s", "t"]);
    let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
    let d = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();

    for height in [4usize, 6, 8, 10] {
        let t = qa_trees::generate::complete(a.symbol("s"), 2, height);
        let n = t.num_nodes();
        let plain = h.bench(&format!("fig5_two_pass/{n}"), || {
            qa_mso::query_eval::eval_unary_ranked(&d, &t, 2).len()
        });
        let noop = h.bench(&format!("fig5_two_pass_noop_obs/{n}"), || {
            qa_mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut NoopObserver).len()
        });
        println!(
            "  noop-observer overhead at n={n}: {:+.1}%",
            (noop / plain - 1.0) * 100.0
        );
        let metrics = Metrics::new();
        h.bench(&format!("fig5_two_pass_metrics_obs/{n}"), || {
            qa_mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut metrics.observer()).len()
        });
        // naive is quadratic: keep it to the smaller sizes
        if height <= 8 {
            h.bench(&format!("naive_per_node/{n}"), || {
                qa_mso::query_eval::eval_unary_ranked_naive(&d, &t, 2).len()
            });
        }
    }
}
