//! Deterministic sampling for batch telemetry.
//!
//! Full-fidelity observation (a [`RunTrace`](qa_obs::RunTrace) per run) is
//! too expensive for a fleet of thousands of runs; counters alone lose the
//! ability to inspect any single run. The samplers here split the
//! difference: every run is counted, a deterministic subset is observed in
//! full.
//!
//! Determinism matters — two invocations of the same fleet with the same
//! seed must select the same runs, so profiles diff cleanly and failures
//! reproduce. Both samplers are therefore driven by
//! [`qa_base::rng::StdRng`] (splitmix64), never by ambient entropy.

use qa_base::rng::{Rng, StdRng};
use qa_obs::{Abort, Counter, Machine, Observer, Series};

/// Deterministic 1-in-N admission: for each item, [`OneInN::admit`] returns
/// `true` with probability `1/n`, from a seeded stream.
///
/// The stream is position-independent in aggregate but exactly reproducible
/// for a given `(seed, n)`, so a re-run samples the same items.
#[derive(Debug)]
pub struct OneInN {
    rng: StdRng,
    n: u64,
}

impl OneInN {
    /// Sampler admitting ~1 in `n` items (`n ≥ 1`); `n = 1` admits all.
    pub fn new(seed: u64, n: u64) -> Self {
        assert!(n >= 1, "sampling rate must be >= 1");
        OneInN {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_1a7e_0f1e_e7e5),
            n,
        }
    }

    /// Whether the next item is admitted into the full-fidelity set.
    pub fn admit(&mut self) -> bool {
        self.n == 1 || self.rng.next_u64().is_multiple_of(self.n)
    }
}

/// Reservoir sampling (Algorithm R): a uniform sample of `k` items from a
/// stream of unknown length, in `O(k)` memory.
///
/// Every item ever offered has equal probability `k/len` of being in the
/// final reservoir, regardless of stream length — the classical guarantee,
/// here with a deterministic seeded RNG so fleets reproduce.
#[derive(Debug)]
pub struct Reservoir<T> {
    items: Vec<T>,
    k: usize,
    seen: u64,
    rng: StdRng,
}

impl<T> Reservoir<T> {
    /// Reservoir keeping at most `k` items (`k ≥ 1`).
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 1, "reservoir needs capacity >= 1");
        Reservoir {
            items: Vec::with_capacity(k),
            k,
            seen: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x7e5e_12e5_e7e5_0a11),
        }
    }

    /// Offer one item to the reservoir.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.k {
            self.items.push(item);
        } else {
            // Replace a random slot with probability k/seen (Algorithm R).
            let j = (self.rng.next_u64() % self.seen) as usize;
            if j < self.k {
                self.items[j] = item;
            }
        }
    }

    /// Items currently held (order is an implementation detail).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Consume the reservoir, returning its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Either-observer produced by per-run sampling: `Full` runs carry the
/// expensive sink `A`, `Light` runs the cheap sink `B` (typically a
/// metrics handle). Engines stay generic over one observer type.
#[derive(Debug)]
pub enum Sampled<A, B> {
    /// Full-fidelity observation for this run.
    Full(A),
    /// Counters-only observation for this run.
    Light(B),
}

impl<A, B> Sampled<A, B> {
    /// The full sink, if this run was sampled.
    pub fn full(self) -> Option<A> {
        match self {
            Sampled::Full(a) => Some(a),
            Sampled::Light(_) => None,
        }
    }
}

macro_rules! fan {
    ($self:ident, $method:ident($($arg:expr),*)) => {
        match $self {
            Sampled::Full(a) => a.$method($($arg),*),
            Sampled::Light(b) => b.$method($($arg),*),
        }
    };
}

impl<A: Observer, B: Observer> Observer for Sampled<A, B> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        fan!(self, count(counter, n))
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        fan!(self, record(series, value))
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        fan!(self, config(state, pos, dir))
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        fan!(self, phase_start(name))
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        fan!(self, phase_end(name))
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        fan!(self, selected(pos, state, sym))
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        fan!(self, stay_assign(parent, child, state))
    }
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        fan!(self, state_visit(machine, state, sym))
    }
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        fan!(self, transition_fired(machine, from, sym, to))
    }
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Abort> {
        fan!(self, checkpoint())
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        match self {
            Sampled::Full(a) => a.is_enabled(),
            Sampled::Light(b) => b.is_enabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_one_admits_everything() {
        let mut s = OneInN::new(42, 1);
        assert!((0..100).all(|_| s.admit()));
    }

    #[test]
    fn one_in_n_is_deterministic_and_roughly_calibrated() {
        let admitted = |seed: u64| -> Vec<bool> {
            let mut s = OneInN::new(seed, 8);
            (0..10_000).map(|_| s.admit()).collect()
        };
        let a = admitted(7);
        assert_eq!(a, admitted(7), "same seed, same admissions");
        assert_ne!(a, admitted(8), "different seed, different admissions");
        let hits = a.iter().filter(|&&x| x).count();
        // E[hits] = 1250; a loose band catches gross miscalibration only.
        assert!((900..1600).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn reservoir_keeps_everything_until_full() {
        let mut r = Reservoir::new(1, 5);
        for i in 0..5 {
            r.offer(i);
        }
        let mut items = r.items().to_vec();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_is_uniform_enough_and_deterministic() {
        let sample = |seed: u64| -> Vec<u32> {
            let mut r = Reservoir::new(seed, 10);
            for i in 0..1000u32 {
                r.offer(i);
            }
            r.into_items()
        };
        assert_eq!(sample(3), sample(3), "same seed, same reservoir");
        // Items from the late stream must be reachable: with k=10, n=1000,
        // a reservoir that stopped replacing would hold only 0..10.
        let s = sample(3);
        assert_eq!(s.len(), 10);
        assert!(
            s.iter().any(|&x| x >= 500),
            "late items never sampled: {s:?}"
        );
    }

    #[test]
    fn sampled_observer_routes_to_the_active_arm() {
        use crate::recorder::FlightRecorder;
        use qa_obs::Metrics;

        let metrics = Metrics::new();
        {
            let mut light: Sampled<FlightRecorder, _> = Sampled::Light(metrics.observer());
            light.count(Counter::Steps, 4);
            assert!(light.full().is_none());
        }
        assert_eq!(metrics.get(Counter::Steps), 4);

        let mut full: Sampled<FlightRecorder, qa_obs::MetricsObserver<'_>> =
            Sampled::Full(FlightRecorder::with_capacity(4));
        full.config(1, 2, 1);
        let rec = full.full().expect("full arm");
        assert_eq!(rec.len(), 1);
    }
}
