//! E6 (Proposition 6.1): the corridor-tiling reduction — construction cost
//! of the strategy-tree automaton and the direct game solve, vs corridor
//! width (both exponential in width; the reduction itself is cheap per
//! state).

use qa_bench::Harness;

fn instance(width: usize) -> qa_decision::tiling::TilingInstance {
    qa_decision::tiling::TilingInstance {
        num_tiles: 3,
        horizontal: (0..3).flat_map(|a| (0..3).map(move |b| (a, b))).collect(),
        vertical: vec![(0, 1), (1, 2), (2, 2)],
        bottom: vec![0; width],
        top: vec![2; width],
    }
}

fn main() {
    let mut h = Harness::new("e6_prop61_tiling");
    for width in [1usize, 2, 3] {
        let inst = instance(width);
        h.bench(&format!("solve_game/{width}"), || {
            qa_decision::tiling::solve_game(&inst).unwrap()
        });
        h.bench(&format!("build_automaton/{width}"), || {
            qa_decision::tiling::to_tree_automaton(&inst)
                .unwrap()
                .num_states()
        });
    }
}
