//! The `qa-serve` query-serving daemon end to end, in process.
//!
//! Starts a [`ServeDaemon`](query_automata::serve::ServeDaemon) on an
//! ephemeral loopback port, ingests the paper's Figure 1 bibliography
//! over `PUT /doc`, runs a unary MSO query over `POST /query` with
//! `why` provenance, then scrapes `/metrics` — exactly the round trips
//! `curl` would make against a long-running daemon:
//!
//! 1. `PUT /doc?name=bib` — parse and fingerprint the XML into the
//!    resident store;
//! 2. `POST /query` — compile `label(v, author)` once into the query
//!    cache and evaluate it on the work-stealing pool, getting back the
//!    selected nodes plus a `why_selected` certificate (node, marked
//!    state, label);
//! 3. `POST /query` again — same bytes back, but now a cache hit;
//! 4. `GET /metrics` — the serving counters as Prometheus text.
//!
//! Run with: `cargo run --example serve`

use query_automata::obs::json::{self, Value};
use query_automata::pulse::{http_get, http_request, HttpTimeouts};
use query_automata::serve::{ServeConfig, ServeDaemon};
use query_automata::xml::figures::FIGURE_1_XML;

fn main() -> std::io::Result<()> {
    // ── Start the daemon on an ephemeral port ────────────────────────────
    let daemon = ServeDaemon::start(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })?;
    let addr = daemon.addr();
    let t = HttpTimeouts::default();
    println!("qa-serve on http://{addr}");

    // ── Ingest the Figure 1 bibliography over the wire ───────────────────
    let ingest = http_request(
        addr,
        "PUT",
        "/doc?name=bib",
        "application/xml",
        FIGURE_1_XML,
        t,
    )?;
    println!("PUT /doc?name=bib -> {} {}", ingest.status, ingest.body);

    // ── Query: every author node, with provenance ────────────────────────
    let request = json::object(|w| {
        w.field_str("formula", "label(v, author)");
        w.field_str("doc", "bib");
        w.field_bool("why", true);
    });
    let cold = http_request(addr, "POST", "/query", "application/json", &request, t)?;
    println!("POST /query (cold) -> {}", cold.status);
    let parsed = json::parse(&cold.body).expect("response is JSON");
    if let Some(nodes) = parsed.get("selected").and_then(Value::as_arr) {
        let picked: Vec<_> = nodes.iter().filter_map(Value::as_u64).collect();
        println!("  selected author nodes: {picked:?}");
    }
    println!("  why_selected carries the marked state per node (Figure 6)");

    // ── The same query again is a cache hit ──────────────────────────────
    let warm = http_request(addr, "POST", "/query", "application/json", &request, t)?;
    println!("POST /query (warm) -> {} (compiled once)", warm.status);

    // ── Scrape the serving metrics like Prometheus would ─────────────────
    let scrape = http_get(addr, "/metrics", t)?;
    println!("/metrics (serving families):");
    for line in scrape.body.lines() {
        if line.starts_with("qa_serve_http_requests_total")
            || line.starts_with("qa_serve_doc_ingests_total")
            || line.starts_with("qa_serve_query_compiles_total")
            || line.starts_with("qa_serve_cache_hits_total")
        {
            println!("  {line}");
        }
    }

    daemon.shutdown();
    Ok(())
}
