//! Hash-consed crossing-behavior columns (the qa-par `BehaviorCache` layer
//! for 2DFA runs).
//!
//! By the Theorem 3.9 recurrences, the crossing-behavior column at a tape
//! position — the per-state [`Outcome`]s plus excursion state sets — is a
//! pure function of the cell's content and the column one cell to the left.
//! A [`CrossingCache`] therefore interns columns under the key
//! `(cell, id of left column)`: two words sharing a prefix (or any words
//! whose column chains converge, which they do after at most
//! `|states|`-many distinct columns) share the suffix of the computation.
//! Across a batch of words over a small alphabet the set of distinct columns
//! saturates quickly and whole analyses become pure lookups.
//!
//! The cache is keyed to one machine: it records a fingerprint of the
//! machine's transition structure and transparently resets itself when
//! handed a different machine, so stale columns can never leak across
//! machines.
//!
//! [`Outcome`]: crate::behavior::Outcome

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use qa_obs::{Counter, Observer};

use crate::behavior::Column;
use crate::tape::Tape;
use crate::twodfa::TwoDfa;

/// Interns 2DFA crossing-behavior columns under `(cell, left-column)` keys.
///
/// Used by [`BehaviorAnalysis::analyze_cached`] and
/// [`StringQa::query_cached`]; see the module docs for the invariant that
/// makes columns cacheable. Reports [`Counter::CacheHits`] and
/// [`Counter::CacheMisses`] to the observer passed to each lookup.
///
/// [`BehaviorAnalysis::analyze_cached`]: crate::behavior::BehaviorAnalysis::analyze_cached
/// [`StringQa::query_cached`]: crate::string_qa::StringQa::query_cached
#[derive(Debug, Default)]
pub struct CrossingCache {
    /// `(cell encoding, left column id or NO_PREV)` → column id.
    map: HashMap<(u32, u32), u32>,
    /// Interned columns, indexed by id.
    columns: Vec<Rc<Column>>,
    /// Fingerprint of the machine the cached columns belong to.
    fingerprint: Option<u64>,
    hits: u64,
    misses: u64,
}

/// Key component standing in for "no column to the left" (position 0).
const NO_PREV: u32 = u32::MAX;

impl CrossingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct columns interned so far.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether no columns are interned.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Lookups answered from the cache since creation (or last [`clear`]).
    ///
    /// [`clear`]: CrossingCache::clear
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compute a fresh column.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all interned columns and reset the statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.columns.clear();
        self.fingerprint = None;
        self.hits = 0;
        self.misses = 0;
    }

    /// Bind the cache to `machine` for the per-column lookups that follow:
    /// resets the cache when `machine`'s fingerprint differs from the one
    /// the cached columns were computed for. Called once per analysis (not
    /// once per column — fingerprinting walks the whole transition table,
    /// so doing it per lookup would dwarf the lookup itself).
    pub(crate) fn ensure_machine(&mut self, machine: &TwoDfa) {
        let fp = fingerprint(machine);
        if self.fingerprint != Some(fp) {
            self.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// Intern (or look up) the column for `cell` to the right of the column
    /// with id `prev_id` (`None` at the left endmarker). The cache must
    /// already be bound to `machine` via [`CrossingCache::ensure_machine`].
    pub(crate) fn column<O: Observer>(
        &mut self,
        machine: &TwoDfa,
        cell: Tape,
        prev_id: Option<u32>,
        obs: &mut O,
    ) -> (u32, Rc<Column>) {
        debug_assert!(self.fingerprint.is_some(), "ensure_machine not called");
        let key = (cell.encode() as u32, prev_id.unwrap_or(NO_PREV));
        if let Some(&id) = self.map.get(&key) {
            self.hits += 1;
            obs.count(Counter::CacheHits, 1);
            return (id, Rc::clone(&self.columns[id as usize]));
        }
        self.misses += 1;
        obs.count(Counter::CacheMisses, 1);
        let prev = prev_id.map(|id| Rc::clone(&self.columns[id as usize]));
        let col = Rc::new(crate::behavior::compute_column(
            machine,
            cell,
            prev.as_deref(),
            obs,
        ));
        let id = self.columns.len() as u32;
        self.columns.push(Rc::clone(&col));
        self.map.insert(key, id);
        (id, col)
    }
}

/// Structural fingerprint of a machine: states, alphabet, initial, finals
/// and the full transition table. Collisions would only cause a silently
/// shared cache between two machines with identical behavior tables — which
/// is harmless — but the full-table hash makes even that astronomically
/// unlikely.
fn fingerprint(machine: &TwoDfa) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    machine.num_states().hash(&mut h);
    machine.alphabet_len().hash(&mut h);
    machine.initial().index().hash(&mut h);
    for s in 0..machine.num_states() {
        let state = qa_strings::StateId::from_index(s);
        machine.is_final(state).hash(&mut h);
        for c in 0..Tape::table_len(machine.alphabet_len()) {
            let cell = match c {
                0 => Tape::LeftMarker,
                1 => Tape::RightMarker,
                i => Tape::Sym(qa_base::Symbol::from_index(i - 2)),
            };
            match machine.action(state, cell) {
                None => 0u8.hash(&mut h),
                Some((dir, next)) => {
                    (match dir {
                        crate::twodfa::Dir::Left => 1u8,
                        crate::twodfa::Dir::Right => 2u8,
                    })
                    .hash(&mut h);
                    next.index().hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorAnalysis;
    use crate::twodfa::{Dir, TwoDfaBuilder};
    use qa_base::Symbol;
    use qa_obs::NoopObserver;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    fn example_3_4() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, true);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        b.build().unwrap()
    }

    #[test]
    fn cached_analysis_matches_uncached() {
        let m = example_3_4();
        let mut cache = CrossingCache::new();
        for len in 0..=5usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                let plain = BehaviorAnalysis::analyze(&m, &w);
                let cached =
                    BehaviorAnalysis::analyze_cached(&m, &w, &mut cache, &mut NoopObserver);
                assert_eq!(plain.outcome, cached.outcome, "{w:?}");
                assert_eq!(plain.first, cached.first, "{w:?}");
                assert_eq!(plain.assumed, cached.assumed, "{w:?}");
                assert_eq!(plain.halt().ok(), cached.halt().ok(), "{w:?}");
            }
        }
        assert!(cache.hits() > 0, "repeated prefixes must hit");
    }

    #[test]
    fn repeat_word_is_all_hits() {
        let m = example_3_4();
        let mut cache = CrossingCache::new();
        let w = vec![sym(0), sym(1), sym(1)];
        BehaviorAnalysis::analyze_cached(&m, &w, &mut cache, &mut NoopObserver);
        let misses_before = cache.misses();
        BehaviorAnalysis::analyze_cached(&m, &w, &mut cache, &mut NoopObserver);
        assert_eq!(
            cache.misses(),
            misses_before,
            "second pass computes nothing"
        );
        assert!(cache.hits() >= (w.len() + 2) as u64);
    }

    #[test]
    fn switching_machines_resets_the_cache() {
        let m1 = example_3_4();
        // Flip finality to change the fingerprint without changing shape.
        let mut b = TwoDfaBuilder::new(2);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, false);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        let m2 = b.build().unwrap();

        let mut cache = CrossingCache::new();
        let w = vec![sym(0), sym(1)];
        BehaviorAnalysis::analyze_cached(&m1, &w, &mut cache, &mut NoopObserver);
        assert!(!cache.is_empty());
        let a2 = BehaviorAnalysis::analyze_cached(&m2, &w, &mut cache, &mut NoopObserver);
        assert_eq!(
            a2.accepted(&m2),
            BehaviorAnalysis::analyze(&m2, &w).accepted(&m2),
            "reset cache must not leak columns across machines"
        );
        assert_eq!(cache.hits(), 0, "fingerprint change cleared statistics");
    }
}
