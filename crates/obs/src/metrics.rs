//! The shared [`Metrics`] registry: atomic counters plus fixed-bucket
//! histograms, serializable to JSON by hand.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{self, ObjectWriter};
use crate::observer::{Counter, Observer, Series};

/// Label set of one info metric: sorted `key → value` pairs.
pub type InfoLabels = BTreeMap<String, String>;

/// Buckets per histogram: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A lock-free power-of-two histogram.
///
/// All updates use relaxed atomics: the registry tracks aggregate workload
/// statistics, not synchronization-sensitive state, and relaxed increments
/// keep the observed hot loops cheap.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for `value` under the power-of-two scheme.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let i = 64 - value.leading_zeros() as usize;
        i.min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Fold a snapshot's samples into this histogram, as if every sample it
    /// aggregates had been [`Histogram::record`]ed here.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for (b, &n) in self.buckets.iter().zip(snap.buckets.iter()) {
            if n != 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample counts per power-of-two bucket (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Empty snapshot — the identity of [`HistogramSnapshot::merge`].
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Combine two snapshots into the snapshot that one histogram fed with
    /// both sample sets would produce. Associative and commutative, with
    /// [`HistogramSnapshot::empty`] as identity.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Arithmetic mean of the samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn write_json(&self, w: &mut ObjectWriter) {
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", self.min);
        w.field_u64("max", self.max);
        w.field_f64("mean", self.mean());
        // Drop the empty tail so reports stay short.
        let used = HISTOGRAM_BUCKETS - self.buckets.iter().rev().take_while(|&&b| b == 0).count();
        w.field_u64_array("buckets", self.buckets[..used].iter().copied());
    }
}

/// Registry of every [`Counter`] and [`Series`] histogram, shareable across
/// threads (all interior mutability is relaxed atomics).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: [AtomicU64; Counter::COUNT],
    series: [Histogram; Series::COUNT],
    /// Labeled info metrics (`name{k="v",…} 1` in Prometheus renderings):
    /// constant-`1` gauges whose payload lives in their labels, the idiom
    /// `qa_build_info` uses for build metadata and mesh workers use for
    /// `shard`/`worker_id` correlation. Keyed by metric name; merge unions.
    infos: Mutex<BTreeMap<String, InfoLabels>>,
}

impl Metrics {
    /// Fresh registry with everything at zero.
    pub fn new() -> Self {
        Metrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            series: std::array::from_fn(|_| Histogram::default()),
            infos: Mutex::new(BTreeMap::new()),
        }
    }

    /// Bump `counter` by `n`.
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Record one sample into `series`.
    #[inline]
    pub fn record(&self, series: Series, value: u64) {
        self.series[series.index()].record(value);
    }

    /// Snapshot of the histogram behind `series`.
    pub fn histogram(&self, series: Series) -> HistogramSnapshot {
        self.series[series.index()].snapshot()
    }

    /// Fold a whole snapshot into the histogram behind `series`, as if
    /// every sample it aggregates had been recorded here — the entry point
    /// for rebuilding a registry from a parsed scrape.
    pub fn absorb_series(&self, series: Series, snap: &HistogramSnapshot) {
        self.series[series.index()].absorb(snap);
    }

    /// Set (or replace) the labeled info metric `name`. Rendered by the
    /// Prometheus exporter as a constant-`1` gauge carrying `labels`;
    /// label order is canonicalized by key, so renders are deterministic.
    pub fn set_info(&self, name: &str, labels: impl IntoIterator<Item = (String, String)>) {
        self.infos
            .lock()
            .expect("infos lock poisoned")
            .insert(name.to_string(), labels.into_iter().collect());
    }

    /// All info metrics, sorted by name.
    pub fn infos(&self) -> Vec<(String, InfoLabels)> {
        self.infos
            .lock()
            .expect("infos lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Borrow an [`Observer`] that feeds this registry.
    pub fn observer(&self) -> MetricsObserver<'_> {
        MetricsObserver { metrics: self }
    }

    /// Fold `other`'s totals into this registry, so per-run or per-thread
    /// registries can be combined into one multi-run profile. Counters add;
    /// histograms merge sample-exactly (same result as recording every
    /// sample here); info metrics union (last write wins per name, so the
    /// union commutes whenever the names or the label sets agree).
    /// Associative and commutative up to snapshot timing.
    pub fn merge(&self, other: &Metrics) {
        for c in Counter::ALL {
            let v = other.get(c);
            if v != 0 {
                self.count(c, v);
            }
        }
        for s in Series::ALL {
            self.series[s.index()].absorb(&other.histogram(s));
        }
        for (name, labels) in other.infos() {
            self.infos
                .lock()
                .expect("infos lock poisoned")
                .insert(name, labels);
        }
    }

    /// Reset every counter and histogram to zero.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.series {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.min.store(u64::MAX, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
        self.infos.lock().expect("infos lock poisoned").clear();
    }

    /// Serialize the registry:
    /// `{"counters": {name: value, …}, "series": {name: {count, sum, min,
    /// max, mean, buckets}, …}}`. Counters at zero and empty series are
    /// omitted; an `"infos"` object is appended only when info metrics are
    /// set, so reports without them keep the historical two-field shape.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            let counters = json::object(|cw| {
                for c in Counter::ALL {
                    let v = self.get(c);
                    if v != 0 {
                        cw.field_u64(c.name(), v);
                    }
                }
            });
            w.field_raw("counters", &counters);
            let series = json::object(|sw| {
                for s in Series::ALL {
                    let snap = self.histogram(s);
                    if snap.count != 0 {
                        sw.field_raw(s.name(), &json::object(|hw| snap.write_json(hw)));
                    }
                }
            });
            w.field_raw("series", &series);
            let infos = self.infos();
            if !infos.is_empty() {
                let rendered = json::object(|iw| {
                    for (name, labels) in &infos {
                        iw.field_raw(
                            name,
                            &json::object(|lw| {
                                for (k, v) in labels {
                                    lw.field_str(k, v);
                                }
                            }),
                        );
                    }
                });
                w.field_raw("infos", &rendered);
            }
        })
    }
}

/// [`Observer`] adapter writing into a shared [`Metrics`] registry.
#[derive(Debug)]
pub struct MetricsObserver<'a> {
    metrics: &'a Metrics,
}

impl Observer for MetricsObserver<'_> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.metrics.count(counter, n);
    }

    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.metrics.record(series, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counter_arithmetic() {
        let m = Metrics::new();
        m.count(Counter::Steps, 3);
        m.count(Counter::Steps, 4);
        m.count(Counter::BudgetTrips, 1);
        assert_eq!(m.get(Counter::Steps), 7);
        assert_eq!(m.get(Counter::BudgetTrips), 1);
        assert_eq!(m.get(Counter::HeadReversals), 0);
        m.reset();
        assert_eq!(m.get(Counter::Steps), 0);
    }

    #[test]
    fn histogram_arithmetic() {
        let m = Metrics::new();
        for v in [0u64, 1, 1, 5, 16] {
            m.record(Series::TraceLength, v);
        }
        let h = m.histogram(Series::TraceLength);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 23);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 16);
        assert!((h.mean() - 4.6).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the 0
        assert_eq!(h.buckets[1], 2); // the two 1s
        assert_eq!(h.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets[5], 1); // 16 ∈ [16, 32)
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = Metrics::new().histogram(Series::RunSteps);
        assert_eq!((h.count, h.min, h.max), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_shape_omits_zeroes() {
        let m = Metrics::new();
        assert_eq!(m.to_json(), r#"{"counters":{},"series":{}}"#);
        m.count(Counter::Steps, 11);
        m.record(Series::TraceLength, 1);
        m.record(Series::TraceLength, 3);
        let j = m.to_json();
        assert_eq!(
            j,
            concat!(
                r#"{"counters":{"steps":11},"#,
                r#""series":{"trace_length":{"count":2,"sum":4,"min":1,"max":3,"#,
                r#""mean":2.0,"buckets":[0,1,1]}}}"#
            )
        );
    }

    /// A registry fed with a deterministic workload derived from `seed`.
    fn workload(seed: u64) -> Metrics {
        let m = Metrics::new();
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        for _ in 0..20 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = Counter::ALL[(x >> 32) as usize % Counter::COUNT];
            m.count(c, x % 100);
            let s = Series::ALL[(x >> 48) as usize % Series::COUNT];
            m.record(s, x % 1000);
        }
        m
    }

    fn full_snapshot(m: &Metrics) -> (Vec<u64>, Vec<HistogramSnapshot>) {
        (
            Counter::ALL.iter().map(|&c| m.get(c)).collect(),
            Series::ALL.iter().map(|&s| m.histogram(s)).collect(),
        )
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (workload(1), workload(2), workload(3));

        // (a ⊕ b) ⊕ c
        let left = Metrics::new();
        left.merge(&a);
        left.merge(&b);
        let left_outer = Metrics::new();
        left_outer.merge(&left);
        left_outer.merge(&c);

        // a ⊕ (b ⊕ c)
        let right = Metrics::new();
        right.merge(&b);
        right.merge(&c);
        let right_outer = Metrics::new();
        right_outer.merge(&a);
        right_outer.merge(&right);

        assert_eq!(full_snapshot(&left_outer), full_snapshot(&right_outer));
    }

    #[test]
    fn merge_matches_direct_recording() {
        // Recording samples into two registries and merging them must be
        // indistinguishable from recording everything into one registry.
        let direct = Metrics::new();
        let (a, b) = (Metrics::new(), Metrics::new());
        for (i, v) in [0u64, 1, 1, 5, 16, 300, 7, 7].iter().enumerate() {
            let side = if i % 2 == 0 { &a } else { &b };
            side.record(Series::MachineStates, *v);
            side.count(Counter::Steps, *v);
            direct.record(Series::MachineStates, *v);
            direct.count(Counter::Steps, *v);
        }
        let merged = Metrics::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(full_snapshot(&merged), full_snapshot(&direct));
    }

    #[test]
    fn snapshot_merge_associative_with_identity() {
        let snap = |m: &Metrics| m.histogram(Series::TraceLength);
        let (a, b, c) = (workload(4), workload(5), workload(6));
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa);
        assert_eq!(HistogramSnapshot::empty().merge(&sa), sa);
        // min survives the empty-identity special case
        let m = Metrics::new();
        m.record(Series::TraceLength, 9);
        let s = snap(&m);
        assert_eq!(s.merge(&HistogramSnapshot::empty()).min, 9);
    }

    #[test]
    fn info_metrics_union_on_merge_and_clear_on_reset() {
        let a = Metrics::new();
        a.set_info(
            "qa_worker_info",
            [("worker_id".to_string(), "w0".to_string())],
        );
        let b = Metrics::new();
        b.set_info("qa_run_info", [("run_id".to_string(), "r1".to_string())]);
        a.merge(&b);
        let names: Vec<String> = a.infos().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["qa_run_info", "qa_worker_info"]);
        let j = a.to_json();
        assert!(
            j.contains(r#""infos":{"qa_run_info":{"run_id":"r1"}"#),
            "{j}"
        );
        a.reset();
        assert!(a.infos().is_empty());
        assert!(!a.to_json().contains("infos"));
    }

    #[test]
    fn absorb_series_rebuilds_a_snapshot() {
        let src = Metrics::new();
        for v in [1u64, 5, 16] {
            src.record(Series::RunSteps, v);
        }
        let dst = Metrics::new();
        dst.absorb_series(Series::RunSteps, &src.histogram(Series::RunSteps));
        assert_eq!(
            dst.histogram(Series::RunSteps),
            src.histogram(Series::RunSteps)
        );
    }

    #[test]
    fn observer_feeds_registry() {
        let m = Metrics::new();
        {
            let mut o = m.observer();
            o.count(Counter::StayRounds, 2);
            o.record(Series::StaysPerNode, 9);
        }
        assert_eq!(m.get(Counter::StayRounds), 2);
        assert_eq!(m.histogram(Series::StaysPerNode).max, 9);
    }
}
