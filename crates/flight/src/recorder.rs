//! [`FlightRecorder`]: a bounded ring of the most recent observer events.
//!
//! Unlike [`RunTrace`](qa_obs::RunTrace), which keeps the *first* `cap`
//! configurations of a run (the right tool for replaying a run from its
//! start), the flight recorder keeps the *last* `cap` events of any kind —
//! the right tool for a post-mortem: when a run panics, trips a watchdog or
//! otherwise dies, the interesting events are the ones immediately before
//! death, not the ones at takeoff.
//!
//! Memory is `O(cap)` regardless of run length, so the recorder can stay on
//! in production batch workloads. Events pushed past capacity evict the
//! oldest entry and are tallied in [`FlightRecorder::dropped`], so a dump
//! always says how much history it is missing.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use qa_obs::{Counter, Observer, Series};

/// One event retained by the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// A two-way configuration (state, position, direction).
    Config {
        /// Machine state.
        state: u32,
        /// Tape position / tree node index.
        pos: u32,
        /// Move direction: −1 left/up, +1 right/down, 0 halt or stay.
        dir: i8,
    },
    /// A phase was entered.
    PhaseStart(&'static str),
    /// A phase was left.
    PhaseEnd(&'static str),
    /// A position was selected into the query answer.
    Selected {
        /// Selected position.
        pos: u32,
        /// Witnessing assumed state.
        state: u32,
        /// Symbol at the position.
        sym: u32,
    },
    /// A stay transition assigned a state to a child node.
    StayAssign {
        /// Parent node.
        parent: u32,
        /// Child node.
        child: u32,
        /// Assigned state.
        state: u32,
    },
    /// An alert rule changed state in the sentinel's engine.
    Alert {
        /// Logical sentinel tick of the transition.
        tick: u64,
        /// Index of the rule in the loaded rules file.
        rule: u32,
        /// State before (`"inactive"`, `"pending"`, `"firing"`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
}

impl FlightEvent {
    fn render(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            FlightEvent::Config { state, pos, dir } => {
                let arrow = match dir {
                    -1 => "<-",
                    1 => "->",
                    _ => "--",
                };
                let _ = write!(out, "config   q{state} @ {pos} {arrow}");
            }
            FlightEvent::PhaseStart(name) => {
                let _ = write!(out, "phase    >> {name}");
            }
            FlightEvent::PhaseEnd(name) => {
                let _ = write!(out, "phase    << {name}");
            }
            FlightEvent::Selected { pos, state, sym } => {
                let _ = write!(out, "selected pos {pos} (state q{state}, sym {sym})");
            }
            FlightEvent::StayAssign {
                parent,
                child,
                state,
            } => {
                let _ = write!(out, "stay     node {parent} -> child {child} := q{state}");
            }
            FlightEvent::Alert {
                tick,
                rule,
                from,
                to,
            } => {
                let _ = write!(out, "alert    rule #{rule} {from} -> {to} @ tick {tick}");
            }
        }
    }
}

/// Fixed-capacity observer retaining the last `cap` events, with full
/// counter/series tallies (tallies are exact; only the event *log* is
/// bounded).
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    cap: usize,
    dropped: u64,
    counters: [u64; Counter::COUNT],
    samples: [(u64, u64); Series::COUNT],  // (count, sum)
    correlation: Option<(String, String)>, // (run_id, worker)
}

/// Default ring capacity: enough tail to diagnose a loop, small enough to
/// leave on everywhere.
pub const DEFAULT_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Recorder with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorder retaining at most `cap` events (`cap ≥ 1`).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "flight recorder needs capacity >= 1");
        FlightRecorder {
            ring: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
            counters: [0; Counter::COUNT],
            samples: [(0, 0); Series::COUNT],
            correlation: None,
        }
    }

    /// Stamp this recorder with correlation ids: the fleet `run_id` and
    /// the `worker` the events belong to. In a sharded mesh every worker's
    /// flight dump carries these, so a federated post-mortem can attribute
    /// each retained event to the process that recorded it.
    pub fn set_correlation(&mut self, run_id: &str, worker: &str) {
        self.correlation = Some((run_id.to_string(), worker.to_string()));
    }

    /// The `(run_id, worker)` correlation ids, if stamped.
    pub fn correlation(&self) -> Option<(&str, &str)> {
        self.correlation
            .as_ref()
            .map(|(r, w)| (r.as_str(), w.as_str()))
    }

    #[inline]
    fn push(&mut self, ev: FlightEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Record an alert-state transition (rule `rule` went `from` → `to`
    /// at sentinel tick `tick`) into the ring, so a post-mortem shows the
    /// alert lifecycle interleaved with the events that caused it. Not an
    /// [`Observer`] hook: alerts come from the sentinel's engine, not from
    /// an engine run.
    pub fn alert(&mut self, tick: u64, rule: u32, from: &'static str, to: &'static str) {
        self.push(FlightEvent::Alert {
            tick,
            rule,
            from,
            to,
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> + '_ {
        self.ring.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted to make room — the dump's "how much history is
    /// missing" figure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact tally of `counter` over the whole run (not just the retained
    /// window).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// `(count, sum)` of samples recorded into `series`.
    pub fn samples(&self, series: Series) -> (u64, u64) {
        self.samples[series.index()]
    }

    /// The `(state, pos)` configuration occurring most often in the
    /// retained window, with its occurrence count — evidence of a loop when
    /// the count is high. Returns `None` if no configs were retained; ties
    /// break toward the smallest `(state, pos)`.
    pub fn repeated_config(&self) -> Option<(u32, u32, usize)> {
        let mut pairs: Vec<(u32, u32)> = self
            .ring
            .iter()
            .filter_map(|ev| match *ev {
                FlightEvent::Config { state, pos, .. } => Some((state, pos)),
                _ => None,
            })
            .collect();
        if pairs.is_empty() {
            return None;
        }
        pairs.sort_unstable();
        let mut best = (pairs[0].0, pairs[0].1, 1usize);
        let mut cur = (pairs[0], 1usize);
        for &p in &pairs[1..] {
            if p == cur.0 {
                cur.1 += 1;
            } else {
                cur = (p, 1);
            }
            if cur.1 > best.2 {
                best = (cur.0 .0, cur.0 .1, cur.1);
            }
        }
        Some(best)
    }

    /// Render the post-mortem dump: drop accounting, exact counters, the
    /// most repeated configuration, then the retained tail of events.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "=== flight recorder dump ===");
        if let Some((run_id, worker)) = self.correlation() {
            let _ = writeln!(out, "run {run_id}, worker {worker}");
        }
        let _ = writeln!(
            out,
            "retained {} event(s) (capacity {}), {} older event(s) dropped",
            self.ring.len(),
            self.cap,
            self.dropped
        );
        for c in Counter::ALL {
            let v = self.counters[c.index()];
            if v != 0 {
                let _ = writeln!(out, "  {:<20} {v}", c.name());
            }
        }
        if let Some((state, pos, n)) = self.repeated_config() {
            if n > 1 {
                let _ = writeln!(
                    out,
                    "most repeated configuration: q{state} @ {pos} ({n} times in window)"
                );
            }
        }
        let _ = writeln!(out, "--- last {} event(s) ---", self.ring.len());
        for ev in &self.ring {
            ev.render(&mut out);
            out.push('\n');
        }
        out
    }

    /// Render the recorder as JSON — the machine-readable twin of
    /// [`dump`](FlightRecorder::dump), served by `qa-fleet --serve` at
    /// `GET /flight`. Hand-rolled like every exporter in this workspace
    /// (phase names are `&'static str` identifiers; the only escaping
    /// needed is for quotes/backslashes, handled below).
    pub fn to_json(&self) -> String {
        self.render_json(None)
    }

    /// Like [`to_json`](FlightRecorder::to_json), but the `events` array
    /// holds only the most recent `n` entries and the report carries a
    /// `shown` field saying how many made the cut — the `/flight?n=K`
    /// body. Tallies and drop accounting still cover the whole run.
    pub fn to_json_tail(&self, n: usize) -> String {
        self.render_json(Some(n))
    }

    fn render_json(&self, tail: Option<usize>) -> String {
        use std::fmt::Write;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push('{');
        if let Some((run_id, worker)) = self.correlation() {
            let _ = write!(
                out,
                "\"run_id\":\"{}\",\"worker\":\"{}\",",
                esc(run_id),
                esc(worker)
            );
        }
        let _ = write!(
            out,
            "\"retained\":{},\"capacity\":{},\"dropped\":{}",
            self.ring.len(),
            self.cap,
            self.dropped
        );
        let shown = tail.unwrap_or(self.ring.len()).min(self.ring.len());
        if tail.is_some() {
            let _ = write!(out, ",\"shown\":{shown}");
        }
        let _ = write!(out, ",\"counters\":{{");
        let mut first = true;
        for c in Counter::ALL {
            let v = self.counters[c.index()];
            if v != 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", c.name());
                first = false;
            }
        }
        out.push('}');
        match self.repeated_config() {
            Some((state, pos, n)) if n > 1 => {
                let _ = write!(
                    out,
                    ",\"repeated_config\":{{\"state\":{state},\"pos\":{pos},\"count\":{n}}}"
                );
            }
            _ => {
                let _ = write!(out, ",\"repeated_config\":null");
            }
        }
        let _ = write!(out, ",\"events\":[");
        let skip = self.ring.len() - shown;
        for (i, ev) in self.ring.iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            match *ev {
                FlightEvent::Config { state, pos, dir } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"config\",\"state\":{state},\"pos\":{pos},\"dir\":{dir}}}"
                    );
                }
                FlightEvent::PhaseStart(name) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"phase_start\",\"name\":\"{}\"}}",
                        esc(name)
                    );
                }
                FlightEvent::PhaseEnd(name) => {
                    let _ = write!(out, "{{\"type\":\"phase_end\",\"name\":\"{}\"}}", esc(name));
                }
                FlightEvent::Selected { pos, state, sym } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"selected\",\"pos\":{pos},\"state\":{state},\"sym\":{sym}}}"
                    );
                }
                FlightEvent::StayAssign {
                    parent,
                    child,
                    state,
                } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"stay_assign\",\"parent\":{parent},\"child\":{child},\"state\":{state}}}"
                    );
                }
                FlightEvent::Alert {
                    tick,
                    rule,
                    from,
                    to,
                } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"alert\",\"tick\":{tick},\"rule\":{rule},\"from\":\"{from}\",\"to\":\"{to}\"}}"
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// A [`FlightRecorder`] behind `Arc<Mutex<…>>`, usable both as a run's
/// observer and as a live `/flight` endpoint source at the same time.
///
/// The plain recorder is single-owner by design (observers are `&mut`);
/// a live ops surface needs to *read* the ring from the serve thread while
/// a run is still writing it. `SharedFlight` pays one uncontended mutex
/// lock per recorded event for that — measurable but small, and only the
/// binaries that opt into `--serve` use it; batch paths keep the lock-free
/// recorder.
#[derive(Clone, Debug, Default)]
pub struct SharedFlight(Arc<Mutex<FlightRecorder>>);

impl SharedFlight {
    /// Shared recorder retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        SharedFlight(Arc::new(Mutex::new(FlightRecorder::with_capacity(cap))))
    }

    /// Run `f` on the recorder (e.g. `|r| r.to_json()` from a serve
    /// thread, or `|r| r.dump()` for a post-mortem).
    pub fn with<T>(&self, f: impl FnOnce(&FlightRecorder) -> T) -> T {
        f(&self.0.lock().expect("flight recorder lock poisoned"))
    }

    /// Stamp the shared recorder with `(run_id, worker)` correlation ids
    /// (see [`FlightRecorder::set_correlation`]).
    pub fn set_correlation(&self, run_id: &str, worker: &str) {
        self.lock().set_correlation(run_id, worker);
    }

    /// Record an alert-state transition (see [`FlightRecorder::alert`]).
    pub fn alert(&self, tick: u64, rule: u32, from: &'static str, to: &'static str) {
        self.lock().alert(tick, rule, from, to);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRecorder> {
        self.0.lock().expect("flight recorder lock poisoned")
    }
}

impl Observer for SharedFlight {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.lock().count(counter, n);
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.lock().record(series, value);
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        self.lock().config(state, pos, dir);
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.lock().phase_start(name);
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        self.lock().phase_end(name);
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.lock().selected(pos, state, sym);
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.lock().stay_assign(parent, child, state);
    }
}

impl Observer for FlightRecorder {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        let slot = &mut self.samples[series.index()];
        slot.0 += 1;
        slot.1 += value;
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        self.push(FlightEvent::Config { state, pos, dir });
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.push(FlightEvent::PhaseStart(name));
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        self.push(FlightEvent::PhaseEnd(name));
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.push(FlightEvent::Selected { pos, state, sym });
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.push(FlightEvent::StayAssign {
            parent,
            child,
            state,
        });
    }
}

/// Run `work` with a panic-triggered post-mortem: on unwind the recorder's
/// dump is printed to stderr before the panic is resumed, so a crashing
/// batch job leaves its black box behind.
///
/// The recorder is passed to `work` by `&mut` reference; on normal
/// completion the result and the recorder are returned for inspection.
pub fn with_postmortem<T>(
    cap: usize,
    work: impl FnOnce(&mut FlightRecorder) -> T,
) -> (T, FlightRecorder) {
    let mut rec = FlightRecorder::with_capacity(cap);
    // AssertUnwindSafe: on panic we only *read* the recorder to render the
    // dump; the partially updated ring is exactly what a post-mortem wants.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(&mut rec)));
    match result {
        Ok(v) => (v, rec),
        Err(payload) => {
            eprintln!("{}", rec.dump());
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_cap_events_and_counts_drops() {
        let mut rec = FlightRecorder::with_capacity(3);
        for i in 0..10u32 {
            rec.config(i, i, 1);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7);
        let states: Vec<u32> = rec
            .events()
            .map(|ev| match *ev {
                FlightEvent::Config { state, .. } => state,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(states, vec![7, 8, 9]);
    }

    #[test]
    fn tallies_are_exact_even_when_the_log_drops() {
        let mut rec = FlightRecorder::with_capacity(2);
        for _ in 0..100 {
            rec.count(Counter::Steps, 1);
            rec.config(0, 0, 1);
        }
        rec.record(Series::TraceLength, 100);
        assert_eq!(rec.counter(Counter::Steps), 100);
        assert_eq!(rec.samples(Series::TraceLength), (1, 100));
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn repeated_config_finds_the_hot_pair() {
        let mut rec = FlightRecorder::with_capacity(16);
        rec.config(1, 5, 1);
        rec.config(2, 6, -1);
        rec.config(1, 5, 1);
        rec.config(1, 5, -1); // same (state, pos), different dir: still counts
        assert_eq!(rec.repeated_config(), Some((1, 5, 3)));
    }

    #[test]
    fn dump_reports_drops_and_the_repeated_config() {
        let mut rec = FlightRecorder::with_capacity(4);
        for _ in 0..6 {
            rec.count(Counter::Steps, 1);
            rec.config(3, 7, 1);
        }
        let dump = rec.dump();
        assert!(dump.contains("2 older event(s) dropped"), "{dump}");
        assert!(dump.contains("steps"), "{dump}");
        assert!(
            dump.contains("most repeated configuration: q3 @ 7 (4 times in window)"),
            "{dump}"
        );
        assert!(dump.contains("config   q3 @ 7 ->"), "{dump}");
    }

    #[test]
    fn json_dump_carries_drops_counters_and_loop_evidence() {
        let mut rec = FlightRecorder::with_capacity(4);
        for _ in 0..6 {
            rec.count(Counter::Steps, 1);
            rec.config(3, 7, 1);
        }
        rec.phase_start("selection scan");
        let json = rec.to_json();
        assert!(json.contains("\"dropped\":3"), "{json}");
        assert!(json.contains("\"steps\":6"), "{json}");
        assert!(
            json.contains("\"repeated_config\":{\"state\":3,\"pos\":7,\"count\":3}"),
            "{json}"
        );
        assert!(
            json.contains("{\"type\":\"phase_start\",\"name\":\"selection scan\"}"),
            "{json}"
        );
        // Braces balance (cheap well-formedness check for the hand-rolled
        // writer; the pulse e2e test parses it for real).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn json_tail_limits_events_but_keeps_exact_tallies() {
        let mut rec = FlightRecorder::with_capacity(8);
        for i in 0..5u32 {
            rec.count(Counter::Steps, 1);
            rec.config(i, i, 1);
        }
        let tail = rec.to_json_tail(2);
        assert!(tail.contains("\"retained\":5"), "{tail}");
        assert!(tail.contains("\"shown\":2"), "{tail}");
        assert!(tail.contains("\"steps\":5"), "tallies stay exact: {tail}");
        // Only the two most recent configs survive the tail cut.
        assert!(!tail.contains("\"state\":2"), "{tail}");
        assert!(tail.contains("\"state\":3"), "{tail}");
        assert!(tail.contains("\"state\":4"), "{tail}");
        // n beyond the retained count shows everything; the untailed
        // rendering is unchanged (no "shown" field).
        assert!(rec.to_json_tail(100).contains("\"shown\":5"));
        assert!(!rec.to_json().contains("\"shown\""));
    }

    #[test]
    fn alert_transitions_land_in_ring_dump_and_json() {
        let mut rec = FlightRecorder::with_capacity(8);
        rec.config(1, 2, 1);
        rec.alert(12, 0, "pending", "firing");
        let dump = rec.dump();
        assert!(
            dump.contains("alert    rule #0 pending -> firing @ tick 12"),
            "{dump}"
        );
        let json = rec.to_json();
        assert!(
            json.contains("{\"type\":\"alert\",\"tick\":12,\"rule\":0,\"from\":\"pending\",\"to\":\"firing\"}"),
            "{json}"
        );

        let shared = SharedFlight::with_capacity(8);
        shared.alert(3, 1, "inactive", "pending");
        assert!(shared.with(|r| r.to_json()).contains("\"to\":\"pending\""));
    }

    #[test]
    fn correlation_ids_appear_in_both_dump_flavors() {
        let mut rec = FlightRecorder::with_capacity(4);
        rec.config(1, 2, 1);
        assert_eq!(rec.correlation(), None);
        assert!(!rec.to_json().contains("run_id"));

        rec.set_correlation("mesh-s7-q4x4", "w1");
        assert_eq!(rec.correlation(), Some(("mesh-s7-q4x4", "w1")));
        let json = rec.to_json();
        assert!(
            json.starts_with("{\"run_id\":\"mesh-s7-q4x4\",\"worker\":\"w1\","),
            "{json}"
        );
        let dump = rec.dump();
        assert!(dump.contains("run mesh-s7-q4x4, worker w1"), "{dump}");

        let shared = SharedFlight::with_capacity(4);
        shared.set_correlation("mesh-s7-q4x4", "w2");
        assert!(shared.with(|r| r.to_json()).contains("\"worker\":\"w2\""));
    }

    #[test]
    fn shared_flight_records_through_the_observer_and_reads_concurrently() {
        let mut shared = SharedFlight::with_capacity(8);
        shared.count(Counter::Steps, 5);
        shared.config(1, 2, 1);
        let reader = shared.clone();
        assert_eq!(reader.with(|r| r.counter(Counter::Steps)), 5);
        assert_eq!(reader.with(|r| r.len()), 1);
        assert!(reader.with(|r| r.to_json()).contains("\"steps\":5"));
    }

    #[test]
    fn with_postmortem_returns_result_and_recorder_on_success() {
        let (sum, rec) = with_postmortem(8, |rec| {
            rec.config(1, 1, 1);
            2 + 2
        });
        assert_eq!(sum, 4);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn with_postmortem_dumps_and_rethrows_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_postmortem(8, |rec| {
                rec.config(9, 9, 0);
                panic!("boom");
            })
        });
        assert!(caught.is_err(), "panic must propagate");
    }
}
