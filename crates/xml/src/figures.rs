//! The paper's Figures 1–4: the bibliography document and its DTD.

use qa_base::Result;

use crate::dtd::Dtd;
use crate::parser::{parse_with_alphabet, Document};

/// Figure 1: the bibliography XML document.
pub const FIGURE_1_XML: &str = r#"<bibliography>
  <book>
    <author>S. Abiteboul</author>
    <author>R. Hull</author>
    <author>V. Vianu</author>
    <title>Foundations of Databases</title>
    <publisher>Addison-Wesley</publisher>
    <year>1995</year>
  </book>
  <article>
    <author>E. Codd</author>
    <title>A Relational Model of Data for Large Shared Data Banks</title>
    <journal>Communications of the ACM</journal>
    <year>1970</year>
  </article>
</bibliography>"#;

/// Figure 2: the DTD for the Figure 1 document.
pub const FIGURE_2_DTD: &str = r#"<!ELEMENT bibliography ((book | article)+)>
<!ELEMENT article (author+, title, journal, year)>
<!ELEMENT book (author+, title, publisher, year)>
<!ELEMENT author (PCDATA)>
<!ELEMENT title (PCDATA)>
<!ELEMENT journal (PCDATA)>
<!ELEMENT year (PCDATA)>
<!ELEMENT publisher (PCDATA)>"#;

/// Parse Figure 1 and Figure 2 over a shared alphabet — the tree of
/// Figures 3/4 plus its grammar.
pub fn bibliography() -> Result<(Document, Dtd)> {
    let mut alphabet = qa_base::Alphabet::new();
    alphabet.intern(crate::parser::PCDATA);
    let dtd = Dtd::parse(FIGURE_2_DTD, &mut alphabet)?;
    let doc = parse_with_alphabet(FIGURE_1_XML, &mut alphabet)?;
    // re-share the grown alphabet
    let dtd = Dtd {
        alphabet: doc.alphabet.clone(),
        ..dtd
    };
    Ok((doc, dtd))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_has_the_figure_3_shape() {
        let (doc, _) = bibliography().unwrap();
        let a = &doc.alphabet;
        let t = &doc.tree;
        let root = t.root();
        assert_eq!(a.name(t.label(root)), "bibliography");
        assert_eq!(t.arity(root), 2);
        let book = t.child(root, 0);
        let article = t.child(root, 1);
        assert_eq!(a.name(t.label(book)), "book");
        assert_eq!(a.name(t.label(article)), "article");
        // book: 3 authors, title, publisher, year
        let kinds: Vec<&str> = t
            .children(book)
            .iter()
            .map(|&c| a.name(t.label(c)))
            .collect();
        assert_eq!(
            kinds,
            vec!["author", "author", "author", "title", "publisher", "year"]
        );
        // every field holds one #pcdata leaf
        for &c in t.children(article) {
            assert_eq!(t.arity(c), 1);
            assert_eq!(a.name(t.label(t.child(c, 0))), "#pcdata");
        }
    }

    #[test]
    fn codd_is_in_the_article() {
        let (doc, _) = bibliography().unwrap();
        let texts: Vec<&str> = doc.tree.nodes().filter_map(|v| doc.text_of(v)).collect();
        assert!(texts.contains(&"E. Codd"));
        assert!(texts.contains(&"Foundations of Databases"));
    }
}
