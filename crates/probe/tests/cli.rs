//! End-to-end tests of the `qa-trace` binary: record two runs differing in
//! one transition, diff them, explain a selection, and export both formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qa_trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-trace"))
        .args(args)
        .output()
        .expect("spawn qa-trace")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

#[test]
fn record_diff_pinpoints_the_changed_transition() {
    let a = tmp("orig.json");
    let b = tmp("variant.json");
    let out = qa_trace(&["record", "example-3-4", "0110", "--out", &a]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = qa_trace(&["record", "example-3-4-variant", "0110", "--out", &b]);
    assert!(out.status.success());

    // identical traces: exit 0
    let same = qa_trace(&["diff", &a, &a]);
    assert!(same.status.success());

    // the one-transition variant: exit 1 and the first divergence named
    let diff = qa_trace(&["diff", &a, &b]);
    assert_eq!(diff.status.code(), Some(1));
    let text = String::from_utf8_lossy(&diff.stdout);
    assert!(
        text.contains("first divergence at step 6"),
        "unexpected diff output:\n{text}"
    );
    assert!(text.contains("q1 @ 4"), "original turns into s1:\n{text}");
    assert!(text.contains("q2 @ 4"), "variant turns into s2:\n{text}");
}

#[test]
fn why_explains_the_example_3_4_selection() {
    let out = qa_trace(&["why", "example-3-4", "0110"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(word index 1)"), "{text}");
    assert!(
        text.contains("position 2 selected: λ(q1, σ1) = 1"),
        "{text}"
    );
    assert!(text.contains("visits:"), "{text}");

    // JSON mode parses back
    let out = qa_trace(&["why", "example-3-4", "0110", "--json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid JSON explanation");
    assert_eq!(v.get("pos").and_then(qa_obs::json::Value::as_u64), Some(2));
}

#[test]
fn why_shows_the_stay_certificate() {
    let out = qa_trace(&["why", "example-5-14"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stay certificate"), "{text}");
}

#[test]
fn replay_and_exports_work_on_recorded_files() {
    let trace = tmp("replay.json");
    let metrics = tmp("metrics.json");
    let out = qa_trace(&[
        "record",
        "example-3-4",
        "0110",
        "--out",
        &trace,
        "--metrics-out",
        &metrics,
    ]);
    assert!(out.status.success());

    let replay = qa_trace(&["replay", &trace]);
    assert!(replay.status.success());
    let text = String::from_utf8_lossy(&replay.stdout);
    assert!(text.contains("q0 @ 0 ->"), "{text}");
    assert!(text.contains("steps:"), "{text}");

    let chrome = qa_trace(&["export", "chrome", &trace]);
    assert!(chrome.status.success());
    let text = String::from_utf8_lossy(&chrome.stdout);
    let v = qa_obs::json::parse(text.trim()).expect("valid trace-event JSON");
    assert!(v.get("traceEvents").is_some());

    let prom = qa_trace(&["export", "prom", &metrics]);
    assert!(prom.status.success());
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(text.contains("# TYPE qa_steps_total counter"), "{text}");
}

#[test]
fn bad_usage_exits_2() {
    assert_eq!(qa_trace(&[]).status.code(), Some(2));
    assert_eq!(
        qa_trace(&["record", "no-such-workload"]).status.code(),
        Some(2)
    );
    assert_eq!(qa_trace(&["frobnicate"]).status.code(), Some(2));
}
