//! Iterative traversal helpers shared by the automata crates.

use crate::{NodeId, Tree};

/// Visit nodes bottom-up (children before parents), calling `f(tree, node)`.
///
/// Equivalent to iterating [`Tree::postorder`] but without materializing the
/// order when the callback is cheap.
pub fn bottom_up(tree: &Tree, mut f: impl FnMut(&Tree, NodeId)) {
    for v in tree.postorder() {
        f(tree, v);
    }
}

/// Visit nodes top-down (parents before children, left to right).
pub fn top_down(tree: &Tree, mut f: impl FnMut(&Tree, NodeId)) {
    for v in tree.preorder() {
        f(tree, v);
    }
}

/// Fold bottom-up: compute a value per node from its label and its
/// children's values (the evaluation scheme of bottom-up tree automata,
/// Definition 2.6). Iterative; returns the per-node table.
pub fn fold_bottom_up<T: Clone>(
    tree: &Tree,
    mut f: impl FnMut(&Tree, NodeId, &[T]) -> T,
) -> Vec<T> {
    let mut values: Vec<Option<T>> = vec![None; tree.num_nodes()];
    for v in tree.postorder() {
        let child_vals: Vec<T> = tree
            .children(v)
            .iter()
            .map(|c| values[c.index()].clone().expect("postorder"))
            .collect();
        values[v.index()] = Some(f(tree, v, &child_vals));
    }
    values
        .into_iter()
        .map(|v| v.expect("all visited"))
        .collect()
}

/// Fold top-down: compute a value per node from its parent's value (root
/// seeded with `root_value`). Returns the per-node table.
pub fn fold_top_down<T: Clone>(
    tree: &Tree,
    root_value: T,
    mut f: impl FnMut(&Tree, NodeId, &T) -> T,
) -> Vec<T> {
    let mut values: Vec<Option<T>> = vec![None; tree.num_nodes()];
    values[tree.root().index()] = Some(root_value);
    for v in tree.preorder() {
        let val = values[v.index()].clone().expect("preorder");
        for &c in tree.children(v) {
            values[c.index()] = Some(f(tree, c, &val));
        }
    }
    values
        .into_iter()
        .map(|v| v.expect("all visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    #[test]
    fn fold_bottom_up_computes_sizes() {
        let mut a = Alphabet::new();
        let t = crate::sexpr::from_sexpr("(f (g x y) y)", &mut a).unwrap();
        let sizes = fold_bottom_up(&t, |_, _, kids: &[usize]| 1 + kids.iter().sum::<usize>());
        assert_eq!(sizes[t.root().index()], 5);
        let g = t.child(t.root(), 0);
        assert_eq!(sizes[g.index()], 3);
    }

    #[test]
    fn fold_top_down_computes_depths() {
        let mut a = Alphabet::new();
        let t = crate::sexpr::from_sexpr("(f (g x y) y)", &mut a).unwrap();
        let depths = fold_top_down(&t, 0usize, |_, _, &d| d + 1);
        for v in t.nodes() {
            assert_eq!(depths[v.index()], t.depth(v));
        }
    }

    #[test]
    fn traversal_callback_order() {
        let mut a = Alphabet::new();
        let t = crate::sexpr::from_sexpr("(f x y)", &mut a).unwrap();
        let mut order = Vec::new();
        bottom_up(&t, |tr, v| order.push(a.name(tr.label(v)).to_owned()));
        assert_eq!(order, vec!["x", "y", "f"]);
        order.clear();
        top_down(&t, |tr, v| order.push(a.name(tr.label(v)).to_owned()));
        assert_eq!(order, vec!["f", "x", "y"]);
    }
}
