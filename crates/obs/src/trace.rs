//! [`RunTrace`]: a recording observer for debugging and run reports.

use std::time::{Duration, Instant};

use crate::json::{self, ObjectWriter};
use crate::observer::{Counter, Observer, Series};

/// One recorded two-way configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Machine state.
    pub state: u32,
    /// Tape position / tree node index.
    pub pos: u32,
    /// Move direction: −1 left/up, +1 right/down, 0 halt or stay.
    pub dir: i8,
}

/// A completed named phase with its wall-clock duration.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    /// Phase name as passed to [`Observer::phase_start`].
    pub name: &'static str,
    /// Nesting depth at which the phase ran (0 = top level).
    pub depth: usize,
    /// When the phase started, relative to trace creation — the timestamp
    /// axis for trace-event (Perfetto) exports.
    pub start: Duration,
    /// Wall-clock time between start and end.
    pub elapsed: Duration,
}

/// Observer that records the configuration sequence of a run, tallies
/// counters locally, and times phases.
///
/// The configuration log is capped (default 4096 entries; see
/// [`RunTrace::with_capacity`]) so tracing a runaway run cannot exhaust
/// memory — `truncated` reports whether the cap was hit.
#[derive(Debug)]
pub struct RunTrace {
    /// Recorded configurations, oldest first.
    pub configs: Vec<TraceConfig>,
    /// Completed phases in completion order.
    pub phases: Vec<PhaseSpan>,
    counters: [u64; Counter::COUNT],
    samples: [(u64, u64); Series::COUNT], // (count, sum)
    cap: usize,
    truncated: bool,
    open_phases: Vec<(&'static str, Instant)>,
    t0: Instant,
}

impl Default for RunTrace {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl RunTrace {
    /// Trace with the default configuration cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trace that records at most `cap` configurations.
    pub fn with_capacity(cap: usize) -> Self {
        RunTrace {
            configs: Vec::new(),
            phases: Vec::new(),
            counters: [0; Counter::COUNT],
            samples: [(0, 0); Series::COUNT],
            cap,
            truncated: false,
            open_phases: Vec::new(),
            t0: Instant::now(),
        }
    }

    /// Whether the configuration cap was hit.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Locally tallied value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// `(count, sum)` of samples recorded into `series`.
    pub fn samples(&self, series: Series) -> (u64, u64) {
        self.samples[series.index()]
    }

    /// Head reversals implied by the recorded configurations (adjacent
    /// configs with opposite nonzero directions).
    pub fn reversals(&self) -> u64 {
        self.configs
            .windows(2)
            .filter(|w| w[0].dir != 0 && w[1].dir != 0 && w[0].dir != w[1].dir)
            .count() as u64
    }

    /// Human-readable rendering: one `state @ pos dir` line per
    /// configuration, then counters and phase timings.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.configs.iter().enumerate() {
            let arrow = match c.dir {
                d if d < 0 => "<-",
                d if d > 0 => "->",
                _ => "--",
            };
            out.push_str(&format!("{i:4}  q{} @ {} {}\n", c.state, c.pos, arrow));
        }
        if self.truncated {
            out.push_str("      ... (truncated)\n");
        }
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                out.push_str(&format!("{}: {v}\n", c.name()));
            }
        }
        for p in &self.phases {
            out.push_str(&format!(
                "{}[{}] {:.3} ms\n",
                "  ".repeat(p.depth),
                p.name,
                p.elapsed.as_secs_f64() * 1e3
            ));
        }
        out
    }

    /// JSON run report:
    /// `{"configs": [{state, pos, dir}…], "truncated": bool,
    /// "counters": {…}, "phases": [{name, depth, start_ms, ms}…]}`.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            let configs = json::array(self.configs.iter().map(|c| {
                json::object(|cw| {
                    cw.field_u64("state", c.state as u64);
                    cw.field_u64("pos", c.pos as u64);
                    cw.field_raw("dir", &c.dir.to_string());
                })
            }));
            w.field_raw("configs", &configs);
            w.field_bool("truncated", self.truncated);
            self.write_counters(w);
            let phases = json::array(self.phases.iter().map(|p| {
                json::object(|pw| {
                    pw.field_str("name", p.name);
                    pw.field_u64("depth", p.depth as u64);
                    pw.field_f64("start_ms", p.start.as_secs_f64() * 1e3);
                    pw.field_f64("ms", p.elapsed.as_secs_f64() * 1e3);
                })
            }));
            w.field_raw("phases", &phases);
        })
    }

    fn write_counters(&self, w: &mut ObjectWriter) {
        let counters = json::object(|cw| {
            for c in Counter::ALL {
                let v = self.counter(c);
                if v != 0 {
                    cw.field_u64(c.name(), v);
                }
            }
        });
        w.field_raw("counters", &counters);
    }
}

impl Observer for RunTrace {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }

    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        let (c, s) = &mut self.samples[series.index()];
        *c += 1;
        *s += value;
    }

    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        if self.configs.len() < self.cap {
            self.configs.push(TraceConfig { state, pos, dir });
        } else {
            self.truncated = true;
        }
    }

    fn phase_start(&mut self, name: &'static str) {
        self.open_phases.push((name, Instant::now()));
    }

    fn phase_end(&mut self, name: &'static str) {
        // Close the innermost open phase with this name; ignore a stray end.
        if let Some(i) = self.open_phases.iter().rposition(|(n, _)| *n == name) {
            let (_, start) = self.open_phases.remove(i);
            self.phases.push(PhaseSpan {
                name,
                depth: i,
                start: start.duration_since(self.t0),
                elapsed: start.elapsed(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_configs_and_counts_reversals() {
        let mut t = RunTrace::new();
        t.config(0, 0, 1);
        t.config(0, 1, 1);
        t.config(1, 2, -1);
        t.config(2, 1, 0);
        assert_eq!(t.configs.len(), 4);
        assert_eq!(t.reversals(), 1);
        assert!(!t.truncated());
    }

    #[test]
    fn cap_truncates() {
        let mut t = RunTrace::with_capacity(2);
        for i in 0..5 {
            t.config(0, i, 1);
        }
        assert_eq!(t.configs.len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn phases_nest_and_time() {
        let mut t = RunTrace::new();
        t.phase_start("outer");
        t.phase_start("inner");
        t.phase_end("inner");
        t.phase_end("outer");
        t.phase_end("stray"); // ignored
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "inner");
        assert_eq!(t.phases[0].depth, 1);
        assert_eq!(t.phases[1].name, "outer");
        assert_eq!(t.phases[1].depth, 0);
    }

    #[test]
    fn json_contains_configs_counters_phases() {
        let mut t = RunTrace::new();
        t.config(1, 2, -1);
        t.count(Counter::Steps, 4);
        t.phase_start("run");
        t.phase_end("run");
        let j = t.to_json();
        assert!(j.starts_with(r#"{"configs":[{"state":1,"pos":2,"dir":-1}]"#));
        assert!(j.contains(r#""counters":{"steps":4}"#));
        assert!(j.contains(r#""name":"run""#));
        assert!(j.contains(r#""truncated":false"#));
    }

    #[test]
    fn text_rendering_shows_directions() {
        let mut t = RunTrace::new();
        t.config(0, 0, 1);
        t.config(1, 1, -1);
        t.config(2, 0, 0);
        let text = t.render_text();
        assert!(text.contains("q0 @ 0 ->"));
        assert!(text.contains("q1 @ 1 <-"));
        assert!(text.contains("q2 @ 0 --"));
    }
}
