//! Shepherdson's construction: 2DFA → one-way DFA.
//!
//! A one-way DFA can simulate a two-way one by carrying, for each prefix
//! `⊳ w₁…wᵢ`, a *summary*: (a) for every state `s`, what happens if the
//! machine stands on the last cell of the prefix in `s` — it exits right in
//! some state, halts somewhere inside (accepting or not), or loops; and (b)
//! the same outcome for the actual start run. The summary is exactly the
//! behavior function `f←` of Theorem 3.9 enriched with halt/loop
//! information, which makes the construction exact for *all* deterministic
//! machines (the paper may assume halting at the right endmarker; we do not
//! need to).

use std::collections::{HashMap, VecDeque};

use qa_base::Symbol;
use qa_strings::{Dfa, StateId};

use crate::tape::Tape;
use crate::twodfa::{Dir, TwoDfa};

/// Abstract outcome used inside prefix summaries (positions abstracted away,
/// halting states abstracted to their acceptance bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Out {
    Exit(StateId),
    Halt(bool),
    Loop,
}

/// A prefix summary: per-state outcome table plus the start-run outcome.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Summary {
    /// `table[s]`: outcome of standing on the last prefix cell in state `s`.
    table: Vec<Out>,
    /// Outcome of the start run within the prefix.
    start: Out,
}

/// Simulate standing on a cell with the given `cell` symbol in state `s`,
/// where left excursions are resolved by `left_table` (the summary of the
/// prefix to the left). Returns the outcome.
fn cell_outcome(m: &TwoDfa, cell: Tape, left_table: Option<&[Out]>, s: StateId) -> Out {
    let mut visited = vec![false; m.num_states()];
    let mut cur = s;
    loop {
        if visited[cur.index()] {
            return Out::Loop;
        }
        visited[cur.index()] = true;
        match m.action(cur, cell) {
            None => return Out::Halt(m.is_final(cur)),
            Some((Dir::Right, s2)) => return Out::Exit(s2),
            Some((Dir::Left, s1)) => {
                let table = left_table.expect("left move on ⊳ rejected by builder");
                match table[s1.index()] {
                    Out::Exit(s2) => cur = s2,
                    other => return other,
                }
            }
        }
    }
}

/// Extend a summary by one more cell.
fn extend(m: &TwoDfa, summary: &Summary, cell: Tape) -> Summary {
    let table: Vec<Out> = (0..m.num_states())
        .map(|s| cell_outcome(m, cell, Some(&summary.table), StateId::from_index(s)))
        .collect();
    let start = match summary.start {
        Out::Exit(s) => cell_outcome(m, cell, Some(&summary.table), s),
        other => other,
    };
    Summary { table, start }
}

/// The summary of the bare `⊳` prefix.
fn initial_summary(m: &TwoDfa) -> Summary {
    let table: Vec<Out> = (0..m.num_states())
        .map(|s| cell_outcome(m, Tape::LeftMarker, None, StateId::from_index(s)))
        .collect();
    let start = cell_outcome(m, Tape::LeftMarker, None, m.initial());
    Summary { table, start }
}

/// Whether the machine accepts once the full word has been summarized:
/// append the `⊲` cell and require the start run to halt in a final state.
fn summary_accepts(m: &TwoDfa, summary: &Summary) -> bool {
    let closed = extend(m, summary, Tape::RightMarker);
    matches!(closed.start, Out::Halt(true))
}

/// Convert a 2DFA into an equivalent one-way DFA (Shepherdson).
///
/// Only reachable summaries are constructed; the result is total over the
/// input alphabet. Words on which the 2DFA loops are rejected by the DFA
/// (a looping run is not accepting).
pub fn to_dfa(m: &TwoDfa) -> Dfa {
    let mut dfa = Dfa::new(m.alphabet_len());
    let mut index: HashMap<Summary, StateId> = HashMap::new();
    let mut queue: VecDeque<Summary> = VecDeque::new();

    let init = initial_summary(m);
    let id = dfa.add_state();
    dfa.set_initial(id);
    dfa.set_accepting(id, summary_accepts(m, &init));
    index.insert(init.clone(), id);
    queue.push_back(init);

    while let Some(summary) = queue.pop_front() {
        let from = index[&summary];
        for a in 0..m.alphabet_len() {
            let sym = Symbol::from_index(a);
            let next = extend(m, &summary, Tape::Sym(sym));
            let to = match index.get(&next) {
                Some(&id) => id,
                None => {
                    let id = dfa.add_state();
                    dfa.set_accepting(id, summary_accepts(m, &next));
                    index.insert(next.clone(), id);
                    queue.push_back(next);
                    id
                }
            };
            dfa.set_transition(from, sym, to);
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twodfa::TwoDfaBuilder;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    fn example_3_4() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.set_final(s1, true);
        b.set_final(s2, true);
        b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
        b.set_action_all_symbols(s0, Dir::Right, s0);
        b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
        b.set_action_all_symbols(s1, Dir::Left, s2);
        b.set_action_all_symbols(s2, Dir::Left, s1);
        b.build().unwrap()
    }

    /// 2DFA accepting words whose last symbol is `1`, checking it by walking
    /// right then verifying on the way back (halts at ⊳, final only if seen).
    fn last_is_one() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let fwd = b.add_state();
        let chk = b.add_state(); // at last symbol on the way back
        let yes = b.add_state();
        let no = b.add_state();
        b.set_initial(fwd);
        b.set_final(yes, true);
        b.set_action(fwd, Tape::LeftMarker, Dir::Right, fwd);
        b.set_action_all_symbols(fwd, Dir::Right, fwd);
        b.set_action(fwd, Tape::RightMarker, Dir::Left, chk);
        b.set_action(chk, Tape::Sym(sym(1)), Dir::Left, yes);
        b.set_action(chk, Tape::Sym(sym(0)), Dir::Left, no);
        b.set_action_all_symbols(yes, Dir::Left, yes);
        b.set_action_all_symbols(no, Dir::Left, no);
        // chk on ⊳ (empty word): halt non-final. yes/no halt at ⊳.
        b.build().unwrap()
    }

    #[test]
    fn equivalent_on_all_short_words() {
        for m in [example_3_4(), last_is_one()] {
            let d = to_dfa(&m);
            for len in 0..=7usize {
                for mask in 0..(1usize << len) {
                    let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                    assert_eq!(m.accepts(&w).unwrap(), d.accepts(&w), "{w:?}");
                }
            }
        }
    }

    #[test]
    fn looping_words_are_rejected() {
        // machine that loops on any word containing symbol 1, accepts others
        let mut b = TwoDfaBuilder::new(2);
        let q = b.add_state();
        let l1 = b.add_state();
        let l2 = b.add_state();
        b.set_initial(q);
        b.set_final(q, true);
        b.set_action(q, Tape::LeftMarker, Dir::Right, q);
        b.set_action(q, Tape::Sym(sym(0)), Dir::Right, q);
        b.set_action(q, Tape::Sym(sym(1)), Dir::Left, l1);
        b.set_action_all_symbols(l1, Dir::Right, l2);
        b.set_action(l1, Tape::LeftMarker, Dir::Right, l2);
        b.set_action_all_symbols(l2, Dir::Left, l1);
        b.set_action(l2, Tape::RightMarker, Dir::Left, l1);
        let m = b.build().unwrap();
        assert!(m.run(&[sym(1)]).is_err(), "machine loops");
        let d = to_dfa(&m);
        assert!(d.accepts(&[sym(0), sym(0)]));
        assert!(!d.accepts(&[sym(0), sym(1)]));
    }

    #[test]
    fn dfa_is_total_and_minimizable() {
        let d = to_dfa(&example_3_4());
        assert!(d.is_total());
        let min = d.minimize();
        assert!(min.equivalent(&d));
        // Example 3.4's machine accepts every input (all halting states
        // final), so the minimal DFA has one state.
        assert_eq!(min.num_states(), 1);
    }
}
