//! Generalized string query automata (Definition 3.5).

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, NoopObserver, Observer};
use qa_strings::StateId;

use crate::tape::Tape;
use crate::twodfa::TwoDfa;

/// A generalized string query automaton: a 2DFA plus an output function
/// `λ : S × Σ → Γ ∪ {⊥}` over a finite output alphabet Γ.
///
/// Following the paper's convention, a well-formed GSQA outputs **exactly
/// one** Γ-symbol at every position of every accepted input; [`Gsqa::run`]
/// enforces this dynamically and reports violations as
/// [`Error::IllFormed`]. Output symbols are dense indices `0..gamma_len`
/// (interpret them with whatever output alphabet the caller maintains).
///
/// GSQAs compute the *stay transitions* of strong unranked query automata
/// (Definition 5.11) and realize the Hopcroft–Ullman composition of
/// Lemma 3.10 (see [`crate::hopcroft_ullman`]).
#[derive(Clone, Debug)]
pub struct Gsqa {
    machine: TwoDfa,
    /// `output[state][symbol]` = Γ-symbol emitted, if any.
    output: Vec<Vec<Option<u32>>>,
    gamma_len: usize,
}

impl Gsqa {
    /// Wrap `machine` with an everything-`⊥` output function over an output
    /// alphabet of `gamma_len` symbols.
    pub fn new(machine: TwoDfa, gamma_len: usize) -> Self {
        let output = vec![vec![None; machine.alphabet_len()]; machine.num_states()];
        Gsqa {
            machine,
            output,
            gamma_len,
        }
    }

    /// Set `λ(state, sym) = gamma`.
    pub fn set_output(&mut self, state: StateId, sym: Symbol, gamma: u32) {
        debug_assert!((gamma as usize) < self.gamma_len, "gamma outside Γ");
        self.output[state.index()][sym.index()] = Some(gamma);
    }

    /// The output for `(state, sym)`, if any.
    pub fn output_of(&self, state: StateId, sym: Symbol) -> Option<u32> {
        self.output[state.index()][sym.index()]
    }

    /// The underlying 2DFA.
    pub fn machine(&self) -> &TwoDfa {
        &self.machine
    }

    /// Size of the output alphabet Γ.
    pub fn gamma_len(&self) -> usize {
        self.gamma_len
    }

    /// Run on `word` and return the output word `M(w, 1) … M(w, |w|)`.
    ///
    /// Errors when the machine loops, rejects, or violates the
    /// exactly-one-output-per-position convention.
    pub fn run(&self, word: &[Symbol]) -> Result<Vec<u32>> {
        self.run_with(word, &mut NoopObserver)
    }

    /// [`Gsqa::run`] with an [`Observer`]: the underlying 2DFA run and the
    /// output-collection scan are reported to `obs`. With [`NoopObserver`]
    /// this monomorphizes to exactly `run`.
    pub fn run_with<O: Observer>(&self, word: &[Symbol], obs: &mut O) -> Result<Vec<u32>> {
        obs.phase_start("run");
        let rec = self.machine.run_with(word, obs);
        obs.phase_end("run");
        let rec = rec?;
        if !rec.accepted {
            return Err(Error::stuck(
                "GSQA halted in a non-final state; output undefined",
            ));
        }
        obs.phase_start("output scan");
        let mut out: Vec<Option<u32>> = vec![None; word.len()];
        for (pos, states) in rec.assumed.iter().enumerate() {
            let Some(sym) = Tape::at(word, pos).symbol() else {
                continue;
            };
            obs.count(Counter::SelectionChecks, states.len() as u64);
            for &s in states {
                if let Some(g) = self.output_of(s, sym) {
                    match out[pos - 1] {
                        None => out[pos - 1] = Some(g),
                        Some(prev) if prev == g => {}
                        Some(prev) => {
                            return Err(Error::ill_formed(
                                "GSQA output",
                                format!(
                                    "two distinct outputs ({prev} and {g}) at position {}",
                                    pos - 1
                                ),
                            ))
                        }
                    }
                }
            }
        }
        obs.phase_end("output scan");
        out.into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.ok_or_else(|| {
                    Error::ill_formed("GSQA output", format!("no output at position {i}"))
                })
            })
            .collect()
    }
}

/// Build the Example 3.6 GSQA over alphabet `{0, 1}` and output alphabet
/// `{0, 1, *}` (encoded 0, 1, 2): copy the input, but replace each `1` on an
/// odd position counted from the right with `*`.
pub fn example_3_6_gsqa(alphabet: &qa_base::Alphabet) -> Gsqa {
    use crate::twodfa::{Dir, TwoDfaBuilder};
    let zero = alphabet.symbol("0");
    let one = alphabet.symbol("1");
    let mut b = TwoDfaBuilder::new(alphabet.len());
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.set_initial(s0);
    b.set_final(s1, true);
    b.set_final(s2, true);
    b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
    b.set_action_all_symbols(s0, Dir::Right, s0);
    b.set_action(s0, Tape::RightMarker, Dir::Left, s1);
    b.set_action_all_symbols(s1, Dir::Left, s2);
    b.set_action_all_symbols(s2, Dir::Left, s1);
    let mut g = Gsqa::new(b.build().expect("valid machine"), 3);
    // The s0 sweep outputs nothing; the return sweep in s1/s2 visits every
    // position exactly once, emitting the final verdict.
    g.set_output(s1, zero, 0);
    g.set_output(s1, one, 2); // `*`
    g.set_output(s2, zero, 0);
    g.set_output(s2, one, 1);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    #[test]
    fn example_3_6_output_matches_paper() {
        let a = Alphabet::from_names(["0", "1"]);
        let g = example_3_6_gsqa(&a);
        // paper: M(⊳0110⊲) = 0*10
        let w = a.word("0110");
        assert_eq!(g.run(&w).unwrap(), vec![0, 2, 1, 0]);
    }

    #[test]
    fn every_position_gets_exactly_one_output() {
        let a = Alphabet::from_names(["0", "1"]);
        let g = example_3_6_gsqa(&a);
        for len in 0..=5usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len)
                    .map(|i| Symbol::from_index((mask >> i) & 1))
                    .collect();
                let out = g.run(&w).unwrap();
                assert_eq!(out.len(), w.len());
            }
        }
    }

    #[test]
    fn missing_output_is_reported() {
        let a = Alphabet::from_names(["0", "1"]);
        let mut g = example_3_6_gsqa(&a);
        // Break the output function: drop λ(s1, 0).
        g.output[1][0] = None;
        let w = a.word("00");
        assert!(matches!(g.run(&w), Err(Error::IllFormed { .. })));
    }

    #[test]
    fn conflicting_output_is_reported() {
        let a = Alphabet::from_names(["0", "1"]);
        let mut g = example_3_6_gsqa(&a);
        // Make the first sweep also emit (conflicting) outputs.
        let zero = a.symbol("0");
        g.set_output(StateId::from_index(0), zero, 1);
        let w = a.word("0");
        assert!(matches!(g.run(&w), Err(Error::IllFormed { .. })));
    }
}
