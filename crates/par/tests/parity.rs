//! Parity suite: parallel evaluation must be observably identical to
//! sequential evaluation — same selection sets (in the same order) and, for
//! the uncached engines, the same step counts — on seeded random string,
//! ranked, and unranked workloads. Plus a cache-hit-rate regression guard.

use qa_base::rng::{Rng, StdRng};
use qa_base::{Alphabet, Symbol};
use qa_core::ranked::query::example_4_4;
use qa_core::unranked::query::example_5_14;
use qa_obs::{Counter, Metrics};
use qa_par::{par_batch_with, par_evaluate, par_evaluate_with, Job, Outcome};
use qa_twoway::string_qa::example_3_4_qa;

fn random_words(seed: u64, count: usize, max_len: usize, a: &Alphabet) -> Vec<Vec<Symbol>> {
    let labels = [a.symbol("0"), a.symbol("1")];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(0..=max_len);
            (0..len).map(|_| labels[rng.gen_range(0..2)]).collect()
        })
        .collect()
}

/// Sum every counter over a slice of per-worker registries.
fn totals(regs: &[Metrics]) -> Vec<u64> {
    Counter::ALL
        .iter()
        .map(|&c| regs.iter().map(|m| m.get(c)).sum())
        .collect()
}

#[test]
fn string_selections_parallel_equals_sequential() {
    let a = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&a);
    let words = random_words(11, 300, 14, &a);
    let jobs: Vec<Job> = words
        .iter()
        .map(|w| Job::String { qa: &qa, word: w })
        .collect();
    let par = par_evaluate(4, &jobs);
    let seq = par_evaluate(1, &jobs);
    assert_eq!(par, seq);
    // Ground truth: the literal run-replay engine, job by job.
    for (w, out) in words.iter().zip(&par) {
        assert_eq!(*out, Outcome::Positions(qa.query(w).unwrap()));
    }
}

#[test]
fn string_step_counts_parallel_equals_sequential() {
    // The uncached replay engine does identical work per job no matter which
    // worker runs it, so summed per-worker counters must match the
    // sequential totals exactly — steps, reversals, lookups, all of them.
    let a = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&a);
    let words = random_words(12, 200, 12, &a);
    let jobs: Vec<&Vec<Symbol>> = words.iter().collect();

    let regs1: Vec<Metrics> = (0..1).map(|_| Metrics::new()).collect();
    let out1 = par_batch_with(
        1,
        jobs.clone(),
        |wid| regs1[wid].observer(),
        |obs, _i, w| qa.query_with(w, obs).unwrap(),
    );
    let regs4: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
    let out4 = par_batch_with(
        4,
        jobs,
        |wid| regs4[wid].observer(),
        |obs, _i, w| qa.query_with(w, obs).unwrap(),
    );
    assert_eq!(out1, out4);
    assert_eq!(totals(&regs1), totals(&regs4));
    assert!(
        regs1[0].get(Counter::Steps) > 0,
        "workload actually stepped"
    );
}

#[test]
fn ranked_workload_parity() {
    let a = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = example_4_4(&a);
    let inner = [a.symbol("AND"), a.symbol("OR")];
    let leaves = [a.symbol("0"), a.symbol("1")];
    let mut rng = StdRng::seed_from_u64(13);
    let trees: Vec<_> = (0..120)
        .map(|_| qa_trees::generate::random_full_binary(&mut rng, &inner, &leaves, 8))
        .collect();
    let jobs: Vec<Job> = trees
        .iter()
        .map(|t| Job::Ranked { qa: &qa, tree: t })
        .collect();

    // Ranked replay is uncached, so both selections and step counts are
    // partition-invariant even through the cached batch entry point.
    let regs1: Vec<Metrics> = (0..1).map(|_| Metrics::new()).collect();
    let seq = par_evaluate_with(1, &jobs, |wid| regs1[wid].observer());
    let regs4: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
    let par = par_evaluate_with(4, &jobs, |wid| regs4[wid].observer());
    assert_eq!(par, seq);
    assert_eq!(totals(&regs1), totals(&regs4));
    for (t, out) in trees.iter().zip(&par) {
        assert_eq!(*out, Outcome::Nodes(qa.query(t).unwrap()));
    }
}

#[test]
fn unranked_workload_parity() {
    let a = Alphabet::from_names(["0", "1"]);
    let qa = example_5_14(&a);
    let labels = [a.symbol("0"), a.symbol("1")];
    let mut rng = StdRng::seed_from_u64(14);
    let trees: Vec<_> = (0..120)
        .map(|_| qa_trees::generate::random(&mut rng, &labels, 15, None))
        .collect();
    let jobs: Vec<Job> = trees
        .iter()
        .map(|t| Job::Unranked { qa: &qa, tree: t })
        .collect();
    let par = par_evaluate(4, &jobs);
    let seq = par_evaluate(1, &jobs);
    assert_eq!(par, seq);
    for (t, out) in trees.iter().zip(&par) {
        assert_eq!(*out, Outcome::Nodes(qa.query(t).unwrap()));
    }

    // Step counts via the uncached engine, summed per worker.
    let tj: Vec<_> = trees.iter().collect();
    let regs1: Vec<Metrics> = (0..1).map(|_| Metrics::new()).collect();
    let s = par_batch_with(
        1,
        tj.clone(),
        |wid| regs1[wid].observer(),
        |obs, _i, t| qa.query_with(t, obs).unwrap(),
    );
    let regs4: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
    let p = par_batch_with(
        4,
        tj,
        |wid| regs4[wid].observer(),
        |obs, _i, t| qa.query_with(t, obs).unwrap(),
    );
    assert_eq!(s, p);
    assert_eq!(totals(&regs1), totals(&regs4));
}

#[test]
fn cache_hit_rate_regression() {
    // A realistic batch shape: few distinct documents repeated many times,
    // plus repeated decision calls on one machine. Each of the 4 workers
    // pays the distinct entries once; everything else must hit. If the hit
    // rate collapses below 50% a cache layer has regressed.
    let sa = Alphabet::from_names(["0", "1"]);
    let sqa = example_3_4_qa(&sa);
    let pool = ["0110", "10110", "111", "00100100", "1", ""];
    let words: Vec<Vec<Symbol>> = pool.iter().map(|w| sa.word(w)).collect();
    let ca = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let rqa = example_4_4(&ca);

    let mut jobs: Vec<Job> = Vec::new();
    for i in 0..240 {
        jobs.push(Job::String {
            qa: &sqa,
            word: &words[i % words.len()],
        });
    }
    for _ in 0..12 {
        jobs.push(Job::NonEmptiness {
            qa: &rqa,
            max_items: 100_000,
        });
    }

    let regs: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
    let out = par_evaluate_with(4, &jobs, |wid| regs[wid].observer());
    assert_eq!(out.len(), jobs.len());
    let hits: u64 = regs.iter().map(|m| m.get(Counter::CacheHits)).sum();
    let misses: u64 = regs.iter().map(|m| m.get(Counter::CacheMisses)).sum();
    assert!(hits > 0, "repeated documents must produce cache hits");
    assert!(misses > 0, "first encounters must miss");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate >= 0.5,
        "cache hit rate regressed: {hits} hits / {misses} misses = {rate:.2}"
    );
}
