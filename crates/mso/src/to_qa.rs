//! Theorem 3.9, constructive direction: every unary MSO query over strings
//! is computed by an actual query automaton.
//!
//! Given the deterministic automaton `D` over `Σ × {0,1}` for `φ(x)`
//! (from [`crate::compile_string::compile_unary`]):
//!
//! - a left-to-right DFA `M₁` tracks `(p_{i−1}, p_i)` — `D`'s state on the
//!   unmarked prefix before and after each position;
//! - a right-to-left DFA `M₂` tracks `B_i = {q | reading the unmarked
//!   suffix w_i…w_n from q accepts}` (and its one-step-delayed copy);
//! - position `i` is selected iff `δ_D(p_{i−1}, (w_i, 1)) ∈ B_{i+1}`.
//!
//! That decision is a [`qa_twoway::Bimachine`] with output alphabet
//! `{⊥, 1}`, which Lemma 3.10 ([`qa_twoway::hopcroft_ullman::compose`])
//! turns into a single two-way machine; wiring its outputs into a selection
//! function yields a literal [`StringQa`]. The machine accepts every input
//! (the query `φ(x)` has no acceptance gate) and selects exactly
//! `{i | w ⊨ φ[i]}`.

use std::collections::HashMap;

use qa_base::{Result, Symbol};
use qa_strings::{Dfa, StateId};
use qa_twoway::{hopcroft_ullman, Bimachine, StringQa};

use crate::compile_string::ext_symbol;

/// Build the bimachine deciding per-position selection (see module docs).
pub fn selection_bimachine(d: &Dfa, sigma: usize) -> Result<Bimachine> {
    let d = d.totalize();
    // M1: states are pairs (prev, cur) of D-states on the unmarked prefix.
    // Lazily reachable pairs only.
    let mut m1 = Dfa::new(sigma);
    let mut idx1: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let start = (d.initial(), d.initial());
    let id = m1.add_state();
    idx1.insert(start, id);
    pairs.push(start);
    m1.set_initial(id);
    let mut i = 0;
    while i < pairs.len() {
        let (_, cur) = pairs[i];
        let from = idx1[&pairs[i]];
        for a in 0..sigma {
            let sym = Symbol::from_index(a);
            let nxt = d.next(cur, ext_symbol(sym, 0, sigma)).expect("totalized");
            let key = (cur, nxt);
            let to = match idx1.get(&key) {
                Some(&t) => t,
                None => {
                    let t = m1.add_state();
                    idx1.insert(key, t);
                    pairs.push(key);
                    t
                }
            };
            m1.set_transition(from, sym, to);
        }
        i += 1;
    }

    // M2 (right-to-left): states are pairs (B_next, B_here) of accepting-set
    // masks; B over all D-states, lazily reachable.
    let nq = d.num_states();
    let accepting_mask: Vec<bool> = (0..nq)
        .map(|q| d.is_accepting(StateId::from_index(q)))
        .collect();
    let mut m2 = Dfa::new(sigma);
    let mut idx2: HashMap<(Vec<bool>, Vec<bool>), StateId> = HashMap::new();
    let mut sets: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let start2 = (accepting_mask.clone(), accepting_mask.clone());
    let id2 = m2.add_state();
    idx2.insert(start2.clone(), id2);
    sets.push(start2);
    m2.set_initial(id2);
    let mut j = 0;
    while j < sets.len() {
        let (_, here) = sets[j].clone();
        let from = idx2[&sets[j]];
        for a in 0..sigma {
            let sym = Symbol::from_index(a);
            // reading sym (unmarked) before the current suffix:
            // B' = {q | δ(q, sym₀) ∈ here}
            let mut b2 = vec![false; nq];
            for (q, slot) in b2.iter_mut().enumerate() {
                let t = d
                    .next(StateId::from_index(q), ext_symbol(sym, 0, sigma))
                    .expect("totalized");
                *slot = here[t.index()];
            }
            let key = (here.clone(), b2);
            let to = match idx2.get(&key) {
                Some(&t) => t,
                None => {
                    let t = m2.add_state();
                    idx2.insert(key.clone(), t);
                    sets.push(key);
                    t
                }
            };
            m2.set_transition(from, sym, to);
        }
        j += 1;
    }

    // Output: position i selected iff δ_D(p_{i−1}, (w_i, 1)) ∈ B_{i+1}.
    // M1's state at i is (p_{i−1}, p_i); M2's state at i is (B_{i+1}, B_i).
    let pairs_by_id: Vec<(StateId, StateId)> = {
        let mut v = vec![(StateId::from_index(0), StateId::from_index(0)); idx1.len()];
        for (pair, id) in &idx1 {
            v[id.index()] = *pair;
        }
        v
    };
    let sets_by_id: Vec<Vec<bool>> = {
        let mut v = vec![Vec::new(); idx2.len()];
        for ((next, _here), id) in &idx2 {
            v[id.index()] = next.clone();
        }
        v
    };
    Bimachine::new(m1, m2, 2, move |p, q, sym| {
        let (prev, _) = pairs_by_id[p.index()];
        let b_next = &sets_by_id[q.index()];
        let hit = d
            .next(prev, ext_symbol(sym, 1, sigma))
            .is_some_and(|t| b_next[t.index()]);
        u32::from(hit)
    })
}

/// Compile a unary string query automaton `D` (over `Σ × {0,1}`) into a
/// literal two-way [`StringQa`] via Lemma 3.10.
pub fn string_query_to_qa(d: &Dfa, sigma: usize) -> Result<StringQa> {
    let bim = selection_bimachine(d, sigma)?;
    let gsqa = hopcroft_ullman::compose(&bim)?;
    let machine = gsqa.machine().clone();
    let mut qa = StringQa::new(machine);
    for s_idx in 0..gsqa.machine().num_states() {
        let s = StateId::from_index(s_idx);
        for a in 0..sigma {
            let sym = Symbol::from_index(a);
            if gsqa.output_of(s, sym) == Some(1) {
                qa.set_selecting(s, sym, true);
            }
        }
    }
    Ok(qa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_string::{compile_unary, mark_word};
    use crate::parser::parse;
    use qa_base::Alphabet;

    fn all_words(sigma: usize, max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in frontier {
                for s in 0..sigma {
                    let mut w2: Vec<Symbol> = w.clone();
                    w2.push(Symbol::from_index(s));
                    out.push(w2.clone());
                    next.push(w2);
                }
            }
            frontier = next;
        }
        out
    }

    fn check_query(src: &str, names: &[&str], max_len: usize) {
        let mut a = Alphabet::from_names(names.to_vec());
        let sigma = a.len();
        let f = parse(src, &mut a).unwrap();
        let d = compile_unary(&f, "v", sigma).unwrap();
        let qa = string_query_to_qa(&d, sigma).unwrap();
        for w in all_words(sigma, max_len) {
            let selected = qa.query(&w).unwrap();
            for pos in 0..w.len() {
                let want = d.accepts(&mark_word(&w, pos, sigma));
                assert_eq!(
                    selected.contains(&pos),
                    want,
                    "{src}: pos {pos} of {:?}",
                    a.render(&w)
                );
            }
        }
    }

    #[test]
    fn simple_label_query() {
        check_query("label(v, b)", &["a", "b"], 5);
    }

    #[test]
    fn first_and_last_queries() {
        check_query("root(v)", &["a", "b"], 5);
        check_query("leaf(v)", &["a", "b"], 5);
    }

    #[test]
    fn remark_3_3_query() {
        // select first and last position if the word contains a `b`
        check_query("(root(v) | leaf(v)) & (ex x. label(x, b))", &["a", "b"], 5);
    }

    #[test]
    fn example_3_4_query_as_synthesized_machine() {
        // odd position from the right, labeled 1 — matches the hand-built
        // Example 3.4 QA.
        let mut a = Alphabet::from_names(["0", "1"]);
        let hand = qa_twoway::string_qa::example_3_4_qa(&a);
        let src = "label(v, 1) & (ex2 X. ( (all x. (leaf(x) -> x in X)) \
                   & (all x. all y. (edge(x, y) -> (y in X <-> !(x in X)))) \
                   & v in X ))";
        let f = parse(src, &mut a).unwrap();
        let d = compile_unary(&f, "v", 2).unwrap();
        let synth = string_query_to_qa(&d, 2).unwrap();
        for w in all_words(2, 6) {
            assert_eq!(
                synth.query(&w).unwrap(),
                hand.query(&w).unwrap(),
                "{:?}",
                a.render(&w)
            );
        }
    }

    #[test]
    fn positional_context_query() {
        // select positions whose predecessor is `a` and successor is `b`
        check_query(
            "ex x. ex y. (edge(x, v) & edge(v, y) & label(x, a) & label(y, b))",
            &["a", "b"],
            5,
        );
    }
}
