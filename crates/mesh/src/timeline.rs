//! [`Timeline`]: one worker's liveness history as seen by the
//! coordinator's poll loop.
//!
//! Each poll tick classifies the worker by its pulse endpoints:
//! `/healthz` unreachable → [`Health::Unreachable`], reachable but
//! `/readyz` still 503 → [`Health::Warming`], both green →
//! [`Health::Ready`]. The rendered timeline is run-length encoded
//! (`warming×2 ready×41 unreachable×3`), so a federated summary can show
//! every worker's life story in one line — including the moment a
//! chaos-killed worker stopped answering.

/// One poll tick's verdict on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// `/healthz` did not answer (dead, not yet serving, or hung).
    Unreachable,
    /// Alive but `/readyz` reports warming up.
    Warming,
    /// Alive and ready.
    Ready,
}

impl Health {
    fn name(self) -> &'static str {
        match self {
            Health::Unreachable => "unreachable",
            Health::Warming => "warming",
            Health::Ready => "ready",
        }
    }
}

/// Poll history of one worker, oldest first.
///
/// The history is tick-aware: every sample carries the poll loop's
/// logical tick, and ticks must be strictly increasing. A stale sample —
/// a retried poll landing after a newer one already recorded — is
/// rejected rather than silently reordering the history.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    polls: Vec<Health>,
    last_tick: Option<u64>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Append one poll verdict at the next tick.
    pub fn record(&mut self, health: Health) {
        let next = self.last_tick.map_or(0, |t| t + 1);
        self.record_at(next, health);
    }

    /// Append one poll verdict stamped with the poll loop's tick.
    ///
    /// Ticks must be strictly increasing: a tick at or before the last
    /// recorded one is rejected (returns `false`, history unchanged).
    pub fn record_at(&mut self, tick: u64, health: Health) -> bool {
        if self.last_tick.is_some_and(|last| tick <= last) {
            return false;
        }
        self.last_tick = Some(tick);
        self.polls.push(health);
        true
    }

    /// The tick of the newest sample, if any.
    pub fn last_tick(&self) -> Option<u64> {
        self.last_tick
    }

    /// Number of polls recorded.
    pub fn len(&self) -> usize {
        self.polls.len()
    }

    /// Whether no polls were recorded.
    pub fn is_empty(&self) -> bool {
        self.polls.is_empty()
    }

    /// How many polls saw the given state.
    pub fn count(&self, health: Health) -> usize {
        self.polls.iter().filter(|h| **h == health).count()
    }

    /// Whether the worker was ever seen ready.
    pub fn was_ready(&self) -> bool {
        self.count(Health::Ready) > 0
    }

    /// Run-length encoded rendering, e.g. `warming×2 ready×40`.
    /// Empty timelines render as `no polls`.
    pub fn render(&self) -> String {
        if self.polls.is_empty() {
            return "no polls".to_string();
        }
        let mut out = String::new();
        let mut run: (Health, usize) = (self.polls[0], 0);
        for &h in &self.polls {
            if h == run.0 {
                run.1 += 1;
            } else {
                out.push_str(&format!("{}\u{d7}{} ", run.0.name(), run.1));
                run = (h, 1);
            }
        }
        out.push_str(&format!("{}\u{d7}{}", run.0.name(), run.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_run_length_encodes_the_history() {
        let mut t = Timeline::new();
        assert_eq!(t.render(), "no polls");
        for h in [
            Health::Warming,
            Health::Warming,
            Health::Ready,
            Health::Ready,
            Health::Ready,
            Health::Unreachable,
        ] {
            t.record(h);
        }
        assert_eq!(t.render(), "warming×2 ready×3 unreachable×1");
        assert_eq!(t.len(), 6);
        assert_eq!(t.count(Health::Ready), 3);
        assert!(t.was_ready());
    }

    #[test]
    fn empty_timeline_reports_nothing() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.count(Health::Ready), 0);
        assert!(!t.was_ready());
        assert_eq!(t.last_tick(), None);
        assert_eq!(t.render(), "no polls");
    }

    #[test]
    fn single_sample_renders_one_run() {
        let mut t = Timeline::new();
        assert!(t.record_at(7, Health::Warming));
        assert_eq!(t.render(), "warming×1");
        assert_eq!(t.len(), 1);
        assert_eq!(t.last_tick(), Some(7));
        assert!(!t.was_ready());
    }

    #[test]
    fn flapping_worker_never_merges_runs() {
        // healthz up / readyz down alternating every poll: each flap is
        // its own ×1 run — RLE must not collapse non-adjacent states.
        let mut t = Timeline::new();
        for i in 0..6 {
            t.record(if i % 2 == 0 {
                Health::Ready
            } else {
                Health::Warming
            });
        }
        assert_eq!(
            t.render(),
            "ready×1 warming×1 ready×1 warming×1 ready×1 warming×1"
        );
        assert_eq!(t.count(Health::Ready), 3);
        assert_eq!(t.count(Health::Warming), 3);
    }

    #[test]
    fn out_of_order_and_duplicate_ticks_are_rejected() {
        let mut t = Timeline::new();
        assert!(t.record_at(5, Health::Ready));
        // Stale (a retried poll finishing late) and duplicate ticks must
        // not rewrite history.
        assert!(!t.record_at(3, Health::Unreachable));
        assert!(!t.record_at(5, Health::Unreachable));
        assert_eq!(t.len(), 1);
        assert_eq!(t.render(), "ready×1");
        assert_eq!(t.last_tick(), Some(5));
        // Monotonic progress resumes normally, and tickless record()
        // continues from the newest tick.
        assert!(t.record_at(6, Health::Unreachable));
        t.record(Health::Unreachable);
        assert_eq!(t.last_tick(), Some(7));
        assert_eq!(t.render(), "ready×1 unreachable×2");
    }
}
