//! Automata on ranked trees (Sections 2.3 and 4 of the paper).

pub mod dbta;
pub mod ops;
pub mod query;
pub mod twoway;

pub use dbta::{Dbta, Nbta};
pub use query::RankedQa;
pub use twoway::{RankedRunRecord, TwoWayRanked, TwoWayRankedBuilder};
