//! Crossing-sequence NFA constructions.
//!
//! The *crossing sequence* of a two-way run at the boundary between two tape
//! cells is the sequence of states in which the head crosses that boundary,
//! alternating rightward/leftward. For a deterministic halting machine the
//! crossings at each boundary are pairwise distinct per direction, so
//! sequences have length ≤ 2·|S| and a one-way NFA can guess them and check
//! local consistency cell by cell. This linearizes a two-way run — which is
//! exactly what the Section 6 decision procedures need:
//!
//! - [`acceptance_nfa`] builds an NFA for `L(M)` of a 2DFA `M`;
//! - [`selection_nfa`] builds, for a string query automaton `A`, an NFA over
//!   the *marked alphabet* `Σ ⊎ Σ̂` accepting exactly the words with one
//!   marked position `i` such that `i ∈ A(w)` — the "one node with a label
//!   in `Σ × {1}`" trick of Theorem 6.3, on strings.
//!
//! Non-emptiness, containment and equivalence of `QAstring`s then reduce to
//! regular-language emptiness/containment of these NFAs (see
//! `qa-decision`).

use std::collections::{HashMap, VecDeque};

use qa_base::Symbol;
use qa_strings::{Nfa, StateId};

use crate::string_qa::StringQa;
use crate::tape::Tape;
use crate::twodfa::{Dir, TwoDfa};

/// A crossing sequence: states crossing a boundary, even indices rightward,
/// odd indices leftward.
type Seq = Vec<StateId>;

/// Result of matching one cell: the crossing sequence on its right boundary,
/// whether the run halts at this cell (with the halting state), and the set
/// of states the cell is visited in.
#[derive(Clone, Debug)]
struct CellMatch {
    right_seq: Seq,
    halt: Option<StateId>,
    visited: Vec<StateId>,
}

/// Enumerate all locally consistent matches of a cell.
///
/// `incoming` is the crossing sequence on the left boundary; `start_state`
/// is `Some(s0)` for the `⊳` cell (where the run begins) and `None`
/// elsewhere. Nondeterminism: after each rightward crossing the future
/// either returns (in any state not yet used leftward at that boundary) or
/// does not.
fn matches_of_cell(
    m: &TwoDfa,
    cell: Tape,
    incoming: &[StateId],
    start_state: Option<StateId>,
) -> Vec<CellMatch> {
    struct Frame {
        i: usize,
        cur: Option<StateId>,
        right_seq: Seq,
        visited: Vec<StateId>,
    }
    let mut out = Vec::new();
    let mut stack = Vec::new();

    // Initial visit: the start state at ⊳, or the first incoming crossing.
    match start_state {
        Some(s0) => {
            debug_assert!(incoming.is_empty());
            stack.push(Frame {
                i: 0,
                cur: Some(s0),
                right_seq: Vec::new(),
                visited: Vec::new(),
            });
        }
        None => {
            if incoming.is_empty() {
                // cell never visited: consistent, with empty right sequence.
                return vec![CellMatch {
                    right_seq: Vec::new(),
                    halt: None,
                    visited: Vec::new(),
                }];
            }
            stack.push(Frame {
                i: 1,
                cur: Some(incoming[0]),
                right_seq: Vec::new(),
                visited: Vec::new(),
            });
        }
    }

    while let Some(mut f) = stack.pop() {
        loop {
            let Some(cur) = f.cur else { unreachable!() };
            // A repeated state at the same cell is a repeated configuration:
            // the deterministic machine would loop. Prune.
            if f.visited.contains(&cur) {
                break;
            }
            f.visited.push(cur);
            match m.action(cur, cell) {
                None => {
                    // Halt here: every crossing must already be consumed.
                    if f.i == incoming.len() {
                        out.push(CellMatch {
                            right_seq: f.right_seq.clone(),
                            halt: Some(cur),
                            visited: f.visited.clone(),
                        });
                    }
                    break;
                }
                Some((Dir::Right, s2)) => {
                    // Crossing rightward in s2: a repeat of s2 rightward at
                    // this boundary would repeat a configuration.
                    if f.right_seq.iter().step_by(2).any(|&x| x == s2) {
                        break;
                    }
                    f.right_seq.push(s2);
                    // Branch (a): never returns — all incoming consumed.
                    if f.i == incoming.len() {
                        out.push(CellMatch {
                            right_seq: f.right_seq.clone(),
                            halt: None,
                            visited: f.visited.clone(),
                        });
                    }
                    // Branch (b): returns in any state r (guessed), distinct
                    // among leftward crossings of this boundary.
                    for r_idx in 0..m.num_states() {
                        let r = StateId::from_index(r_idx);
                        if f.right_seq.iter().skip(1).step_by(2).any(|&x| x == r) {
                            continue;
                        }
                        let mut g = Frame {
                            i: f.i,
                            cur: Some(r),
                            right_seq: f.right_seq.clone(),
                            visited: f.visited.clone(),
                        };
                        g.right_seq.push(r);
                        stack.push(g);
                    }
                    break;
                }
                Some((Dir::Left, s1)) => {
                    // Crossing leftward: must match the next incoming entry,
                    // which must sit at an odd index.
                    if f.i >= incoming.len() || f.i % 2 == 0 || incoming[f.i] != s1 {
                        break;
                    }
                    f.i += 1;
                    // Returns from the left iff another incoming entry
                    // exists (it would be unconsumable otherwise).
                    if f.i < incoming.len() {
                        f.cur = Some(incoming[f.i]);
                        f.i += 1;
                        continue;
                    } else {
                        out.push(CellMatch {
                            right_seq: f.right_seq.clone(),
                            halt: None,
                            visited: f.visited.clone(),
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

/// NFA state: crossing sequence at the current boundary plus whether (and
/// how) the run has already halted somewhere to the left.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CrossState {
    seq: Seq,
    halted: Option<bool>,
    /// Marked-position bookkeeping for [`selection_nfa`]; always `false`
    /// for [`acceptance_nfa`].
    marked_seen: bool,
}

/// Generic crossing-sequence NFA builder.
///
/// `marking` controls the alphabet: `None` builds over Σ (acceptance
/// language); `Some(qa)` builds over Σ ⊎ Σ̂ (marked symbols are encoded as
/// `alphabet_len + sym`) and requires exactly one marked position, at which
/// the visit set must contain a selecting state of `qa`.
fn build(m: &TwoDfa, marking: Option<&StringQa>) -> Nfa {
    let sigma = m.alphabet_len();
    let alphabet_len = if marking.is_some() { 2 * sigma } else { sigma };
    let mut nfa = Nfa::new(alphabet_len);
    let mut index: HashMap<CrossState, StateId> = HashMap::new();
    let mut queue: VecDeque<CrossState> = VecDeque::new();

    let intern = |nfa: &mut Nfa,
                  queue: &mut VecDeque<CrossState>,
                  index: &mut HashMap<CrossState, StateId>,
                  st: CrossState| {
        match index.get(&st) {
            Some(&id) => id,
            None => {
                let id = nfa.add_state();
                index.insert(st.clone(), id);
                queue.push_back(st);
                id
            }
        }
    };

    // Initial NFA states: all consistent matches of the ⊳ cell.
    for cm in matches_of_cell(m, Tape::LeftMarker, &[], Some(m.initial())) {
        let st = CrossState {
            seq: cm.right_seq,
            halted: cm.halt.map(|h| m.is_final(h)),
            marked_seen: false,
        };
        let id = intern(&mut nfa, &mut queue, &mut index, st);
        nfa.set_initial(id);
    }

    while let Some(st) = queue.pop_front() {
        let from = index[&st];

        // Acceptance: close off with the ⊲ cell.
        let mut accepting = false;
        for cm in matches_of_cell(m, Tape::RightMarker, &st.seq, None) {
            debug_assert!(cm.right_seq.is_empty(), "no right moves from ⊲");
            let halted = match (st.halted, cm.halt) {
                (Some(_), Some(_)) => continue,
                (Some(h), None) => Some(h),
                (None, Some(h)) => Some(m.is_final(h)),
                (None, None) => None,
            };
            if halted == Some(true) && (marking.is_none() || st.marked_seen) {
                accepting = true;
            }
        }
        nfa.set_accepting(from, accepting);

        // Transitions on each (possibly marked) symbol.
        for a in 0..sigma {
            let sym = Symbol::from_index(a);
            for cm in matches_of_cell(m, Tape::Sym(sym), &st.seq, None) {
                let halted = match (st.halted, cm.halt) {
                    (Some(_), Some(_)) => continue,
                    (Some(h), None) => Some(h),
                    (None, Some(h)) => Some(m.is_final(h)),
                    (None, None) => None,
                };
                let next_plain = CrossState {
                    seq: cm.right_seq.clone(),
                    halted,
                    marked_seen: st.marked_seen,
                };
                let to = intern(&mut nfa, &mut queue, &mut index, next_plain);
                nfa.add_transition(from, sym, to);

                if let Some(qa) = marking {
                    // Marked copy of the symbol: allowed once, and only when
                    // a selecting state visits this cell.
                    if !st.marked_seen && cm.visited.iter().any(|&s| qa.is_selecting(s, sym)) {
                        let next_marked = CrossState {
                            seq: cm.right_seq.clone(),
                            halted,
                            marked_seen: true,
                        };
                        let to = intern(&mut nfa, &mut queue, &mut index, next_marked);
                        nfa.add_transition(from, Symbol::from_index(sigma + a), to);
                    }
                }
            }
        }
    }
    nfa
}

/// NFA over Σ accepting exactly `L(M)` for a (halting) 2DFA `M`.
///
/// Words on which `M` loops are rejected (loops have no finite consistent
/// crossing assignment).
pub fn acceptance_nfa(m: &TwoDfa) -> Nfa {
    build(m, None)
}

/// NFA over the doubled alphabet `Σ ⊎ Σ̂` (marked symbols encoded as
/// `alphabet_len + sym`) accepting exactly
/// `{ w with one marked position i | i ∈ A(w) }`.
pub fn selection_nfa(qa: &StringQa) -> Nfa {
    build(qa.machine(), Some(qa))
}

/// Encode `(word, position)` as a marked word for [`selection_nfa`].
pub fn mark(word: &[Symbol], pos: usize, alphabet_len: usize) -> Vec<Symbol> {
    word.iter()
        .enumerate()
        .map(|(i, &s)| {
            if i == pos {
                Symbol::from_index(alphabet_len + s.index())
            } else {
                s
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string_qa::example_3_4_qa;
    use crate::twodfa::TwoDfaBuilder;
    use qa_base::Alphabet;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    fn example_3_4() -> TwoDfa {
        example_3_4_qa(&Alphabet::from_names(["0", "1"]))
            .machine()
            .clone()
    }

    fn last_is_one() -> TwoDfa {
        let mut b = TwoDfaBuilder::new(2);
        let fwd = b.add_state();
        let chk = b.add_state();
        let yes = b.add_state();
        let no = b.add_state();
        b.set_initial(fwd);
        b.set_final(yes, true);
        b.set_action(fwd, Tape::LeftMarker, Dir::Right, fwd);
        b.set_action_all_symbols(fwd, Dir::Right, fwd);
        b.set_action(fwd, Tape::RightMarker, Dir::Left, chk);
        b.set_action(chk, Tape::Sym(sym(1)), Dir::Left, yes);
        b.set_action(chk, Tape::Sym(sym(0)), Dir::Left, no);
        b.set_action_all_symbols(yes, Dir::Left, yes);
        b.set_action_all_symbols(no, Dir::Left, no);
        b.build().unwrap()
    }

    #[test]
    fn acceptance_nfa_matches_runs_exhaustively() {
        for m in [example_3_4(), last_is_one()] {
            let nfa = acceptance_nfa(&m);
            for len in 0..=6usize {
                for mask in 0..(1usize << len) {
                    let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                    assert_eq!(m.accepts(&w).unwrap(), nfa.accepts(&w), "{w:?}");
                }
            }
        }
    }

    #[test]
    fn selection_nfa_matches_queries_exhaustively() {
        let a = Alphabet::from_names(["0", "1"]);
        let qa = example_3_4_qa(&a);
        let nfa = selection_nfa(&qa);
        for len in 0..=6usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                let selected = qa.query(&w).unwrap();
                for pos in 0..len {
                    let marked = mark(&w, pos, 2);
                    assert_eq!(
                        selected.contains(&pos),
                        nfa.accepts(&marked),
                        "word {:?} pos {pos}",
                        a.render(&w)
                    );
                }
            }
        }
    }

    #[test]
    fn unmarked_words_are_rejected_by_selection_nfa() {
        let a = Alphabet::from_names(["0", "1"]);
        let qa = example_3_4_qa(&a);
        let nfa = selection_nfa(&qa);
        assert!(!nfa.accepts(&[sym(1)]));
        assert!(!nfa.accepts(&[sym(0), sym(1)]));
    }

    #[test]
    fn doubly_marked_words_are_rejected() {
        let a = Alphabet::from_names(["0", "1"]);
        let qa = example_3_4_qa(&a);
        let nfa = selection_nfa(&qa);
        // 11 with both positions marked
        let w = vec![sym(2 + 1), sym(2 + 1)];
        assert!(!nfa.accepts(&w));
    }

    #[test]
    fn selection_nfa_emptiness_detects_dead_selector() {
        let a = Alphabet::from_names(["0", "1"]);
        let mut qa = example_3_4_qa(&a);
        // De-select everything: no marked word can be accepted.
        qa.set_selecting(StateId::from_index(1), a.symbol("1"), false);
        let nfa = selection_nfa(&qa);
        assert!(nfa.is_empty());
    }
}
