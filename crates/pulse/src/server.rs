//! [`PulseServer`]: a hand-rolled HTTP/1.1 server over
//! [`std::net::TcpListener`] exposing the live run state held in
//! [`PulseState`].
//!
//! The server is deliberately minimal — blocking accept loop on one
//! thread, one short-lived connection per request, `Connection: close` on
//! every response — because its job is to answer a handful of `curl`s and
//! Prometheus scrapes per run, not to be a web framework. Keeping it on
//! `std::net` preserves the workspace's zero-dependency discipline.
//!
//! Routes:
//!
//! | Route      | Body                                                    |
//! |------------|---------------------------------------------------------|
//! | `/`        | plain-text index of the other routes                    |
//! | `/healthz` | `ok` — liveness (the serve thread is accepting)         |
//! | `/readyz`  | `ready`, or `503 warming up` until the binary flips it  |
//! | `/metrics` | [`metrics_text`] over the shared [`Metrics`]            |
//! | `/flight`  | JSON from the registered flight source (404 if none);   |
//! |            | `?n=K` bounds the events tail                           |
//! | `/events`  | JSONL tail of recent per-job wide events (`?n=K`)       |
//! | `/profile` | collapsed-stack span profile (`?weight=alloc` for bytes)|
//! | `/series`  | JSON tail of sentinel time-series rings (404 if none);  |
//! |            | `?name=M` filters to one metric, `?n=K` bounds samples  |
//! | `/alerts`  | JSON alert states + transition log from the sentinel    |
//! | `/quit`    | `bye`, then the accept loop exits                       |
//!
//! Every built-in route is read-only and GET-only: any other method on a
//! known route gets `405 Method Not Allowed` with an `Allow: GET` header.
//!
//! A serving binary can extend the surface beyond the built-ins by
//! registering an [`ApiHandler`] — a closure receiving the parsed
//! [`ApiRequest`] (method, route, query string, body) for every request
//! the built-in routes do not answer. `qa-serve` registers its
//! `PUT /doc` / `POST /query` / `GET /queries` / `GET /docs` endpoints
//! this way, keeping this crate free of a dependency on the query
//! pipelines. Request bodies are read up to `Content-Length`, capped at
//! [`MAX_BODY`] (413 beyond it).
//!
//! Shutdown is cooperative: [`PulseServer::shutdown`] (or a `GET /quit`)
//! sets a flag and pokes the listener with a loopback connection so the
//! blocking `accept` wakes up and observes it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qa_obs::Metrics;

use crate::profile::{SpanProfile, Weight};
use crate::render::metrics_text;

/// The Prometheus text exposition content type, as the format spec
/// requires it on the wire: media type, exposition version *and* charset.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Producer of the `/flight` JSON body — registered by the binary that
/// owns the flight recorder, so this crate needs no dependency on
/// `qa-flight` (which depends on us for its fleet binary). The argument
/// is the tail limit: render at most that many retained events.
pub type FlightSource = Box<dyn Fn(usize) -> String + Send>;

/// Producer of the `/events` JSONL body — registered by the binary that
/// owns the wide-event ring. The argument is the tail limit: render the
/// most recent `n` job events, oldest first.
pub type EventsSource = Box<dyn Fn(usize) -> String + Send>;

/// Producer of the `/series` JSON body — registered by the binary that
/// owns a live sentinel, so this crate needs no dependency on
/// `qa-sentinel`. Arguments are the optional `?name=` filter and the
/// per-series sample tail limit.
pub type SeriesSource = Box<dyn Fn(Option<&str>, usize) -> String + Send>;

/// Producer of the `/alerts` JSON body — alert states plus the live
/// transition log, as rendered by the owning binary's alert engine.
pub type AlertsSource = Box<dyn Fn() -> String + Send>;

/// Producer of the `/explain` body — registered by the binary that owns a
/// scope profiler, so this crate needs no dependency on `qa-scope`.
/// Arguments are the optional `?query=` filter (a workload or query name)
/// and whether JSON was requested (`?format=json`) instead of the
/// EXPLAIN ANALYZE text block. Returning `None` means the named query is
/// unknown; the server answers 404.
pub type ExplainSource = Box<dyn Fn(Option<&str>, bool) -> Option<String> + Send>;

/// Handler for requests the built-in routes do not answer, registered by
/// a serving binary via [`PulseState::set_api_handler`]. Returning `None`
/// declines the request, and the server falls back to its own 404/405
/// handling. The handler may be called from several connection threads at
/// once (see [`PulseServer::serve_pooled`]), hence `Sync`.
pub type ApiHandler = Arc<dyn Fn(&ApiRequest) -> Option<ApiResponse> + Send + Sync>;

/// One parsed request, as an [`ApiHandler`] sees it.
#[derive(Clone, Debug)]
pub struct ApiRequest {
    /// Request method (`GET`, `PUT`, `POST`, …), uppercase.
    pub method: String,
    /// Path with the query string stripped (e.g. `/doc`).
    pub route: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Request body, bounded by [`MAX_BODY`].
    pub body: String,
}

impl ApiRequest {
    /// First value of query parameter `key` (`?key=value`), if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
    }
}

/// Response produced by an [`ApiHandler`].
#[derive(Clone, Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra response headers (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ApiResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> ApiResponse {
        ApiResponse {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> ApiResponse {
        ApiResponse {
            status,
            content_type: "text/plain".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a `Retry-After: <seconds>` header (for `429` sheds).
    pub fn retry_after(mut self, seconds: u64) -> ApiResponse {
        self.headers
            .push(("Retry-After".to_string(), seconds.to_string()));
        self
    }
}

/// Upper bound on an accepted request body; beyond it the server answers
/// `413 Payload Too Large` without reading further.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Tail length `/flight` and `/events` serve when no `?n=K` is given.
pub const DEFAULT_TAIL: usize = 64;

/// Upper bound on `?n=K` — requests beyond it are clamped, keeping one
/// scrape's response bounded no matter what the client asks for.
pub const MAX_TAIL: usize = 65_536;

/// Shared state behind every endpoint.
///
/// The owning binary creates one `Arc<PulseState>`, feeds the same
/// [`Metrics`] registry from its run observers, merges per-run
/// [`SpanProfile`]s in as they finish, and flips [`set_ready`] once
/// warmup (argument parsing, corpus generation) is done.
///
/// [`set_ready`]: PulseState::set_ready
pub struct PulseState {
    metrics: Arc<Metrics>,
    prefix: String,
    ready: AtomicBool,
    profile: Mutex<SpanProfile>,
    flight: Mutex<Option<FlightSource>>,
    events: Mutex<Option<EventsSource>>,
    series: Mutex<Option<SeriesSource>>,
    alerts: Mutex<Option<AlertsSource>>,
    explain: Mutex<Option<ExplainSource>>,
    api: Mutex<Option<ApiHandler>>,
}

impl PulseState {
    /// State serving `metrics` with the given exposition `prefix`
    /// (e.g. `"qa_fleet"`); not ready until [`PulseState::set_ready`].
    pub fn new(metrics: Arc<Metrics>, prefix: &str) -> Arc<PulseState> {
        Arc::new(PulseState {
            metrics,
            prefix: prefix.to_string(),
            ready: AtomicBool::new(false),
            profile: Mutex::new(SpanProfile::new()),
            flight: Mutex::new(None),
            events: Mutex::new(None),
            series: Mutex::new(None),
            alerts: Mutex::new(None),
            explain: Mutex::new(None),
            api: Mutex::new(None),
        })
    }

    /// The shared metrics registry (the binary's observers feed this).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Flip `/readyz` to 200 — call when warmup is done and real work
    /// has begun.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// Current readiness.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Fold a finished run's span profile into the served aggregate.
    pub fn merge_profile(&self, profile: &SpanProfile) {
        self.profile
            .lock()
            .expect("profile lock poisoned")
            .merge(profile);
    }

    /// Render the aggregate span profile in collapsed-stack format.
    pub fn profile_collapsed(&self, weight: Weight) -> String {
        self.profile
            .lock()
            .expect("profile lock poisoned")
            .to_collapsed(weight)
    }

    /// Register the `/flight` JSON producer (a closure dumping the live
    /// flight-recorder ring, tail-limited to its argument).
    pub fn set_flight_source(&self, source: FlightSource) {
        *self.flight.lock().expect("flight lock poisoned") = Some(source);
    }

    /// Register the `/events` JSONL producer (a closure rendering the
    /// most recent job events from the shared wide-event ring).
    pub fn set_events_source(&self, source: EventsSource) {
        *self.events.lock().expect("events lock poisoned") = Some(source);
    }

    /// Register the `/series` JSON producer (a closure dumping the live
    /// sentinel's time-series rings, filtered and tail-limited).
    pub fn set_series_source(&self, source: SeriesSource) {
        *self.series.lock().expect("series lock poisoned") = Some(source);
    }

    /// Register the `/alerts` JSON producer (a closure rendering the live
    /// sentinel's alert states and transition log).
    pub fn set_alerts_source(&self, source: AlertsSource) {
        *self.alerts.lock().expect("alerts lock poisoned") = Some(source);
    }

    /// Register the `/explain` producer (a closure rendering the live
    /// scope profiler's EXPLAIN ANALYZE report, optionally filtered to
    /// one named query).
    pub fn set_explain_source(&self, source: ExplainSource) {
        *self.explain.lock().expect("explain lock poisoned") = Some(source);
    }

    /// Register the [`ApiHandler`] answering requests beyond the built-in
    /// routes (a serving binary's `PUT /doc`, `POST /query`, …).
    pub fn set_api_handler(&self, handler: ApiHandler) {
        *self.api.lock().expect("api lock poisoned") = Some(handler);
    }

    fn api_handler(&self) -> Option<ApiHandler> {
        self.api.lock().expect("api lock poisoned").clone()
    }

    /// Render `/metrics` — also used by binaries for their post-run
    /// `metrics.prom` so the file and a final scrape are byte-identical.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.metrics, &self.prefix)
    }

    fn flight_json(&self, tail: usize) -> Option<String> {
        self.flight
            .lock()
            .expect("flight lock poisoned")
            .as_ref()
            .map(|f| f(tail))
    }

    fn events_jsonl(&self, tail: usize) -> Option<String> {
        self.events
            .lock()
            .expect("events lock poisoned")
            .as_ref()
            .map(|f| f(tail))
    }

    fn series_json(&self, name: Option<&str>, tail: usize) -> Option<String> {
        self.series
            .lock()
            .expect("series lock poisoned")
            .as_ref()
            .map(|f| f(name, tail))
    }

    fn alerts_json(&self) -> Option<String> {
        self.alerts
            .lock()
            .expect("alerts lock poisoned")
            .as_ref()
            .map(|f| f())
    }

    /// `Ok(None)`: no source registered. `Ok(Some(None))`: source knows no
    /// such query. `Ok(Some(Some(body)))`: the rendered report.
    #[allow(clippy::type_complexity)]
    fn explain_body(&self, query: Option<&str>, json: bool) -> Option<Option<String>> {
        self.explain
            .lock()
            .expect("explain lock poisoned")
            .as_ref()
            .map(|f| f(query, json))
    }
}

/// Handle to a running pulse server; join it with
/// [`shutdown`](PulseServer::shutdown).
pub struct PulseServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PulseServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept loop on a background thread. Requests are handled
    /// serially on that thread — the right shape for a batch run's scrape
    /// surface; serving daemons use [`serve_pooled`](Self::serve_pooled).
    pub fn serve(addr: impl ToSocketAddrs, state: Arc<PulseState>) -> std::io::Result<PulseServer> {
        Self::serve_pooled(addr, state, 0)
    }

    /// Like [`serve`](Self::serve), but requests are handled by a pool of
    /// `threads` connection threads (`qa-pulse-0`, …) so slow handlers —
    /// a query evaluation behind an [`ApiHandler`] — do not serialize the
    /// whole surface. `threads == 0` falls back to inline handling on the
    /// accept thread.
    pub fn serve_pooled(
        addr: impl ToSocketAddrs,
        state: Arc<PulseState>,
        threads: usize,
    ) -> std::io::Result<PulseServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("qa-pulse".to_string())
            .spawn(move || accept_loop(listener, state, thread_stop, threads))?;
        Ok(PulseServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the accept loop is still running (it exits after `/quit`).
    pub fn is_running(&self) -> bool {
        !self.stop.load(Ordering::Acquire)
    }

    /// Stop the accept loop and join the serve thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PulseServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<PulseState>,
    stop: Arc<AtomicBool>,
    threads: usize,
) {
    if threads == 0 {
        for conn in listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            let quit = handle_connection(&mut stream, &state).unwrap_or(false);
            if quit {
                stop.store(true, Ordering::Release);
                break;
            }
        }
        return;
    }
    // Pooled mode: the accept thread only hands sockets to connection
    // threads; a `/quit` seen by any of them sets `stop` and pokes the
    // listener so the blocking accept observes it.
    let local = listener.local_addr().ok();
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let pool: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("qa-pulse-{i}"))
                .spawn(move || loop {
                    let next = rx.lock().expect("conn queue poisoned").recv();
                    let Ok(mut stream) = next else { break };
                    let quit = handle_connection(&mut stream, &state).unwrap_or(false);
                    if quit && !stop.swap(true, Ordering::AcqRel) {
                        if let Some(addr) = local {
                            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
                        }
                    }
                })
                .expect("spawn pulse connection thread")
        })
        .collect();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if tx.send(stream).is_err() {
            break;
        }
    }
    drop(tx);
    for handle in pool {
        let _ = handle.join();
    }
}

/// Every route the server answers — the set that earns a `405` (rather
/// than a `404`) when asked for with the wrong method.
const ROUTES: [&str; 11] = [
    "/", "/healthz", "/readyz", "/metrics", "/flight", "/events", "/profile", "/series", "/alerts",
    "/explain", "/quit",
];

/// The tail limit from a `?n=K` query: [`DEFAULT_TAIL`] when absent,
/// clamped to [`MAX_TAIL`]; `Err` on an unparseable or zero `n`.
fn parse_tail_limit(query: &str) -> Result<usize, ()> {
    let Some(raw) = query.split('&').find_map(|kv| kv.strip_prefix("n=")) else {
        return Ok(DEFAULT_TAIL);
    };
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n.min(MAX_TAIL)),
        _ => Err(()),
    }
}

/// Serve one request on `stream`; returns `Ok(true)` if it was `/quit`.
fn handle_connection(stream: &mut TcpStream, state: &PulseState) -> std::io::Result<bool> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let (method, path, body) = match read_request(stream)? {
        Request::Parsed(method, path, body) => (method, path, body),
        Request::Garbled => {
            respond(stream, 400, "text/plain", "bad request\n")?;
            return Ok(false);
        }
        Request::BodyTooLarge => {
            respond(stream, 413, "text/plain", "request body too large\n")?;
            return Ok(false);
        }
    };
    // Split off ?query before routing.
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path.as_str(), ""),
    };
    if method != "GET" || !ROUTES.contains(&route) {
        // Everything beyond the built-in GET surface belongs to the
        // registered API handler, if any.
        if let Some(handler) = state.api_handler() {
            let request = ApiRequest {
                method: method.clone(),
                route: route.to_string(),
                query: query.to_string(),
                body,
            };
            if let Some(response) = handler(&request) {
                let headers: Vec<(&str, &str)> = response
                    .headers
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                respond_with(
                    stream,
                    response.status,
                    &response.content_type,
                    &headers,
                    &response.body,
                )?;
                return Ok(false);
            }
        }
        if method != "GET" {
            if ROUTES.contains(&route) {
                respond_with(
                    stream,
                    405,
                    "text/plain",
                    &[("Allow", "GET")],
                    "method not allowed\n",
                )?;
            } else {
                respond(stream, 404, "text/plain", "not found\n")?;
            }
            return Ok(false);
        }
    }
    match route {
        "/" => respond(
            stream,
            200,
            "text/plain",
            "qa-pulse live ops surface\n\
             routes: /healthz /readyz /metrics /flight /events /profile /series /alerts /explain /quit\n",
        )?,
        "/healthz" => respond(stream, 200, "text/plain", "ok\n")?,
        "/readyz" => {
            if state.ready() {
                respond(stream, 200, "text/plain", "ready\n")?;
            } else {
                respond(stream, 503, "text/plain", "warming up\n")?;
            }
        }
        "/metrics" => {
            let body = state.metrics_text();
            respond(stream, 200, PROMETHEUS_CONTENT_TYPE, &body)?;
        }
        "/flight" => match parse_tail_limit(query) {
            Ok(tail) => match state.flight_json(tail) {
                Some(body) => respond(stream, 200, "application/json", &body)?,
                None => respond(stream, 404, "text/plain", "no flight recorder attached\n")?,
            },
            Err(()) => respond(stream, 400, "text/plain", "bad tail limit n\n")?,
        },
        "/events" => match parse_tail_limit(query) {
            Ok(tail) => match state.events_jsonl(tail) {
                Some(body) => respond(stream, 200, "application/jsonl", &body)?,
                None => respond(stream, 404, "text/plain", "no event ring attached\n")?,
            },
            Err(()) => respond(stream, 400, "text/plain", "bad tail limit n\n")?,
        },
        "/series" => match parse_tail_limit(query) {
            Ok(tail) => {
                let name = query.split('&').find_map(|kv| kv.strip_prefix("name="));
                match state.series_json(name.filter(|n| !n.is_empty()), tail) {
                    Some(body) => respond(stream, 200, "application/json", &body)?,
                    None => respond(stream, 404, "text/plain", "no sentinel attached\n")?,
                }
            }
            Err(()) => respond(stream, 400, "text/plain", "bad tail limit n\n")?,
        },
        "/alerts" => match state.alerts_json() {
            Some(body) => respond(stream, 200, "application/json", &body)?,
            None => respond(stream, 404, "text/plain", "no sentinel attached\n")?,
        },
        "/explain" => {
            let name = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("query="))
                .filter(|n| !n.is_empty());
            let json = query.split('&').any(|kv| kv == "format=json");
            match state.explain_body(name, json) {
                Some(Some(body)) => {
                    let ct = if json { "application/json" } else { "text/plain" };
                    respond(stream, 200, ct, &body)?;
                }
                Some(None) => respond(stream, 404, "text/plain", "unknown query\n")?,
                None => respond(stream, 404, "text/plain", "no scope profiler attached\n")?,
            }
        }
        "/profile" => {
            let weight = if query.split('&').any(|kv| kv == "weight=alloc") {
                Weight::AllocBytes
            } else {
                Weight::WallNanos
            };
            let body = state.profile_collapsed(weight);
            respond(stream, 200, "text/plain", &body)?;
        }
        "/quit" => {
            respond(stream, 200, "text/plain", "bye\n")?;
            return Ok(true);
        }
        _ => respond(stream, 404, "text/plain", "not found\n")?,
    }
    Ok(false)
}

/// Outcome of parsing one request off the wire.
enum Request {
    /// `(method, path, body)` — the body is empty unless the request
    /// declared a `Content-Length`.
    Parsed(String, String, String),
    /// Unparseable request line or oversized head.
    Garbled,
    /// Declared `Content-Length` beyond [`MAX_BODY`].
    BodyTooLarge,
}

/// Read one request — head plus `Content-Length` body, if declared.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    // Read until the blank line ending the head; 8 KiB is far beyond any
    // request head a scraper or serving client sends.
    let mut raw = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let mut head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if raw.len() > 8192 {
            return Ok(Request::Garbled);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break raw.len();
        }
        raw.extend_from_slice(&buf[..n]);
    };
    head_end = head_end.min(raw.len());
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version))
            if version.starts_with("HTTP/1")
                && !method.is_empty()
                && method.bytes().all(|b| b.is_ascii_uppercase()) =>
        {
            (method.to_string(), path.to_string())
        }
        _ => return Ok(Request::Garbled),
    };
    let content_length = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Ok(Request::BodyTooLarge);
    }
    let mut body = raw[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request::Parsed(
        method,
        path,
        String::from_utf8_lossy(&body).into_owned(),
    ))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with(stream, status, content_type, &[], body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
