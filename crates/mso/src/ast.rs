//! MSO formula AST.
//!
//! One vocabulary serves both structure kinds (Section 2 of the paper):
//! - strings: `x < y` is the position order; `edge(x, y)` means `y = x + 1`
//!   (successor);
//! - trees: `edge(x, y)` is the parent–child relation `E`, `x < y` the
//!   sibling order (both as in Section 2.3).

use std::fmt;

use qa_base::Symbol;

/// A variable name. First-order variables conventionally start lowercase,
/// set variables uppercase; the AST distinguishes them by binder, not by
/// spelling.
pub type Var = String;

/// An MSO formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// `O_σ(x)` — position/node `x` carries label `σ`.
    Label(Var, Symbol),
    /// Successor (strings) / parent–child `E` (trees).
    Edge(Var, Var),
    /// Order: positions (strings) / siblings (trees).
    Less(Var, Var),
    /// `y` is the first (index-0) child of `x` (trees only).
    ///
    /// A navigation primitive of the first-child/next-sibling encoding; the
    /// unranked translation compiles to these instead of set-quantified
    /// closures, keeping automata small.
    FirstChild(Var, Var),
    /// `y` is the second (index-1) child of `x` (trees only).
    SecondChild(Var, Var),
    /// `y` is reachable from `x` by zero or more second-child steps
    /// (trees only) — the reflexive sibling-chain of the encoding.
    Chain2(Var, Var),
    /// `x = y`.
    Eq(Var, Var),
    /// `x ∈ X`.
    In(Var, Var),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// `∃x φ` (first-order).
    Exists(Var, Box<Formula>),
    /// `∀x φ` (first-order).
    Forall(Var, Box<Formula>),
    /// `∃X φ` (set).
    ExistsSet(Var, Box<Formula>),
    /// `∀X φ` (set).
    ForallSet(Var, Box<Formula>),
    /// `⊤`.
    True,
    /// `⊥`.
    False,
}

impl Formula {
    /// `φ → ψ` as `¬φ ∨ ψ`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Or(Box::new(Formula::Not(Box::new(self))), Box::new(other))
    }

    /// `φ ↔ ψ`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::And(
            Box::new(self.clone().implies(other.clone())),
            Box::new(other.implies(self)),
        )
    }

    /// `φ ∧ ψ`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `φ ∨ ψ`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `∃x φ`.
    pub fn exists(var: impl Into<Var>, body: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(body))
    }

    /// `∀x φ`.
    pub fn forall(var: impl Into<Var>, body: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(body))
    }

    /// `∃X φ`.
    pub fn exists_set(var: impl Into<Var>, body: Formula) -> Formula {
        Formula::ExistsSet(var.into(), Box::new(body))
    }

    /// `∀X φ`.
    pub fn forall_set(var: impl Into<Var>, body: Formula) -> Formula {
        Formula::ForallSet(var.into(), Box::new(body))
    }

    /// Conjunction of many formulas (`⊤` if empty).
    pub fn all<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        parts
            .into_iter()
            .reduce(|a, b| a.and(b))
            .unwrap_or(Formula::True)
    }

    /// Disjunction of many formulas (`⊥` if empty).
    pub fn any<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        parts
            .into_iter()
            .reduce(|a, b| a.or(b))
            .unwrap_or(Formula::False)
    }

    /// Derived: `x` is the root (trees) / first position (strings):
    /// `¬∃p. edge(p, x)`.
    pub fn is_root(x: impl Into<Var>) -> Formula {
        let x = x.into();
        Formula::exists("#p", Formula::Edge("#p".into(), x)).not()
    }

    /// Derived: `x` is a leaf (trees) / last position (strings): no
    /// outgoing edge.
    pub fn is_leaf(x: impl Into<Var>) -> Formula {
        let x = x.into();
        Formula::exists("#c", Formula::Edge(x, "#c".into())).not()
    }

    /// Free variables (first-order and set alike), in first-occurrence
    /// order.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut bound: Vec<Var> = Vec::new();
        self.walk_free(&mut bound, &mut out);
        out
    }

    fn walk_free(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        let note = |v: &Var, bound: &Vec<Var>, out: &mut Vec<Var>| {
            if !bound.contains(v) && !out.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            Formula::Label(x, _) => note(x, bound, out),
            Formula::Edge(x, y)
            | Formula::Less(x, y)
            | Formula::Eq(x, y)
            | Formula::In(x, y)
            | Formula::FirstChild(x, y)
            | Formula::SecondChild(x, y)
            | Formula::Chain2(x, y) => {
                note(x, bound, out);
                note(y, bound, out);
            }
            Formula::Not(f) => f.walk_free(bound, out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.walk_free(bound, out);
                b.walk_free(bound, out);
            }
            Formula::Exists(v, f)
            | Formula::Forall(v, f)
            | Formula::ExistsSet(v, f)
            | Formula::ForallSet(v, f) => {
                bound.push(v.clone());
                f.walk_free(bound, out);
                bound.pop();
            }
            Formula::True | Formula::False => {}
        }
    }

    /// Whether a variable is used as a set variable anywhere (bound by a
    /// set quantifier or on the right of `in`).
    pub fn set_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.walk_set(&mut out);
        out
    }

    fn walk_set(&self, out: &mut Vec<Var>) {
        match self {
            Formula::In(_, s) if !out.contains(s) => {
                out.push(s.clone());
            }
            Formula::Not(f) => f.walk_set(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.walk_set(out);
                b.walk_set(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.walk_set(out),
            Formula::ExistsSet(v, f) | Formula::ForallSet(v, f) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
                f.walk_set(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Label(x, s) => write!(f, "label({x}, s{})", s.index()),
            Formula::Edge(x, y) => write!(f, "edge({x}, {y})"),
            Formula::FirstChild(x, y) => write!(f, "first_child({x}, {y})"),
            Formula::SecondChild(x, y) => write!(f, "second_child({x}, {y})"),
            Formula::Chain2(x, y) => write!(f, "chain2({x}, {y})"),
            Formula::Less(x, y) => write!(f, "{x} < {y}"),
            Formula::Eq(x, y) => write!(f, "{x} = {y}"),
            Formula::In(x, s) => write!(f, "{x} in {s}"),
            Formula::Not(p) => write!(f, "!({p})"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Exists(v, p) => write!(f, "ex {v}. ({p})"),
            Formula::Forall(v, p) => write!(f, "all {v}. ({p})"),
            Formula::ExistsSet(v, p) => write!(f, "ex2 {v}. ({p})"),
            Formula::ForallSet(v, p) => write!(f, "all2 {v}. ({p})"),
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::exists(
            "x",
            Formula::Edge("x".into(), "y".into()).and(Formula::In("x".into(), "X".into())),
        );
        assert_eq!(f.free_vars(), vec!["y".to_string(), "X".to_string()]);
    }

    #[test]
    fn set_vars_found() {
        let f = Formula::exists_set("X", Formula::In("x".into(), "X".into()));
        assert_eq!(f.set_vars(), vec!["X".to_string()]);
    }

    #[test]
    fn sugar_builds_expected_shapes() {
        let f = Formula::True.implies(Formula::False);
        assert!(matches!(f, Formula::Or(_, _)));
        let f = Formula::all([Formula::True, Formula::False]);
        assert!(matches!(f, Formula::And(_, _)));
        assert_eq!(Formula::all([]), Formula::True);
        assert_eq!(Formula::any([]), Formula::False);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let f = Formula::exists(
            "x",
            Formula::Label("x".into(), Symbol::from_index(0))
                .and(Formula::Less("x".into(), "y".into())),
        );
        let s = f.to_string();
        assert!(s.contains("ex x."));
        assert!(s.contains("x < y"));
    }
}
