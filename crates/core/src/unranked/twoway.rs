//! Two-way deterministic unranked tree automata (Definitions 5.7 and 5.11).

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::{Dfa, SlenderLang, StateId};
use qa_trees::{NodeId, Tree};

use super::cache::{UpCache, UpEntry};
use super::stay::{pair_alphabet_len, pair_symbol, StayRule};
use crate::ranked::twoway::Polarity;

/// A two-way deterministic unranked tree automaton, optionally *generalized*
/// with stay transitions (Definition 5.11) and *strong* when the per-node
/// stay budget is a constant (Definition 5.12).
///
/// Differences from the ranked machine (Definition 5.7):
/// - down transitions hand states to arbitrarily many children, so
///   `L↓(q, a)` is a **slender** language (one string per length, Shallit
///   `x y* z` form) — the run looks up the string of length `arity`;
/// - up transitions read the *string* of children `(state, label)` pairs;
///   determinism (`L↑(q) ∩ L↑(q') = ∅`) is guaranteed by construction: one
///   total classifier DFA per machine assigns at most one target state per
///   pair-string;
/// - an optional stay block: a matcher DFA recognizing `U_stay` (validated
///   disjoint from every `L↑(q)`) and a [`StayRule`] computing the new
///   child states.
#[derive(Clone, Debug)]
pub struct TwoWayUnranked {
    alphabet_len: usize,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    polarity: Vec<Vec<Option<Polarity>>>,
    delta_leaf: HashMap<(StateId, Symbol), StateId>,
    delta_root: HashMap<(StateId, Symbol), StateId>,
    delta_down: HashMap<(StateId, Symbol), SlenderLang>,
    /// Total classifier over the pair alphabet.
    up_classifier: Option<Dfa>,
    /// classifier accepting state → assigned automaton state.
    up_assign: HashMap<StateId, StateId>,
    stay: Option<StayBlock>,
}

/// The stay-transition block of a generalized machine.
#[derive(Clone, Debug)]
pub struct StayBlock {
    /// DFA over the pair alphabet recognizing `U_stay`.
    pub matcher: Dfa,
    /// The `δ_stay` computation.
    pub rule: StayRule,
    /// Maximum stay transitions per node's children (1 = strong; any
    /// constant keeps MSO expressiveness, Remark 5.18).
    pub max_stays_per_node: u32,
}

/// Builder for [`TwoWayUnranked`].
pub struct TwoWayUnrankedBuilder {
    inner: TwoWayUnranked,
    /// user-supplied per-state up languages, folded into the classifier at
    /// build time.
    up_langs: Vec<(StateId, Dfa)>,
}

impl TwoWayUnrankedBuilder {
    /// Start a machine over `alphabet_len` symbols.
    pub fn new(alphabet_len: usize) -> Self {
        TwoWayUnrankedBuilder {
            inner: TwoWayUnranked {
                alphabet_len,
                num_states: 0,
                initial: StateId::from_index(0),
                finals: Vec::new(),
                polarity: Vec::new(),
                delta_leaf: HashMap::new(),
                delta_root: HashMap::new(),
                delta_down: HashMap::new(),
                up_classifier: None,
                up_assign: HashMap::new(),
                stay: None,
            },
            up_langs: Vec::new(),
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.inner.num_states);
        self.inner.num_states += 1;
        self.inner.finals.push(false);
        self.inner
            .polarity
            .push(vec![None; self.inner.alphabet_len]);
        id
    }

    /// Set the initial state.
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.inner.initial = state;
        self
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) -> &mut Self {
        self.inner.finals[state.index()] = is_final;
        self
    }

    /// Put `(state, label)` into `U` or `D`.
    pub fn set_polarity(&mut self, state: StateId, label: Symbol, p: Polarity) -> &mut Self {
        self.inner.polarity[state.index()][label.index()] = Some(p);
        self
    }

    /// Put `(state, ·)` into `U` or `D` for every label.
    pub fn set_polarity_all(&mut self, state: StateId, p: Polarity) -> &mut Self {
        for l in 0..self.inner.alphabet_len {
            self.inner.polarity[state.index()][l] = Some(p);
        }
        self
    }

    /// Define `L↓(state, label)` as a slender language over the *state*
    /// alphabet (symbol `i` = state `i`).
    pub fn set_down(&mut self, state: StateId, label: Symbol, lang: SlenderLang) -> &mut Self {
        self.inner.delta_down.insert((state, label), lang);
        self
    }

    /// Define `δ_leaf(state, label) = next`.
    pub fn set_leaf(&mut self, state: StateId, label: Symbol, next: StateId) -> &mut Self {
        self.inner.delta_leaf.insert((state, label), next);
        self
    }

    /// Define `δ_root(state, label) = next`.
    pub fn set_root(&mut self, state: StateId, label: Symbol, next: StateId) -> &mut Self {
        self.inner.delta_root.insert((state, label), next);
        self
    }

    /// Add the up language `L↑(state)` as a DFA over the pair alphabet
    /// (encode pairs with [`pair_symbol`]).
    pub fn add_up_language(&mut self, state: StateId, dfa: Dfa) -> &mut Self {
        self.up_langs.push((state, dfa));
        self
    }

    /// Install the stay block.
    pub fn set_stay(&mut self, block: StayBlock) -> &mut Self {
        self.inner.stay = Some(block);
        self
    }

    /// Validate and finish.
    pub fn build(mut self) -> Result<TwoWayUnranked> {
        let m = &mut self.inner;
        if m.num_states == 0 {
            return Err(Error::ill_formed("2DTAu", "no states"));
        }
        let pol = |m: &TwoWayUnranked, q: StateId, s: Symbol| m.polarity[q.index()][s.index()];
        // Sorted key order keeps the reported violation deterministic when
        // more than one entry is ill-formed.
        fn sorted_keys<V>(m: &HashMap<(StateId, Symbol), V>) -> Vec<(StateId, Symbol)> {
            let mut v: Vec<(StateId, Symbol)> = m.keys().copied().collect();
            v.sort();
            v
        }
        for (q, s) in sorted_keys(&m.delta_leaf) {
            if pol(m, q, s) != Some(Polarity::Down) {
                return Err(Error::ill_formed(
                    "2DTAu",
                    format!("δ_leaf on non-D pair ({q:?}, {s:?})"),
                ));
            }
        }
        for (q, s) in sorted_keys(&m.delta_down) {
            if pol(m, q, s) != Some(Polarity::Down) {
                return Err(Error::ill_formed(
                    "2DTAu",
                    format!("L↓ on non-D pair ({q:?}, {s:?})"),
                ));
            }
        }
        for (q, s) in sorted_keys(&m.delta_root) {
            if pol(m, q, s) != Some(Polarity::Up) {
                return Err(Error::ill_formed(
                    "2DTAu",
                    format!("δ_root on non-U pair ({q:?}, {s:?})"),
                ));
            }
        }
        let pal = pair_alphabet_len(m.num_states, m.alphabet_len);
        // Fold the up languages into one classifier, checking disjointness.
        let mut classifier: Option<Dfa> = None;
        let mut assign: HashMap<StateId, StateId> = HashMap::new();
        for (q, dfa) in &self.up_langs {
            if dfa.alphabet_len() != pal {
                return Err(Error::ill_formed(
                    "2DTAu",
                    "up language DFA must use the pair alphabet",
                ));
            }
            match classifier {
                None => {
                    let total = dfa.totalize();
                    for i in 0..total.num_states() {
                        let cs = StateId::from_index(i);
                        if total.is_accepting(cs) {
                            assign.insert(cs, *q);
                        }
                    }
                    // classifier acceptance flags are irrelevant; assignment
                    // carries the information.
                    classifier = Some(total);
                }
                Some(old) => {
                    // product: track (old classifier state, new DFA state)
                    let new_total = dfa.totalize();
                    let mut prod = Dfa::new(pal);
                    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
                    let mut queue = std::collections::VecDeque::new();
                    let mut new_assign: HashMap<StateId, StateId> = HashMap::new();
                    let start = (old.initial(), new_total.initial());
                    let id = prod.add_state();
                    index.insert(start, id);
                    prod.set_initial(id);
                    queue.push_back(start);
                    while let Some((a, b)) = queue.pop_front() {
                        let from = index[&(a, b)];
                        let owner_old = assign.get(&a).copied();
                        let owner_new = if new_total.is_accepting(b) {
                            Some(*q)
                        } else {
                            None
                        };
                        match (owner_old, owner_new) {
                            (Some(x), Some(y)) if x != y => {
                                return Err(Error::ill_formed(
                                    "2DTAu",
                                    format!("up languages overlap: L↑({x:?}) ∩ L↑({y:?}) ≠ ∅"),
                                ));
                            }
                            (Some(x), _) => {
                                new_assign.insert(from, x);
                            }
                            (None, Some(y)) => {
                                new_assign.insert(from, y);
                            }
                            (None, None) => {}
                        }
                        for sym_idx in 0..pal {
                            let sym = Symbol::from_index(sym_idx);
                            let ta = old.next(a, sym).expect("totalized");
                            let tb = new_total.next(b, sym).expect("totalized");
                            let to = *index.entry((ta, tb)).or_insert_with(|| {
                                queue.push_back((ta, tb));
                                prod.add_state()
                            });
                            prod.set_transition(from, sym, to);
                        }
                    }
                    assign = new_assign;
                    classifier = Some(prod);
                }
            }
        }
        m.up_classifier = classifier;
        m.up_assign = assign;

        // Stay matcher must be disjoint from every up language.
        if let Some(stay) = &m.stay {
            if stay.matcher.alphabet_len() != pal {
                return Err(Error::ill_formed(
                    "2DTAu",
                    "stay matcher must use the pair alphabet",
                ));
            }
            if let Some(classifier) = &m.up_classifier {
                // classify-accepting = any product state with an assignment
                let mut up_accepting = classifier.clone();
                for i in 0..up_accepting.num_states() {
                    let cs = StateId::from_index(i);
                    up_accepting.set_accepting(cs, m.up_assign.contains_key(&cs));
                }
                if !up_accepting.intersect(&stay.matcher).is_empty() {
                    return Err(Error::ill_formed("2DTAu", "U_stay overlaps an up language"));
                }
            }
        }
        Ok(self.inner)
    }
}

/// Record of a maximal run of a [`TwoWayUnranked`] machine.
#[derive(Clone, Debug)]
pub struct UnrankedRunRecord {
    /// Whether the final configuration was accepting.
    pub accepted: bool,
    /// States assumed per node (first-assumption order).
    pub assumed: Vec<Vec<StateId>>,
    /// Work performed: [`TwoWayUnranked::run_scheduled`] counts transitions
    /// fired; the worklist [`TwoWayUnranked::run`] counts node examinations
    /// (an upper bound on transitions). Both are capped by the fuel budget.
    pub steps: u64,
    /// Stay transitions fired per node.
    pub stays: Vec<u32>,
}

impl TwoWayUnranked {
    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// The polarity of `(state, label)`.
    pub fn polarity(&self, state: StateId, label: Symbol) -> Option<Polarity> {
        self.polarity[state.index()][label.index()]
    }

    /// `L↓(state, label)`.
    pub fn down(&self, state: StateId, label: Symbol) -> Option<&SlenderLang> {
        self.delta_down.get(&(state, label))
    }

    /// `δ_leaf(state, label)`.
    pub fn leaf(&self, state: StateId, label: Symbol) -> Option<StateId> {
        self.delta_leaf.get(&(state, label)).copied()
    }

    /// `δ_root(state, label)`.
    pub fn root(&self, state: StateId, label: Symbol) -> Option<StateId> {
        self.delta_root.get(&(state, label)).copied()
    }

    /// The stay block, if the machine is generalized.
    pub fn stay(&self) -> Option<&StayBlock> {
        self.stay.as_ref()
    }

    /// Whether the machine has stay transitions with a per-node budget
    /// (an S2DTAu, Definition 5.12).
    pub fn is_strong(&self) -> bool {
        self.stay.is_some()
    }

    /// Fingerprint of the structure an [`UpCache`] decision depends on: the
    /// up classifier table and its assignment, the stay matcher table and
    /// budget, and the basic shape. Computed once per cached run.
    pub(crate) fn cache_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.num_states.hash(&mut h);
        self.alphabet_len.hash(&mut h);
        let pal = pair_alphabet_len(self.num_states, self.alphabet_len);
        let hash_dfa = |dfa: &Dfa, h: &mut std::collections::hash_map::DefaultHasher| {
            dfa.num_states().hash(h);
            dfa.initial().index().hash(h);
            for i in 0..dfa.num_states() {
                let s = StateId::from_index(i);
                dfa.is_accepting(s).hash(h);
                for a in 0..pal {
                    match dfa.next(s, Symbol::from_index(a)) {
                        None => usize::MAX.hash(h),
                        Some(t) => t.index().hash(h),
                    }
                }
            }
        };
        match &self.up_classifier {
            None => 0u8.hash(&mut h),
            Some(c) => {
                1u8.hash(&mut h);
                hash_dfa(c, &mut h);
            }
        }
        let mut assign: Vec<(usize, usize)> = self
            .up_assign
            .iter()
            .map(|(k, v)| (k.index(), v.index()))
            .collect();
        assign.sort_unstable();
        assign.hash(&mut h);
        match &self.stay {
            None => 0u8.hash(&mut h),
            Some(s) => {
                1u8.hash(&mut h);
                s.max_stays_per_node.hash(&mut h);
                hash_dfa(&s.matcher, &mut h);
            }
        }
        h.finish()
    }

    /// Classify a children pair-string: `Some(q)` if it lies in `L↑(q)`.
    pub fn classify_up(&self, pairs: &[(StateId, Symbol)]) -> Option<StateId> {
        let classifier = self.up_classifier.as_ref()?;
        let mut cs = classifier.initial();
        for &(q, l) in pairs {
            cs = classifier.next(cs, pair_symbol(q, l, self.alphabet_len))?;
        }
        self.up_assign.get(&cs).copied()
    }

    /// Whether a children pair-string lies in `U_stay`.
    pub fn matches_stay(&self, pairs: &[(StateId, Symbol)]) -> bool {
        let Some(stay) = &self.stay else { return false };
        let mut cs = stay.matcher.initial();
        for &(q, l) in pairs {
            match stay.matcher.next(cs, pair_symbol(q, l, self.alphabet_len)) {
                Some(next) => cs = next,
                None => return false,
            }
        }
        stay.matcher.is_accepting(cs)
    }

    /// Generous default fuel (loops surface as [`Error::FuelExhausted`]).
    pub fn default_fuel(&self, tree: &Tree) -> u64 {
        64 * (self.num_states as u64) * (tree.num_nodes() as u64) + 1024
    }

    /// Run to a maximal configuration with a worklist engine: after a
    /// transition fires only the affected nodes are re-examined, so typical
    /// runs cost O(steps + nodes) instead of the naive rescan's
    /// O(steps · nodes). Confluence (Section 5.1) makes the result identical
    /// to any schedule of [`TwoWayUnranked::run_scheduled`] — property-tested.
    pub fn run(&self, tree: &Tree) -> Result<UnrankedRunRecord> {
        self.run_with(tree, &mut NoopObserver)
    }

    /// [`TwoWayUnranked::run`] with an [`Observer`]: node examinations are
    /// [`Counter::CutRecomputations`], fired transitions [`Counter::Steps`],
    /// stay transitions additionally [`Counter::StayRounds`]; the total step
    /// count lands in [`Series::RunSteps`] and per-node stay tallies in
    /// [`Series::StaysPerNode`]. Every state assignment is also reported as
    /// a configuration event (dir +1 down, −1 up, 0 in place), and each
    /// stay-rule output as an [`Observer::stay_assign`] — the GSQA child-run
    /// certificate behind the assignment. With [`NoopObserver`] this
    /// monomorphizes to exactly `run`.
    pub fn run_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Result<UnrankedRunRecord> {
        self.run_impl(tree, None, obs)
    }

    /// [`TwoWayUnranked::run_with`] with up/stay decisions memoized in
    /// `cache` (see [`UpCache`]): every distinct children pair-string runs
    /// the classifier, stay matcher and stay rule exactly once — on this
    /// tree or any earlier tree run through the same cache. Results are
    /// identical to the uncached run; cache hits and misses are reported to
    /// `obs`.
    pub fn run_cached<O: Observer>(
        &self,
        tree: &Tree,
        cache: &mut UpCache,
        obs: &mut O,
    ) -> Result<UnrankedRunRecord> {
        cache.ensure_machine(self);
        self.run_impl(tree, Some(cache), obs)
    }

    fn run_impl<O: Observer>(
        &self,
        tree: &Tree,
        mut cache: Option<&mut UpCache>,
        obs: &mut O,
    ) -> Result<UnrankedRunRecord> {
        let fuel = self.default_fuel(tree);
        let n = tree.num_nodes();
        let mut state: Vec<Option<StateId>> = vec![None; n];
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); n];
        let mut stays: Vec<u32> = vec![0; n];
        let root = tree.root();
        state[root.index()] = Some(self.initial);
        assumed[root.index()].push(self.initial);
        obs.config(self.initial.index() as u32, root.index() as u32, 0);
        let mut steps = 0u64;

        let assume = |assumed: &mut Vec<Vec<StateId>>, v: NodeId, q: StateId| {
            let list = &mut assumed[v.index()];
            if !list.contains(&q) {
                list.push(q);
            }
        };

        // worklist of nodes to examine; in-queue flags prevent duplicates
        let mut queue: std::collections::VecDeque<NodeId> = tree.nodes().collect();
        let mut queued = vec![true; n];
        let enqueue =
            |queue: &mut std::collections::VecDeque<NodeId>, queued: &mut Vec<bool>, v: NodeId| {
                if !queued[v.index()] {
                    queued[v.index()] = true;
                    queue.push_back(v);
                }
            };

        while let Some(v) = queue.pop_front() {
            queued[v.index()] = false;
            // keep firing at `v` until nothing applies here
            loop {
                if let Err(a) = obs.checkpoint() {
                    obs.count(Counter::BudgetTrips, 1);
                    return Err(Error::aborted(a.what, a.limit, a.actual));
                }
                steps += 1;
                if steps > fuel {
                    obs.count(Counter::BudgetTrips, 1);
                    return Err(Error::FuelExhausted { budget: fuel });
                }
                obs.count(Counter::CutRecomputations, 1);
                let label = tree.label(v);
                // moves of a cut member at v
                if let Some(q) = state[v.index()] {
                    obs.state_visit(Machine::Qau, q.index() as u32, label.index() as u32);
                    match self.polarity(q, label) {
                        Some(Polarity::Down) if tree.is_leaf(v) => {
                            if let Some(q2) = self.leaf(q, label) {
                                obs.count(Counter::Steps, 1);
                                obs.transition_fired(
                                    Machine::Qau,
                                    q.index() as u32,
                                    label.index() as u32,
                                    q2.index() as u32,
                                );
                                obs.config(q2.index() as u32, v.index() as u32, 0);
                                state[v.index()] = Some(q2);
                                assume(&mut assumed, v, q2);
                                if let Some(p) = tree.parent(v) {
                                    enqueue(&mut queue, &mut queued, p);
                                }
                                continue;
                            }
                        }
                        Some(Polarity::Down) => {
                            if let Some(word) = self
                                .down(q, label)
                                .and_then(|l| l.string_of_length(tree.arity(v)))
                            {
                                obs.count(Counter::Steps, 1);
                                state[v.index()] = None;
                                for (&c, s) in tree.children(v).iter().zip(word) {
                                    let q2 = StateId::from_index(s.index());
                                    obs.transition_fired(
                                        Machine::Qau,
                                        q.index() as u32,
                                        label.index() as u32,
                                        q2.index() as u32,
                                    );
                                    obs.config(q2.index() as u32, c.index() as u32, 1);
                                    state[c.index()] = Some(q2);
                                    assume(&mut assumed, c, q2);
                                    enqueue(&mut queue, &mut queued, c);
                                }
                                // children that settle later wake v through
                                // their up transitions; re-queue v now for
                                // the case where they are all already in
                                // up states.
                                enqueue(&mut queue, &mut queued, v);
                                break;
                            }
                        }
                        Some(Polarity::Up) if v == root => {
                            if let Some(q2) = self.root(q, label) {
                                obs.count(Counter::Steps, 1);
                                obs.transition_fired(
                                    Machine::Qau,
                                    q.index() as u32,
                                    label.index() as u32,
                                    q2.index() as u32,
                                );
                                obs.config(q2.index() as u32, root.index() as u32, 0);
                                state[root.index()] = Some(q2);
                                assume(&mut assumed, root, q2);
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                // up/stay at v (children all in cut holding U pairs)
                if !tree.is_leaf(v) && state[v.index()].is_none() {
                    let mut pairs = Vec::with_capacity(tree.arity(v));
                    let mut ok = true;
                    for &c in tree.children(v) {
                        match state[c.index()] {
                            Some(q) if self.polarity(q, tree.label(c)) == Some(Polarity::Up) => {
                                pairs.push((q, tree.label(c)));
                            }
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        obs.count(Counter::TableLookups, 1);
                        // One decision per pair-string: from the cache when
                        // one is supplied, else computed in place. The
                        // uncached path defers the stay-rule application
                        // until after the budget check below.
                        let decision = match cache.as_deref_mut() {
                            Some(c) => c.decide(self, &pairs, obs)?,
                            None => {
                                if let Some(q2) = self.classify_up(&pairs) {
                                    UpEntry::Up(q2)
                                } else if self.matches_stay(&pairs) {
                                    UpEntry::Stay(Vec::new())
                                } else {
                                    UpEntry::Stuck
                                }
                            }
                        };
                        match decision {
                            UpEntry::Up(q2) => {
                                obs.count(Counter::Steps, 1);
                                if obs.is_enabled() {
                                    for &(q, l) in &pairs {
                                        obs.transition_fired(
                                            Machine::Qau,
                                            q.index() as u32,
                                            l.index() as u32,
                                            q2.index() as u32,
                                        );
                                    }
                                }
                                obs.config(q2.index() as u32, v.index() as u32, -1);
                                for &c in tree.children(v) {
                                    state[c.index()] = None;
                                }
                                state[v.index()] = Some(q2);
                                assume(&mut assumed, v, q2);
                                if let Some(p) = tree.parent(v) {
                                    enqueue(&mut queue, &mut queued, p);
                                }
                                continue;
                            }
                            UpEntry::Stay(precomputed) => {
                                let budget = self
                                    .stay
                                    .as_ref()
                                    .map(|s| s.max_stays_per_node)
                                    .unwrap_or(0);
                                if stays[v.index()] >= budget {
                                    return Err(Error::ill_formed(
                                        "S2DTAu",
                                        format!(
                                            "stay budget ({budget}) exhausted at a node — \
                                             the machine is not strong"
                                        ),
                                    ));
                                }
                                let new_states = if precomputed.is_empty() && !pairs.is_empty() {
                                    let rule = &self.stay.as_ref().expect("matched").rule;
                                    let out = rule.apply(&pairs, self.alphabet_len)?;
                                    if out.len() != pairs.len() {
                                        return Err(Error::ill_formed(
                                            "S2DTAu",
                                            "stay rule must emit one state per child",
                                        ));
                                    }
                                    out
                                } else {
                                    precomputed
                                };
                                stays[v.index()] += 1;
                                obs.count(Counter::Steps, 1);
                                obs.count(Counter::StayRounds, 1);
                                for (&c, q2) in tree.children(v).iter().zip(new_states) {
                                    obs.transition_fired(
                                        Machine::Qau,
                                        state[c.index()].map_or(u32::MAX, |q| q.index() as u32),
                                        tree.label(c).index() as u32,
                                        q2.index() as u32,
                                    );
                                    obs.stay_assign(
                                        v.index() as u32,
                                        c.index() as u32,
                                        q2.index() as u32,
                                    );
                                    obs.config(q2.index() as u32, c.index() as u32, 0);
                                    state[c.index()] = Some(q2);
                                    assume(&mut assumed, c, q2);
                                    enqueue(&mut queue, &mut queued, c);
                                }
                                continue;
                            }
                            UpEntry::Stuck => {}
                        }
                    }
                }
                break;
            }
        }
        obs.record(Series::RunSteps, steps);
        if obs.is_enabled() {
            for &s in &stays {
                obs.record(Series::StaysPerNode, s as u64);
            }
        }
        let accepted = state[root.index()].is_some_and(|q| self.is_final(q))
            && state.iter().filter(|s| s.is_some()).count() == 1;
        Ok(UnrankedRunRecord {
            accepted,
            assumed,
            steps,
            stays,
        })
    }

    /// Run with an explicit schedule (see the ranked counterpart): when
    /// several transitions are enabled, `pick(n)` selects one. Confluence
    /// makes the choice observationally irrelevant.
    pub fn run_scheduled(
        &self,
        tree: &Tree,
        fuel: u64,
        mut pick: impl FnMut(usize) -> usize,
    ) -> Result<UnrankedRunRecord> {
        let n = tree.num_nodes();
        let mut state: Vec<Option<StateId>> = vec![None; n];
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); n];
        let mut stays: Vec<u32> = vec![0; n];
        let root = tree.root();
        state[root.index()] = Some(self.initial);
        assumed[root.index()].push(self.initial);
        let mut steps = 0u64;

        #[derive(Clone, Copy)]
        enum Move {
            Down(NodeId),
            Leaf(NodeId),
            Up(NodeId),
            Stay(NodeId),
            Root,
        }

        let assume = |assumed: &mut Vec<Vec<StateId>>, v: NodeId, q: StateId| {
            let list = &mut assumed[v.index()];
            if !list.contains(&q) {
                list.push(q);
            }
        };

        loop {
            let mut enabled: Vec<Move> = Vec::new();
            for v in tree.nodes() {
                let Some(q) = state[v.index()] else { continue };
                let label = tree.label(v);
                match self.polarity(q, label) {
                    Some(Polarity::Down) => {
                        if tree.is_leaf(v) {
                            if self.leaf(q, label).is_some() {
                                enabled.push(Move::Leaf(v));
                            }
                        } else if self
                            .down(q, label)
                            .is_some_and(|l| l.has_length(tree.arity(v)))
                        {
                            enabled.push(Move::Down(v));
                        }
                    }
                    Some(Polarity::Up) if v == root && self.root(q, label).is_some() => {
                        enabled.push(Move::Root);
                    }
                    Some(Polarity::Up) => {}
                    None => {}
                }
            }
            for v in tree.nodes() {
                if tree.is_leaf(v) || state[v.index()].is_some() {
                    continue;
                }
                let mut pairs = Vec::with_capacity(tree.arity(v));
                let mut ok = true;
                for &c in tree.children(v) {
                    match state[c.index()] {
                        Some(q) if self.polarity(q, tree.label(c)) == Some(Polarity::Up) => {
                            pairs.push((q, tree.label(c)));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                if self.classify_up(&pairs).is_some() {
                    enabled.push(Move::Up(v));
                } else if self.matches_stay(&pairs) {
                    let budget = self
                        .stay
                        .as_ref()
                        .map(|s| s.max_stays_per_node)
                        .unwrap_or(0);
                    if stays[v.index()] < budget {
                        enabled.push(Move::Stay(v));
                    } else {
                        return Err(Error::ill_formed(
                            "S2DTAu",
                            format!(
                                "stay budget ({budget}) exhausted at a node — \
                                 the machine is not strong"
                            ),
                        ));
                    }
                }
            }

            if enabled.is_empty() {
                let accepted = state[root.index()].is_some_and(|q| self.is_final(q))
                    && state.iter().filter(|s| s.is_some()).count() == 1;
                return Ok(UnrankedRunRecord {
                    accepted,
                    assumed,
                    steps,
                    stays,
                });
            }
            steps += 1;
            if steps > fuel {
                return Err(Error::FuelExhausted { budget: fuel });
            }
            match enabled[pick(enabled.len()) % enabled.len()] {
                Move::Leaf(v) => {
                    let q = state[v.index()].expect("enabled");
                    let q2 = self.leaf(q, tree.label(v)).expect("enabled");
                    state[v.index()] = Some(q2);
                    assume(&mut assumed, v, q2);
                }
                Move::Root => {
                    let q = state[root.index()].expect("enabled");
                    let q2 = self.root(q, tree.label(root)).expect("enabled");
                    state[root.index()] = Some(q2);
                    assume(&mut assumed, root, q2);
                }
                Move::Down(v) => {
                    let q = state[v.index()].expect("enabled");
                    let lang = self.down(q, tree.label(v)).expect("enabled");
                    let word = lang
                        .string_of_length(tree.arity(v))
                        .expect("enabled: length present");
                    state[v.index()] = None;
                    for (&c, s) in tree.children(v).iter().zip(word) {
                        let q2 = StateId::from_index(s.index());
                        state[c.index()] = Some(q2);
                        assume(&mut assumed, c, q2);
                    }
                }
                Move::Up(v) => {
                    let pairs: Vec<(StateId, Symbol)> = tree
                        .children(v)
                        .iter()
                        .map(|&c| (state[c.index()].expect("enabled"), tree.label(c)))
                        .collect();
                    let q2 = self.classify_up(&pairs).expect("enabled");
                    for &c in tree.children(v) {
                        state[c.index()] = None;
                    }
                    state[v.index()] = Some(q2);
                    assume(&mut assumed, v, q2);
                }
                Move::Stay(v) => {
                    let pairs: Vec<(StateId, Symbol)> = tree
                        .children(v)
                        .iter()
                        .map(|&c| (state[c.index()].expect("enabled"), tree.label(c)))
                        .collect();
                    let rule = &self.stay.as_ref().expect("enabled").rule;
                    let new_states = rule.apply(&pairs, self.alphabet_len)?;
                    if new_states.len() != pairs.len() {
                        return Err(Error::ill_formed(
                            "S2DTAu",
                            "stay rule must emit one state per child",
                        ));
                    }
                    stays[v.index()] += 1;
                    for (&c, q2) in tree.children(v).iter().zip(new_states) {
                        state[c.index()] = Some(q2);
                        assume(&mut assumed, c, q2);
                    }
                }
            }
        }
    }

    /// Whether the machine accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> Result<bool> {
        Ok(self.run(tree)?.accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_strings::XyzPattern;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// A trivial descend-and-count machine over a single-letter alphabet:
    /// accepts every tree (descends, folds back up in one state).
    fn up_down(alpha_len: usize) -> TwoWayUnranked {
        let mut b = TwoWayUnrankedBuilder::new(alpha_len);
        let s = b.add_state();
        let u = b.add_state();
        b.set_initial(s);
        b.set_final(u, true);
        b.set_polarity_all(s, Polarity::Down);
        b.set_polarity_all(u, Polarity::Up);
        for a in 0..alpha_len {
            b.set_down(
                s,
                sym(a),
                SlenderLang::uniform(Symbol::from_index(s.index())),
            );
            b.set_leaf(s, sym(a), u);
        }
        // L↑(u) = (u-pairs)+
        let pal = pair_alphabet_len(2, alpha_len);
        let mut dfa = Dfa::new(pal);
        let start = dfa.add_state();
        let seen = dfa.add_state();
        dfa.set_initial(start);
        dfa.set_accepting(seen, true);
        for a in 0..alpha_len {
            let p = pair_symbol(StateId::from_index(1), sym(a), alpha_len);
            dfa.set_transition(start, p, seen);
            dfa.set_transition(seen, p, seen);
        }
        b.add_up_language(StateId::from_index(1), dfa);
        b.build().unwrap()
    }

    #[test]
    fn up_down_accepts_everything() {
        let mut a = Alphabet::new();
        a.intern("x");
        let m = up_down(1);
        for s in ["x", "(x x)", "(x (x x x) x)", "(x (x (x x)))"] {
            let t = qa_trees::sexpr::from_sexpr(s, &mut a).unwrap();
            assert!(m.accepts(&t).unwrap(), "{s}");
        }
    }

    #[test]
    fn slender_down_assigns_positionally() {
        // Machine whose down transition marks first and last child with a
        // special state m, others with s; then folds up only if fanout >= 2.
        let mut a = Alphabet::new();
        a.intern("x");
        let mut b = TwoWayUnrankedBuilder::new(1);
        let s = b.add_state(); // descend plain
        let m = b.add_state(); // descend marked
        let u = b.add_state(); // folded
        b.set_initial(s);
        b.set_final(u, true);
        b.set_polarity_all(s, Polarity::Down);
        b.set_polarity_all(m, Polarity::Down);
        b.set_polarity_all(u, Polarity::Up);
        let sm = Symbol::from_index(m.index());
        let ss = Symbol::from_index(s.index());
        // m s* m for fanout >= 2, single m for fanout 1
        let lang = SlenderLang::new(vec![
            XyzPattern::new(vec![sm], vec![ss], vec![sm]),
            XyzPattern::word(vec![sm]),
        ])
        .unwrap();
        b.set_down(s, sym(0), lang.clone());
        b.set_down(m, sym(0), lang);
        b.set_leaf(s, sym(0), u);
        b.set_leaf(m, sym(0), u);
        let pal = pair_alphabet_len(3, 1);
        let mut dfa = Dfa::new(pal);
        let q0 = dfa.add_state();
        let q1 = dfa.add_state();
        dfa.set_initial(q0);
        dfa.set_accepting(q1, true);
        let pu = pair_symbol(u, sym(0), 1);
        dfa.set_transition(q0, pu, q1);
        dfa.set_transition(q1, pu, q1);
        b.add_up_language(u, dfa);
        let machine = b.build().unwrap();

        let mut al = Alphabet::new();
        al.intern("x");
        let t = qa_trees::sexpr::from_sexpr("(x x x x x)", &mut al).unwrap();
        let rec = machine.run(&t).unwrap();
        assert!(rec.accepted);
        let kids = t.children(t.root());
        // first and last got m (index 1), middles got s (index 0)
        assert_eq!(rec.assumed[kids[0].index()][0], m);
        assert_eq!(rec.assumed[kids[1].index()][0], s);
        assert_eq!(rec.assumed[kids[2].index()][0], s);
        assert_eq!(rec.assumed[kids[3].index()][0], m);
    }

    #[test]
    fn overlapping_up_languages_rejected() {
        let mut b = TwoWayUnrankedBuilder::new(1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_polarity_all(q0, Polarity::Up);
        b.set_polarity_all(q1, Polarity::Up);
        let pal = pair_alphabet_len(2, 1);
        let mk = || {
            let mut d = Dfa::new(pal);
            let s0 = d.add_state();
            let s1 = d.add_state();
            d.set_initial(s0);
            d.set_accepting(s1, true);
            d.set_transition(s0, Symbol::from_index(0), s1);
            d
        };
        b.add_up_language(q0, mk());
        b.add_up_language(q1, mk());
        assert!(b.build().is_err());
    }

    #[test]
    fn missing_slender_length_gets_stuck() {
        // down language = single string of length 2: fanout 3 has no image.
        let mut a = Alphabet::new();
        a.intern("x");
        let mut b = TwoWayUnrankedBuilder::new(1);
        let s = b.add_state();
        let u = b.add_state();
        b.set_initial(s);
        b.set_final(u, true);
        b.set_polarity_all(s, Polarity::Down);
        b.set_polarity_all(u, Polarity::Up);
        let ss = Symbol::from_index(s.index());
        b.set_down(s, sym(0), SlenderLang::single(vec![ss, ss]));
        b.set_leaf(s, sym(0), u);
        let pal = pair_alphabet_len(2, 1);
        let mut dfa = Dfa::new(pal);
        let d0 = dfa.add_state();
        let d1 = dfa.add_state();
        dfa.set_initial(d0);
        dfa.set_accepting(d1, true);
        let pu = pair_symbol(u, sym(0), 1);
        dfa.set_transition(d0, pu, d1);
        dfa.set_transition(d1, pu, d1);
        b.add_up_language(u, dfa);
        let machine = b.build().unwrap();

        let mut al = Alphabet::new();
        al.intern("x");
        let ok = qa_trees::sexpr::from_sexpr("(x x x)", &mut al).unwrap();
        assert!(machine.accepts(&ok).unwrap());
        let stuck = qa_trees::sexpr::from_sexpr("(x x x x)", &mut al).unwrap();
        assert!(!machine.accepts(&stuck).unwrap(), "no length-3 down string");
    }
}
