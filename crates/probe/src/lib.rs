//! # qa-probe
//!
//! Explainability and export tooling on top of the `qa-obs` event stream.
//!
//! `qa-obs` (PR 1) made every engine emit events; this crate makes those
//! events *answer questions*:
//!
//! - [`provenance`] — a [`ProvenanceObserver`] that records, for every
//!   selected position/node, the certificate behind the decision: the
//!   crossing-sequence fragment for string query automata (Theorem 3.9),
//!   the assumed-state pair at the cut for ranked query automata
//!   (Theorem 4.8's machinery), and the GSQA child-run output for strong
//!   unranked stay transitions (Theorem 5.17). Query it with
//!   [`ProvenanceObserver::why_selected`], render with
//!   [`Explanation::render_text`] / [`Explanation::to_json`].
//! - [`export`] — serialize a [`qa_obs::RunTrace`] to Chrome trace-event
//!   JSON (loadable in Perfetto / `chrome://tracing`, with
//!   `process_name`/`thread_name` metadata so tracks are labeled) and a
//!   [`qa_obs::Metrics`] registry to Prometheus text exposition.
//! - [`analyze`] — slow-query analysis over `events.jsonl` wide-event
//!   logs: heavy hitters ([`analyze::top`]), per-query percentile
//!   outliers ([`analyze::slow`]), and steps-vs-size growth fits
//!   ([`analyze::growth`]).
//! - [`diff`] — find the first diverging configuration between two recorded
//!   traces: the debugging primitive for the Section 6 equivalence
//!   counterexamples.
//! - [`gate`] — compare two `BENCH_obs.json` step-count reports with a
//!   tolerance; the `bench_obs --check` regression gate is this function.
//!
//! The `qa-trace` binary wires all five into a CLI: `record`, `replay`,
//! `why`, `diff`, `export`, and `analyze`.

pub mod analyze;
pub mod diff;
pub mod export;
pub mod gate;
pub mod provenance;

pub use diff::{counter_drift, first_divergence, Divergence};
pub use export::{
    chrome_from_trace_json, chrome_trace, prometheus_from_metrics_json, prometheus_text,
};
pub use gate::{compare_reports, scenarios, suite, Drift};
pub use provenance::{Explanation, ProvenanceObserver, StayCertificate, Visit};
