//! `qa-serve` — the resident query-serving daemon, and its soak harness.
//!
//! Daemon mode binds a pulse HTTP surface with the serving endpoints
//! (`PUT /doc`, `POST /query`, `GET /docs`, `GET /queries`) on top of the
//! usual ops routes, then blocks until `GET /quit`. Soak mode
//! (`--soak`) runs the deterministic load harness in-process and exits
//! non-zero when any gate fails, which is how CI smokes the daemon.

use std::process::ExitCode;
use std::time::Duration;

use qa_serve::{run_soak, ServeConfig, SoakConfig};

const USAGE: &str = "usage:
  qa-serve [--listen ADDR] [--workers N] [--http-threads N]
           [--queue-depth N] [--cache-cap N]
           [--max-steps N] [--max-wall-ms MS]
           [--slo FILE] [--scrape-every-ms MS] [--events FILE] [--demo]
  qa-serve --soak [--clients N] [--requests N] [--seed S]
           [--docs N] [--doc-nodes N]
           [--expect-shed] [--forbid-shed] [--gate-p99-ms MS]
           [daemon flags as above]

Daemon mode serves /healthz /readyz /metrics /flight /profile /series
/alerts /events /explain /quit plus the query API: PUT /doc?name=D
(body: XML or s-expression), POST /query (JSON: formula|id, doc,
register, why, explain), GET /docs, GET /queries. `\"explain\": true`
returns the per-state profile inline and feeds GET
/explain?query=<hash-or-id>. Every served query also emits one wide
event into GET /events; --events FILE appends the same lines to an
events.jsonl that `qa-trace analyze` reads. --demo preloads the paper's
Figure 1 bibliography as document `bib`. The daemon runs until
GET /quit.

Soak mode starts a fresh in-process daemon, ingests a seeded corpus,
fires clients x requests concurrent queries whose expected answers were
computed locally beforehand, prints the E17-style table, and exits 1 if
any gate fails (mismatch, non-contract failure, shed expectation, p99).";

struct Opts {
    serve: ServeConfig,
    demo: bool,
    soak: bool,
    clients: usize,
    requests: usize,
    seed: u64,
    docs: usize,
    doc_nodes: usize,
    expect_shed: bool,
    forbid_shed: bool,
    gate_p99_ms: Option<u64>,
}

impl Default for Opts {
    fn default() -> Self {
        let soak_defaults = SoakConfig::default();
        Opts {
            serve: ServeConfig {
                listen: "127.0.0.1:4493".to_string(),
                ..ServeConfig::default()
            },
            demo: false,
            soak: false,
            clients: soak_defaults.clients,
            requests: soak_defaults.requests,
            seed: soak_defaults.seed,
            docs: soak_defaults.docs,
            doc_nodes: soak_defaults.doc_nodes,
            expect_shed: false,
            forbid_shed: false,
            gate_p99_ms: None,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => opts.serve.listen = value(arg, it.next())?,
            "--workers" => opts.serve.eval_workers = num(arg, it.next())? as usize,
            "--http-threads" => opts.serve.http_threads = num(arg, it.next())? as usize,
            "--queue-depth" => opts.serve.queue_depth = num(arg, it.next())? as usize,
            "--cache-cap" => opts.serve.cache_capacity = num(arg, it.next())? as usize,
            "--max-steps" => opts.serve.max_steps = num(arg, it.next())?,
            "--max-wall-ms" => opts.serve.max_wall_ms = num(arg, it.next())?,
            "--scrape-every-ms" => opts.serve.scrape_every_ms = num(arg, it.next())?,
            "--events" => opts.serve.events_path = Some(value(arg, it.next())?),
            "--slo" => {
                let path = value(arg, it.next())?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("--slo {path}: {e}"))?;
                opts.serve.slo_rules = Some(text);
            }
            "--demo" => opts.demo = true,
            "--soak" => opts.soak = true,
            "--clients" => opts.clients = num(arg, it.next())? as usize,
            "--requests" => opts.requests = num(arg, it.next())? as usize,
            "--seed" => opts.seed = num(arg, it.next())?,
            "--docs" => opts.docs = num(arg, it.next())? as usize,
            "--doc-nodes" => opts.doc_nodes = num(arg, it.next())? as usize,
            "--expect-shed" => opts.expect_shed = true,
            "--forbid-shed" => opts.forbid_shed = true,
            "--gate-p99-ms" => opts.gate_p99_ms = Some(num(arg, it.next())?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if opts.soak {
        // Soaks always bind an ephemeral port unless one was forced.
        if !args.iter().any(|a| a == "--listen") {
            opts.serve.listen = "127.0.0.1:0".to_string();
        }
        if opts.expect_shed && opts.forbid_shed {
            return Err(format!("--expect-shed and --forbid-shed conflict\n{USAGE}"));
        }
    }
    Ok(opts)
}

fn num(flag: &str, v: Option<&String>) -> Result<u64, String> {
    v.and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{flag} needs a number\n{USAGE}"))
}

fn run_daemon(opts: &Opts) -> ExitCode {
    let daemon = match qa_serve::ServeDaemon::start(opts.serve.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("qa-serve: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.demo {
        // Ingest over the wire, exactly as a client would.
        let receipt = qa_pulse::http_request(
            daemon.addr(),
            "PUT",
            "/doc?name=bib",
            "application/xml",
            qa_xml::figures::FIGURE_1_XML,
            qa_pulse::HttpTimeouts::default(),
        );
        match receipt {
            Ok(r) if r.status == 200 => eprintln!("demo: ingested Figure 1 bibliography as `bib`"),
            Ok(r) => eprintln!("demo: ingest answered {}: {}", r.status, r.body),
            Err(e) => eprintln!("demo: ingest failed: {e}"),
        }
    }
    // The same banner pattern the fleet prints; CI seds the port out.
    println!("pulse: serving on {}", daemon.addr());
    while daemon.is_running() {
        std::thread::sleep(Duration::from_millis(50));
    }
    daemon.shutdown();
    ExitCode::SUCCESS
}

fn run_soak_mode(opts: &Opts) -> ExitCode {
    let cfg = SoakConfig {
        daemon: opts.serve.clone(),
        clients: opts.clients,
        requests: opts.requests,
        seed: opts.seed,
        docs: opts.docs,
        doc_nodes: opts.doc_nodes,
        expect_shed: opts.expect_shed,
        forbid_shed: opts.forbid_shed,
        gate_p99_ms: opts.gate_p99_ms,
    };
    let report = match run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qa-serve --soak: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.table());
    println!(
        "shed rate {:.1}%  wall {}ms",
        report.shed_rate() * 100.0,
        report.wall_ms
    );
    let failures = report.gate_failures(&cfg);
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for reason in &failures {
            eprintln!("soak gate failed: {reason}");
        }
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.soak {
        run_soak_mode(&opts)
    } else {
        run_daemon(&opts)
    }
}
