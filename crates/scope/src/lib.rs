//! # qa-scope
//!
//! Per-state execution profiling and `EXPLAIN ANALYZE` for query runs.
//!
//! The observability stack up to here sees runs from the outside — steps,
//! latency, cache hits, SLOs. This crate looks *inside* an automaton: a
//! [`ScopeProfiler`] is an [`Observer`] that folds the per-state hooks
//! ([`Observer::state_visit`], [`Observer::transition_fired`]) fired by
//! every engine hot path into per-(machine, state) visit histograms and
//! state×symbol transition heatmaps, with bounded memory and drop
//! accounting. [`ScopeProfiler::explain_run`] turns the raw tables into a
//! [`ScopeReport`]: automaton size, reachable/dead/cold state sets,
//! hot-state share, per-phase transition density and cache-hit attribution
//! per state — rendered as text, JSON, or collapsed-stack `machine;state`
//! frames (so the existing `/profile` flamegraph path renders heatmaps for
//! free).
//!
//! ## Determinism
//!
//! Everything here is engineered so that `scope.json` is byte-identical
//! across `--jobs N` and `--mesh N` topologies: tables are `BTreeMap`s
//! (sorted iteration), [`ScopeProfiler::merge`] is commutative and
//! associative like `Metrics::merge`, and serialization visits keys in
//! sorted order only. The heavy-hitter cap is deterministic too
//! (evict-the-lightest with smallest-key tie-break), and evicted mass is
//! conserved in per-table drop accounts — the flight-recorder style —
//! so `kept + dropped` always equals the true event total.
//!
//! ## Cost
//!
//! The per-event path is two or three array increments, not map lookups:
//! states below [`DENSE_STATES`] and symbols below [`DENSE_SYMS`] (i.e.
//! virtually every compiled automaton in this workspace) land in
//! lazily-allocated dense tables, and only the long tail falls back to the
//! capped `BTreeMap`s. Readers see one logical table — every accessor sums
//! dense + sparse on the fly — so the split is invisible outside the hot
//! path. `bench_obs --overhead` gates the full stack plus a profiler at
//! ≤ 1.10x the plain stack or ≤ 25 extra ns/step.

#![deny(missing_docs)]

use std::collections::BTreeMap;

use qa_obs::json::{self, ObjectWriter, Value};
use qa_obs::{Counter, Machine, Observer, Series};

/// Default cap on distinct states tracked per machine.
pub const DEFAULT_STATE_CAP: usize = 4096;

/// Default cap on distinct heatmap cells / transition edges per machine.
pub const DEFAULT_EDGE_CAP: usize = 16384;

/// Share below which a visited state counts as *cold* in reports (1%).
pub const COLD_SHARE: f64 = 0.01;

/// Number of hot states listed per machine in reports.
pub const HOT_TOP_K: usize = 10;

/// States below this index take the dense (array-increment) fast path.
pub const DENSE_STATES: usize = 64;

/// Symbols below this index take the dense fast path.
pub const DENSE_SYMS: usize = 16;

const DENSE_CELLS: usize = DENSE_STATES * DENSE_SYMS;

/// The dense fast-path tables for one machine: plain counters indexed by
/// `state` / `state × sym`, allocated lazily on the first small-index
/// event. Transitions exploit that the engines are deterministic — one
/// `to` per `(from, sym)` cell, remembered in `txn_to`; a second distinct
/// target (nondeterministic simulation) falls back to the sparse map.
#[derive(Clone, Debug, Default)]
struct DenseScope {
    visits: Vec<u64>,
    heat: Vec<u64>,
    txn_cnt: Vec<u64>,
    txn_to: Vec<u32>,
}

impl DenseScope {
    const NO_TARGET: u32 = u32::MAX;

    fn is_empty(&self) -> bool {
        self.visits.is_empty() && self.txn_cnt.is_empty()
    }
}

/// Bump `map[key]` by `n` under a distinct-key cap.
///
/// When the map is full and `key` is fresh, the lightest existing key
/// (smallest count, then smallest key — fully deterministic) is evicted and
/// its mass moved to `*dropped`, Space-Saving style, so heavy hitters
/// survive and `sum(map) + *dropped` stays equal to the true total.
fn bump<K: Ord + Copy>(map: &mut BTreeMap<K, u64>, key: K, n: u64, cap: usize, dropped: &mut u64) {
    if let Some(c) = map.get_mut(&key) {
        *c += n;
        return;
    }
    if map.len() >= cap {
        let victim = map
            .iter()
            .map(|(k, c)| (*c, *k))
            .min()
            .expect("cap > 0, map full");
        map.remove(&victim.1);
        *dropped += victim.0;
    }
    map.insert(key, n);
}

/// The per-machine profile tables. All maps are state-index keyed and
/// sorted; see the crate docs for the determinism contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineScope {
    /// `state → visits` (how often the engine resolved this state).
    pub visits: BTreeMap<u32, u64>,
    /// `(state, symbol) → visits`: the state×symbol heatmap.
    pub heat: BTreeMap<(u32, u32), u64>,
    /// `(from, symbol, to) → fired`: the transition heatmap.
    pub transitions: BTreeMap<(u32, u32, u32), u64>,
    /// `state → behavior-cache hits` attributed to the state the engine
    /// was resolving when the cache answered.
    pub cache_hits: BTreeMap<u32, u64>,
    /// `state → behavior-cache misses`, same attribution.
    pub cache_misses: BTreeMap<u32, u64>,
    /// Visit mass evicted from `visits` by the cap.
    pub dropped_visits: u64,
    /// Visit mass evicted from `heat` by the cap.
    pub dropped_heat: u64,
    /// Fired mass evicted from `transitions` by the cap.
    pub dropped_transitions: u64,
    /// Declared automaton size (states), when the caller knows it — the
    /// denominator for dead-state reporting.
    pub universe: Option<u64>,
}

impl MachineScope {
    /// Total state visits including evicted mass.
    pub fn total_visits(&self) -> u64 {
        self.visits.values().sum::<u64>() + self.dropped_visits
    }

    /// Total fired transitions including evicted mass.
    pub fn total_transitions(&self) -> u64 {
        self.transitions.values().sum::<u64>() + self.dropped_transitions
    }

    /// Whether no event ever touched this machine.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
            && self.heat.is_empty()
            && self.transitions.is_empty()
            && self.cache_hits.is_empty()
            && self.cache_misses.is_empty()
            && self.dropped_visits == 0
            && self.dropped_heat == 0
            && self.dropped_transitions == 0
            && self.universe.is_none()
    }

    fn merge(&mut self, other: &MachineScope) {
        for (&k, &v) in &other.visits {
            *self.visits.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.heat {
            *self.heat.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.transitions {
            *self.transitions.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.cache_hits {
            *self.cache_hits.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.cache_misses {
            *self.cache_misses.entry(k).or_insert(0) += v;
        }
        self.dropped_visits += other.dropped_visits;
        self.dropped_heat += other.dropped_heat;
        self.dropped_transitions += other.dropped_transitions;
        self.universe = match (self.universe, other.universe) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// An [`Observer`] that builds per-(machine, state) visit histograms and
/// state×symbol transition heatmaps from the profiling hooks, with bounded
/// memory (heavy-hitter eviction past a cap, drops accounted).
///
/// Behavior-cache hits and misses reported through [`Observer::count`] are
/// attributed to the state the engine most recently resolved — per-state
/// cache attribution without touching the cache layers. Fired transitions
/// are additionally attributed to the innermost open [`Observer`] phase,
/// giving per-phase transition density.
///
/// ```
/// use qa_obs::{Machine, Observer};
/// use qa_scope::ScopeProfiler;
///
/// let mut scope = ScopeProfiler::new();
/// scope.state_visit(Machine::TwoDfa, 0, 2);
/// scope.transition_fired(Machine::TwoDfa, 0, 2, 1);
/// let report = scope.explain_run();
/// assert_eq!(report.machines.len(), 1);
/// assert_eq!(report.machines[0].total_visits, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ScopeProfiler {
    tables: Vec<MachineScope>,
    /// Dense fast-path counters per machine; summed into the sparse view
    /// by every reader. Only populated when the caps are at least dense
    /// capacity (custom tiny caps keep the pure-map semantics).
    dense: Vec<DenseScope>,
    dense_ok: bool,
    state_cap: usize,
    edge_cap: usize,
    /// Innermost-last stack of open phases.
    phase_stack: Vec<&'static str>,
    /// `(machine index, phase name) → transitions fired in that phase`.
    /// Linear-scanned (phases are few); sorted at serialization time.
    phase_txn: Vec<(usize, String, u64)>,
    /// `(machine, phase identity, phase_txn index)` memo of the last
    /// [`ScopeProfiler::bump_phase`] resolution. Phase names are
    /// `&'static str`, so the address is a stable identity token; entries
    /// are only ever appended, so the index never goes stale.
    phase_cache: Option<(usize, usize, usize)>,
    /// The most recently resolved `(machine, state)` — the attribution
    /// target for cache hit/miss counts.
    last: Option<(Machine, u32)>,
    /// A [`Series::MachineStates`] value waiting to be claimed by the next
    /// [`Observer::state_visit`] as that machine's declared universe.
    /// Engines record the series before running, so the first visit after
    /// the record identifies which machine the size belongs to.
    pending_universe: Option<u64>,
}

impl Default for ScopeProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopeProfiler {
    /// A profiler with the default caps.
    pub fn new() -> Self {
        Self::with_caps(DEFAULT_STATE_CAP, DEFAULT_EDGE_CAP)
    }

    /// A profiler with explicit caps on distinct states and distinct
    /// heatmap/transition cells per machine (each at least 1).
    pub fn with_caps(state_cap: usize, edge_cap: usize) -> Self {
        ScopeProfiler {
            tables: vec![MachineScope::default(); Machine::COUNT],
            dense: vec![DenseScope::default(); Machine::COUNT],
            dense_ok: state_cap >= DENSE_STATES && edge_cap >= DENSE_CELLS,
            state_cap: state_cap.max(1),
            edge_cap: edge_cap.max(1),
            phase_stack: Vec::new(),
            phase_txn: Vec::new(),
            phase_cache: None,
            last: None,
            pending_universe: None,
        }
    }

    /// The sparse table plus the dense fast-path counts for machine
    /// index `i`, summed into one logical [`MachineScope`].
    fn combined(&self, i: usize) -> MachineScope {
        let mut t = self.tables[i].clone();
        let d = &self.dense[i];
        for (q, &n) in d.visits.iter().enumerate() {
            if n > 0 {
                *t.visits.entry(q as u32).or_insert(0) += n;
            }
        }
        for (cell, &n) in d.heat.iter().enumerate() {
            if n > 0 {
                let key = ((cell / DENSE_SYMS) as u32, (cell % DENSE_SYMS) as u32);
                *t.heat.entry(key).or_insert(0) += n;
            }
        }
        for (cell, &n) in d.txn_cnt.iter().enumerate() {
            if n > 0 {
                let key = (
                    (cell / DENSE_SYMS) as u32,
                    (cell % DENSE_SYMS) as u32,
                    d.txn_to[cell],
                );
                *t.transitions.entry(key).or_insert(0) += n;
            }
        }
        t
    }

    /// The profile tables for `machine` (dense and sparse counts summed).
    pub fn machine(&self, machine: Machine) -> MachineScope {
        self.combined(machine.index())
    }

    /// Declare the automaton size (state count) for `machine`, enabling
    /// dead-state reporting. Merging keeps the larger declaration.
    pub fn declare_universe(&mut self, machine: Machine, states: u64) {
        let t = &mut self.tables[machine.index()];
        t.universe = Some(t.universe.map_or(states, |u| u.max(states)));
    }

    /// Transitions fired per `(machine, phase)`, sorted.
    pub fn phase_transitions(&self) -> Vec<(Machine, &str, u64)> {
        let mut out: Vec<(Machine, &str, u64)> = self
            .phase_txn
            .iter()
            .filter_map(|(m, p, n)| Machine::from_index(*m).map(|m| (m, p.as_str(), *n)))
            .collect();
        out.sort_by(|a, b| a.0.index().cmp(&b.0.index()).then(a.1.cmp(b.1)));
        out
    }

    /// Fold `other`'s tables into `self`. Commutative and associative
    /// (like `Metrics::merge`), so fleet shards can merge in any order and
    /// still serialize byte-identically.
    pub fn merge(&mut self, other: &ScopeProfiler) {
        for (i, t) in self.tables.iter_mut().enumerate() {
            if other.dense[i].is_empty() {
                t.merge(&other.tables[i]);
            } else {
                t.merge(&other.combined(i));
            }
        }
        for (m, p, n) in &other.phase_txn {
            match self
                .phase_txn
                .iter_mut()
                .find(|(m2, p2, _)| m2 == m && p2 == p)
            {
                Some((_, _, n2)) => *n2 += n,
                None => self.phase_txn.push((*m, p.clone(), *n)),
            }
        }
    }

    fn bump_phase(&mut self, machine: usize, n: u64) {
        let phase = self.phase_stack.last().copied().unwrap_or("(top)");
        let token = phase.as_ptr() as usize;
        if let Some((m, p, i)) = self.phase_cache {
            if m == machine && p == token {
                self.phase_txn[i].2 += n;
                return;
            }
        }
        let idx = match self
            .phase_txn
            .iter()
            .position(|(m, p, _)| *m == machine && p == phase)
        {
            Some(i) => {
                self.phase_txn[i].2 += n;
                i
            }
            None => {
                self.phase_txn.push((machine, phase.to_owned(), n));
                self.phase_txn.len() - 1
            }
        };
        self.phase_cache = Some((machine, token, idx));
    }

    /// Serialize the raw tables as the deterministic `scope.json` document:
    /// machines in dense-index order, map entries in sorted key order,
    /// empty machines omitted.
    pub fn to_json(&self) -> String {
        let combined: Vec<(Machine, MachineScope)> = Machine::ALL
            .iter()
            .map(|&m| (m, self.combined(m.index())))
            .filter(|(_, t)| !t.is_empty())
            .collect();
        let machines = combined.iter().map(|(m, t)| {
            json::object(|w| {
                w.field_str("machine", m.name());
                if let Some(u) = t.universe {
                    w.field_u64("universe", u);
                }
                w.field_raw(
                    "visits",
                    &json::array(t.visits.iter().map(|(&q, &n)| format!("[{q},{n}]"))),
                );
                w.field_raw(
                    "heat",
                    &json::array(t.heat.iter().map(|(&(q, s), &n)| format!("[{q},{s},{n}]"))),
                );
                w.field_raw(
                    "transitions",
                    &json::array(
                        t.transitions
                            .iter()
                            .map(|(&(f, s, to), &n)| format!("[{f},{s},{to},{n}]")),
                    ),
                );
                w.field_raw(
                    "cache_hits",
                    &json::array(t.cache_hits.iter().map(|(&q, &n)| format!("[{q},{n}]"))),
                );
                w.field_raw(
                    "cache_misses",
                    &json::array(t.cache_misses.iter().map(|(&q, &n)| format!("[{q},{n}]"))),
                );
                w.field_u64("dropped_visits", t.dropped_visits);
                w.field_u64("dropped_heat", t.dropped_heat);
                w.field_u64("dropped_transitions", t.dropped_transitions);
            })
        });
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.field_raw("machines", &json::array(machines));
        let mut phases: Vec<(usize, &str, u64)> = self
            .phase_txn
            .iter()
            .map(|(m, p, n)| (*m, p.as_str(), *n))
            .collect();
        phases.sort();
        w.field_raw(
            "phases",
            &json::array(phases.into_iter().map(|(m, p, n)| {
                let name = Machine::from_index(m).map_or("?", Machine::name);
                let mut s = String::from("[");
                json::push_str(&mut s, name);
                s.push(',');
                json::push_str(&mut s, p);
                s.push(',');
                s.push_str(&n.to_string());
                s.push(']');
                s
            })),
        );
        w.finish();
        out
    }

    /// Parse a `scope.json` document produced by [`ScopeProfiler::to_json`]
    /// back into a profiler (for federation across processes).
    pub fn from_json(input: &str) -> Result<ScopeProfiler, String> {
        let v = json::parse(input).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }

    /// [`ScopeProfiler::from_json`] over an already-parsed [`Value`].
    pub fn from_value(v: &Value) -> Result<ScopeProfiler, String> {
        let mut scope = ScopeProfiler::new();
        let machines = v
            .get("machines")
            .and_then(Value::as_arr)
            .ok_or("scope.json: missing machines array")?;
        let pair = |e: &Value, n: usize| -> Result<Vec<u64>, String> {
            let a = e.as_arr().ok_or("scope.json: entry not an array")?;
            if a.len() != n {
                return Err(format!("scope.json: expected {n}-tuple"));
            }
            a.iter()
                .map(|x| x.as_u64().ok_or_else(|| "scope.json: non-integer".into()))
                .collect()
        };
        for mv in machines {
            let name = mv
                .get("machine")
                .and_then(Value::as_str)
                .ok_or("scope.json: machine without name")?;
            let m = Machine::from_name(name)
                .ok_or_else(|| format!("scope.json: unknown machine {name:?}"))?;
            let t = &mut scope.tables[m.index()];
            t.universe = mv.get("universe").and_then(Value::as_u64);
            for e in mv.get("visits").and_then(Value::as_arr).unwrap_or(&[]) {
                let p = pair(e, 2)?;
                t.visits.insert(p[0] as u32, p[1]);
            }
            for e in mv.get("heat").and_then(Value::as_arr).unwrap_or(&[]) {
                let p = pair(e, 3)?;
                t.heat.insert((p[0] as u32, p[1] as u32), p[2]);
            }
            for e in mv.get("transitions").and_then(Value::as_arr).unwrap_or(&[]) {
                let p = pair(e, 4)?;
                t.transitions
                    .insert((p[0] as u32, p[1] as u32, p[2] as u32), p[3]);
            }
            for e in mv.get("cache_hits").and_then(Value::as_arr).unwrap_or(&[]) {
                let p = pair(e, 2)?;
                t.cache_hits.insert(p[0] as u32, p[1]);
            }
            for e in mv
                .get("cache_misses")
                .and_then(Value::as_arr)
                .unwrap_or(&[])
            {
                let p = pair(e, 2)?;
                t.cache_misses.insert(p[0] as u32, p[1]);
            }
            t.dropped_visits = mv
                .get("dropped_visits")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            t.dropped_heat = mv.get("dropped_heat").and_then(Value::as_u64).unwrap_or(0);
            t.dropped_transitions = mv
                .get("dropped_transitions")
                .and_then(Value::as_u64)
                .unwrap_or(0);
        }
        for e in v.get("phases").and_then(Value::as_arr).unwrap_or(&[]) {
            let a = e.as_arr().ok_or("scope.json: phase entry not an array")?;
            if a.len() != 3 {
                return Err("scope.json: phase entry must be [machine, phase, count]".into());
            }
            let name = a[0]
                .as_str()
                .ok_or("scope.json: phase machine not a string")?;
            let m = Machine::from_name(name)
                .ok_or_else(|| format!("scope.json: unknown machine {name:?}"))?;
            let p = a[1].as_str().ok_or("scope.json: phase name not a string")?;
            let n = a[2].as_u64().ok_or("scope.json: phase count not integer")?;
            scope.phase_txn.push((m.index(), p.to_owned(), n));
        }
        Ok(scope)
    }

    /// Collapsed-stack rendering (`machine;q<state> <visits>` per line,
    /// sorted) — the format the `/profile` flamegraph path consumes, so
    /// state heatmaps render with the machinery that already exists.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for m in Machine::ALL {
            let t = self.combined(m.index());
            for (&q, &n) in &t.visits {
                out.push_str(m.name());
                out.push_str(";q");
                out.push_str(&q.to_string());
                out.push(' ');
                out.push_str(&n.to_string());
                out.push('\n');
            }
            if t.dropped_visits > 0 {
                out.push_str(m.name());
                out.push_str(";(dropped) ");
                out.push_str(&t.dropped_visits.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Distill the raw tables into an EXPLAIN-grade [`ScopeReport`].
    pub fn explain_run(&self) -> ScopeReport {
        let mut machines = Vec::new();
        for m in Machine::ALL {
            let t = self.combined(m.index());
            if t.is_empty() {
                continue;
            }
            let total_visits = t.total_visits();
            let mut hot: Vec<(u32, u64)> = t.visits.iter().map(|(&q, &n)| (q, n)).collect();
            // Heaviest first; ties broken by smaller state id (deterministic).
            hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let hot_share = if total_visits == 0 {
                0.0
            } else {
                hot.first()
                    .map_or(0.0, |&(_, n)| n as f64 / total_visits as f64)
            };
            let cold: Vec<u32> = t
                .visits
                .iter()
                .filter(|&(_, &n)| {
                    total_visits > 0 && (n as f64 / total_visits as f64) < COLD_SHARE
                })
                .map(|(&q, _)| q)
                .collect();
            let dead = t.universe.map(|u| {
                (0..u as u32)
                    .filter(|q| !t.visits.contains_key(q))
                    .collect::<Vec<u32>>()
            });
            hot.truncate(HOT_TOP_K);
            let phases: Vec<(String, u64)> = {
                let mut v: Vec<(String, u64)> = self
                    .phase_txn
                    .iter()
                    .filter(|(mi, _, _)| *mi == m.index())
                    .map(|(_, p, n)| (p.clone(), *n))
                    .collect();
                v.sort();
                v
            };
            machines.push(MachineReport {
                machine: m,
                universe: t.universe,
                visited: t.visits.len() as u64,
                total_visits,
                dropped_visits: t.dropped_visits,
                hot,
                hot_share,
                cold,
                dead,
                total_transitions: t.total_transitions(),
                distinct_edges: t.transitions.len() as u64,
                cache_hits: t.cache_hits.values().sum(),
                cache_misses: t.cache_misses.values().sum(),
                phases,
            });
        }
        ScopeReport { machines }
    }
}

impl Observer for ScopeProfiler {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        // Per-state cache attribution: credit the state the engine was
        // resolving when the cache answered.
        let map_kind = match counter {
            Counter::CacheHits => true,
            Counter::CacheMisses => false,
            _ => return,
        };
        if let Some((m, q)) = self.last {
            let t = &mut self.tables[m.index()];
            let (map, dropped) = if map_kind {
                (&mut t.cache_hits, &mut t.dropped_visits)
            } else {
                (&mut t.cache_misses, &mut t.dropped_visits)
            };
            // Cache maps share the state cap; eviction mass is negligible
            // here, so drops fold into the visit account.
            bump(map, q, n, self.state_cap, dropped);
        }
    }

    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        if series == Series::MachineStates {
            self.pending_universe = Some(value);
        }
    }

    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.phase_stack.push(name);
    }

    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        if let Some(i) = self.phase_stack.iter().rposition(|p| *p == name) {
            self.phase_stack.remove(i);
        }
    }

    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        if let Some(u) = self.pending_universe {
            self.pending_universe = None;
            self.declare_universe(machine, u);
        }
        self.last = Some((machine, state));
        if self.dense_ok && (state as usize) < DENSE_STATES && (sym as usize) < DENSE_SYMS {
            let d = &mut self.dense[machine.index()];
            if d.visits.is_empty() {
                d.visits = vec![0; DENSE_STATES];
                d.heat = vec![0; DENSE_CELLS];
            }
            d.visits[state as usize] += 1;
            d.heat[state as usize * DENSE_SYMS + sym as usize] += 1;
            return;
        }
        let t = &mut self.tables[machine.index()];
        bump(
            &mut t.visits,
            state,
            1,
            self.state_cap,
            &mut t.dropped_visits,
        );
        bump(
            &mut t.heat,
            (state, sym),
            1,
            self.edge_cap,
            &mut t.dropped_heat,
        );
    }

    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        'table: {
            if self.dense_ok && (from as usize) < DENSE_STATES && (sym as usize) < DENSE_SYMS {
                let d = &mut self.dense[machine.index()];
                if d.txn_cnt.is_empty() {
                    d.txn_cnt = vec![0; DENSE_CELLS];
                    d.txn_to = vec![DenseScope::NO_TARGET; DENSE_CELLS];
                }
                let cell = from as usize * DENSE_SYMS + sym as usize;
                if d.txn_to[cell] == to {
                    d.txn_cnt[cell] += 1;
                    break 'table;
                }
                if d.txn_to[cell] == DenseScope::NO_TARGET {
                    d.txn_to[cell] = to;
                    d.txn_cnt[cell] = 1;
                    break 'table;
                }
                // A second target for this (from, sym): nondeterministic
                // simulation — fall through to the sparse map.
            }
            let t = &mut self.tables[machine.index()];
            bump(
                &mut t.transitions,
                (from, sym, to),
                1,
                self.edge_cap,
                &mut t.dropped_transitions,
            );
        }
        self.bump_phase(machine.index(), 1);
    }
}

/// The per-machine summary computed by [`ScopeProfiler::explain_run`].
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Which engine.
    pub machine: Machine,
    /// Declared automaton size, when known.
    pub universe: Option<u64>,
    /// Distinct states visited (tracked; evicted states not counted).
    pub visited: u64,
    /// Total visits including evicted mass.
    pub total_visits: u64,
    /// Visit mass evicted by the heavy-hitter cap.
    pub dropped_visits: u64,
    /// Top states by visits, heaviest first (at most [`HOT_TOP_K`]).
    pub hot: Vec<(u32, u64)>,
    /// Share of the hottest state in all visits.
    pub hot_share: f64,
    /// Visited states with share below [`COLD_SHARE`].
    pub cold: Vec<u32>,
    /// States declared but never visited (only when the universe is known)
    /// — the minimization target for the compiled engine.
    pub dead: Option<Vec<u32>>,
    /// Total fired transitions including evicted mass.
    pub total_transitions: u64,
    /// Distinct `(from, symbol, to)` edges tracked.
    pub distinct_edges: u64,
    /// Behavior-cache hits attributed to this machine's states.
    pub cache_hits: u64,
    /// Behavior-cache misses attributed to this machine's states.
    pub cache_misses: u64,
    /// Transitions fired per phase, sorted by phase name.
    pub phases: Vec<(String, u64)>,
}

/// The `EXPLAIN ANALYZE` output: one [`MachineReport`] per engine that saw
/// events, in dense machine order.
#[derive(Clone, Debug, Default)]
pub struct ScopeReport {
    /// Per-machine summaries, in [`Machine`] index order.
    pub machines: Vec<MachineReport>,
}

impl ScopeReport {
    /// Serialize as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let machines = self.machines.iter().map(|r| {
            json::object(|w| {
                w.field_str("machine", r.machine.name());
                if let Some(u) = r.universe {
                    w.field_u64("universe", u);
                }
                w.field_u64("visited_states", r.visited);
                w.field_u64("total_visits", r.total_visits);
                w.field_u64("dropped_visits", r.dropped_visits);
                w.field_raw(
                    "hot",
                    &json::array(r.hot.iter().map(|&(q, n)| format!("[{q},{n}]"))),
                );
                w.field_f64("hot_share", r.hot_share);
                w.field_raw("cold", &json::array(r.cold.iter().map(|q| q.to_string())));
                if let Some(dead) = &r.dead {
                    w.field_raw("dead", &json::array(dead.iter().map(|q| q.to_string())));
                }
                w.field_u64("total_transitions", r.total_transitions);
                w.field_u64("distinct_edges", r.distinct_edges);
                w.field_u64("cache_hits", r.cache_hits);
                w.field_u64("cache_misses", r.cache_misses);
                w.field_raw(
                    "phases",
                    &json::array(r.phases.iter().map(|(p, n)| {
                        let mut s = String::from("[");
                        json::push_str(&mut s, p);
                        s.push(',');
                        s.push_str(&n.to_string());
                        s.push(']');
                        s
                    })),
                );
            })
        });
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.field_raw("machines", &json::array(machines));
        w.finish();
        out
    }

    /// Render as the human-facing `EXPLAIN ANALYZE` text block.
    pub fn render_text(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE (scope)\n");
        if self.machines.is_empty() {
            out.push_str("  (no profiled machines — was a ScopeProfiler attached?)\n");
            return out;
        }
        for r in &self.machines {
            out.push_str(&format!("machine {}:", r.machine.name()));
            match r.universe {
                Some(u) => out.push_str(&format!(" {u} states declared,")),
                None => out.push_str(" size undeclared,"),
            }
            out.push_str(&format!(" {} visited", r.visited));
            if let Some(dead) = &r.dead {
                out.push_str(&format!(" ({} dead", dead.len()));
                if !dead.is_empty() && dead.len() <= 8 {
                    out.push_str(": ");
                    out.push_str(
                        &dead
                            .iter()
                            .map(|q| format!("q{q}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                    );
                }
                out.push(')');
            }
            out.push_str(&format!(", {} cold\n", r.cold.len()));
            out.push_str(&format!(
                "  visits {} ({} dropped)",
                r.total_visits, r.dropped_visits
            ));
            if !r.hot.is_empty() {
                out.push_str(", hot ");
                out.push_str(
                    &r.hot
                        .iter()
                        .take(3)
                        .map(|&(q, n)| {
                            let share = if r.total_visits == 0 {
                                0.0
                            } else {
                                100.0 * n as f64 / r.total_visits as f64
                            };
                            format!("q{q} {share:.1}%")
                        })
                        .collect::<Vec<_>>()
                        .join(" | "),
                );
            }
            out.push('\n');
            out.push_str(&format!(
                "  transitions {} across {} edges",
                r.total_transitions, r.distinct_edges
            ));
            if !r.phases.is_empty() {
                out.push_str("; by phase: ");
                out.push_str(
                    &r.phases
                        .iter()
                        .map(|(p, n)| format!("{p} {n}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
            }
            out.push('\n');
            if r.cache_hits + r.cache_misses > 0 {
                let rate = 100.0 * r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64;
                out.push_str(&format!(
                    "  cache: {} hits / {} misses ({rate:.1}% hit rate)\n",
                    r.cache_hits, r.cache_misses
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::NoopObserver;

    fn feed(scope: &mut ScopeProfiler) {
        for i in 0..5u32 {
            for _ in 0..(10 - i) {
                scope.state_visit(Machine::TwoDfa, i, 2);
                scope.transition_fired(Machine::TwoDfa, i, 2, (i + 1) % 5);
            }
        }
        scope.declare_universe(Machine::TwoDfa, 8);
    }

    #[test]
    fn report_finds_hot_dead_and_cold() {
        let mut scope = ScopeProfiler::new();
        feed(&mut scope);
        // one very cold state
        for _ in 0..10_000 {
            scope.state_visit(Machine::Qar, 0, 0);
        }
        scope.state_visit(Machine::Qar, 1, 0);
        let report = scope.explain_run();
        let two = &report.machines[0];
        assert_eq!(two.machine, Machine::TwoDfa);
        assert_eq!(two.universe, Some(8));
        assert_eq!(two.visited, 5);
        assert_eq!(two.dead.as_deref(), Some(&[5, 6, 7][..]));
        assert_eq!(two.hot[0], (0, 10));
        let qar = &report.machines[1];
        assert_eq!(qar.machine, Machine::Qar);
        assert_eq!(qar.cold, vec![1]);
        assert!(qar.hot_share > 0.99);
    }

    #[test]
    fn merge_is_commutative_and_serialization_is_stable() {
        let mut a = ScopeProfiler::new();
        feed(&mut a);
        let mut b = ScopeProfiler::new();
        b.state_visit(Machine::Dbtau, 3, 1);
        b.transition_fired(Machine::Dbtau, 3, 1, 0);
        b.phase_start("run");
        b.transition_fired(Machine::Dbtau, 0, 1, 3);
        b.phase_end("run");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.to_collapsed(), ba.to_collapsed());

        // round-trip through scope.json preserves the serialization
        let parsed = ScopeProfiler::from_json(&ab.to_json()).unwrap();
        assert_eq!(parsed.to_json(), ab.to_json());
    }

    #[test]
    fn heavy_hitter_cap_conserves_totals() {
        let mut scope = ScopeProfiler::with_caps(4, 4);
        // 100 distinct states, state i visited i+1 times: heavy tail.
        let mut total = 0u64;
        for i in 0..100u32 {
            for _ in 0..=i {
                scope.state_visit(Machine::TwoDfa, i, 0);
                total += 1;
            }
        }
        let t = scope.machine(Machine::TwoDfa);
        assert_eq!(t.visits.len(), 4, "cap bounds distinct states");
        assert_eq!(t.total_visits(), total, "kept + dropped == true total");
        assert!(t.dropped_visits > 0);
        // the final heavy hitters survive the Space-Saving eviction
        assert!(t.visits.contains_key(&99));
        let report = scope.explain_run();
        assert_eq!(report.machines[0].total_visits, total);
    }

    #[test]
    fn cache_attribution_follows_last_visit() {
        let mut scope = ScopeProfiler::new();
        // no visit yet: unattributable counts are dropped silently
        scope.count(Counter::CacheHits, 1);
        scope.state_visit(Machine::Qau, 7, 0);
        scope.count(Counter::CacheHits, 3);
        scope.count(Counter::CacheMisses, 2);
        let t = scope.machine(Machine::Qau);
        assert_eq!(t.cache_hits.get(&7), Some(&3));
        assert_eq!(t.cache_misses.get(&7), Some(&2));
        let report = scope.explain_run();
        assert_eq!(report.machines[0].cache_hits, 3);
        assert_eq!(report.machines[0].cache_misses, 2);
    }

    #[test]
    fn machine_states_record_declares_the_universe() {
        let mut scope = ScopeProfiler::new();
        scope.record(Series::MachineStates, 12);
        scope.state_visit(Machine::Dbtar, 2, 0);
        assert_eq!(scope.machine(Machine::Dbtar).universe, Some(12));
        // the record is claimed once, by the first visit only
        scope.state_visit(Machine::Qar, 0, 0);
        assert!(scope.machine(Machine::Qar).universe.is_none());
        // a record with no subsequent visit stays inert
        let mut idle = ScopeProfiler::new();
        idle.record(Series::MachineStates, 5);
        assert!(idle.machine(Machine::Dbtar).universe.is_none());
    }

    #[test]
    fn text_and_collapsed_render() {
        let mut scope = ScopeProfiler::new();
        feed(&mut scope);
        let text = scope.explain_run().render_text();
        assert!(text.contains("machine twodfa"), "{text}");
        assert!(text.contains("8 states declared"), "{text}");
        let collapsed = scope.to_collapsed();
        assert!(collapsed.contains("twodfa;q0 10\n"), "{collapsed}");
        // empty profiler renders the hint, not a panic
        let empty = ScopeProfiler::new().explain_run().render_text();
        assert!(empty.contains("no profiled machines"));
        let _ = NoopObserver; // silence unused import on feature-less builds
    }
}
