//! Cross-crate integration tests: the full pipelines a user of the facade
//! crate would run.

use query_automata::decision::{ranked_decisions, string_decisions, tiling};
use query_automata::mso::{compile_string, naive, query_eval, to_qa, unranked};
use query_automata::prelude::*;
use query_automata::xml::{figures, validate};

/// Figures 1–4 → DTD validation → MSO query → selected nodes.
#[test]
fn bibliography_pipeline() {
    let (doc, dtd) = figures::bibliography().unwrap();
    validate::validate(&dtd, &doc.tree).unwrap();
    let auto = validate::to_automaton(&dtd).unwrap();
    assert!(auto.accepts(&doc.tree));

    // "select all authors of books"
    let mut a = doc.alphabet.clone();
    let phi = parse_mso(
        "label(v, author) & (ex b. (label(b, book) & edge(b, v)))",
        &mut a,
    )
    .unwrap();
    let compiled = unranked::compile_unary(&phi, "v", doc.alphabet.len()).unwrap();
    let selected = query_eval::eval_unary_unranked(&compiled, &doc.tree, doc.alphabet.len());
    // the book has exactly 3 authors; the article's author is not selected
    assert_eq!(selected.len(), 3);
    let author = doc.alphabet.symbol("author");
    let book = doc.alphabet.symbol("book");
    for v in &selected {
        assert_eq!(doc.tree.label(*v), author);
        assert_eq!(doc.tree.label(doc.tree.parent(*v).unwrap()), book);
    }
    // agree with the naive semantics
    let slow = naive::query(naive::Structure::Tree(&doc.tree), &phi, "v").unwrap();
    let mut fast: Vec<usize> = selected.iter().map(|v| v.index()).collect();
    fast.sort_unstable();
    assert_eq!(fast, slow);
}

/// MSO → marked DFA → synthesized two-way QA → crossing-sequence decision.
#[test]
fn string_synthesis_and_decisions_agree() {
    let sigma = Alphabet::from_names(["a", "b"]);
    let mut a = sigma.clone();
    let phi = parse_mso("leaf(v) & (ex x. label(x, b))", &mut a).unwrap();
    let marked = compile_string::compile_unary(&phi, "v", sigma.len()).unwrap();
    let qa = to_qa::string_query_to_qa(&marked, sigma.len()).unwrap();

    // non-emptiness through the crossing-sequence pipeline, on a machine
    // synthesized from a compact query (crossing-sequence spaces grow
    // exponentially with machine size, so keep the decision leg small)
    let mut a2 = sigma.clone();
    let simple = parse_mso("label(v, b)", &mut a2).unwrap();
    let simple_marked = compile_string::compile_unary(&simple, "v", sigma.len()).unwrap();
    let simple_qa = to_qa::string_query_to_qa(&simple_marked, sigma.len()).unwrap();
    let w = string_decisions::non_emptiness(&simple_qa).expect("query is satisfiable");
    assert!(simple_qa.query(&w.word).unwrap().contains(&w.position));
    // the witness is minimal: the single word "b" with its only position
    assert_eq!(w.word, vec![sigma.symbol("b")]);
    assert_eq!(w.position, 0);

    // semantics spot-check: the synthesized machine matches the marked DFA
    for text in ["", "a", "b", "ab", "aab", "bba"] {
        let word: Vec<Symbol> = text.chars().map(|c| sigma.symbol(&c.to_string())).collect();
        let selected = qa.query(&word).unwrap();
        for pos in 0..word.len() {
            let m = compile_string::mark_word(&word, pos, sigma.len());
            assert_eq!(
                selected.contains(&pos),
                marked.accepts(&m),
                "{text} @ {pos}"
            );
        }
    }

    // containment/equivalence are exercised on the compact hand-built
    // machine (the synthesized one's selection NFA is too large to
    // complement in a unit-test budget — containment needs ¬L_sel).
    let hand = query_automata::twoway::string_qa::example_3_4_qa(&Alphabet::from_names(["0", "1"]));
    assert!(string_decisions::equivalence(&hand, &hand.clone()).is_ok());
    let mut never = hand.clone();
    for s in 0..never.machine().num_states() {
        for x in 0..2 {
            never.set_selecting(
                query_automata::strings::StateId::from_index(s),
                Symbol::from_index(x),
                false,
            );
        }
    }
    assert!(string_decisions::equivalence(&hand, &never).is_err());
    assert!(string_decisions::containment(&never, &hand).is_ok());
}

/// Tiling game ⇄ automaton non-emptiness on a batch of random instances.
#[test]
fn tiling_reduction_matches_game_solver() {
    use query_automata::base::rng::{Rng, StdRng};
    let mut rng = StdRng::seed_from_u64(2026);
    let mut wins = 0;
    let mut losses = 0;
    // two tiles keeps the strategy trees binary (fixpoint tuples quadratic);
    // the EXPTIME growth itself is measured in bench e5, not asserted here.
    for _ in 0..15 {
        let num_tiles = 2usize;
        let width = rng.gen_range(1..=2usize);
        let mut horizontal = Vec::new();
        let mut vertical = Vec::new();
        for x in 0..num_tiles {
            for y in 0..num_tiles {
                if rng.gen_bool(0.7) {
                    horizontal.push((x, y));
                }
                if rng.gen_bool(0.5) {
                    vertical.push((x, y));
                }
            }
        }
        let inst = tiling::TilingInstance {
            num_tiles,
            horizontal,
            vertical,
            bottom: (0..width).map(|_| rng.gen_range(0..num_tiles)).collect(),
            top: (0..width).map(|_| rng.gen_range(0..num_tiles)).collect(),
        };
        let winner = tiling::solve_game(&inst).unwrap();
        let machine = tiling::to_tree_automaton(&inst).unwrap();
        let mut qa = RankedQa::new(machine);
        for s in 0..qa.machine().num_states() {
            for t in 0..qa.machine().alphabet_len() {
                qa.set_selecting(
                    query_automata::strings::StateId::from_index(s),
                    Symbol::from_index(t),
                    true,
                );
            }
        }
        // The summary space is worst-case exponential (the problem is
        // EXPTIME-complete); skip the rare instance that blows the budget.
        let nonempty = match ranked_decisions::non_emptiness_with_budget(&qa, 5_000) {
            Ok(r) => r,
            Err(query_automata::base::Error::FuelExhausted { .. }) => continue,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(nonempty.is_some(), winner, "{inst:?}");
        if let Some(w) = nonempty {
            assert!(
                qa.machine().accepts(&w.tree).unwrap(),
                "witness strategy tree accepted: {inst:?}"
            );
        }
        if winner {
            wins += 1;
        } else {
            losses += 1;
        }
    }
    assert!(
        wins > 0 && losses > 0,
        "instance mix exercises both outcomes"
    );
}

/// Ranked decision fixpoint vs brute force on perturbed circuit automata.
#[test]
fn ranked_decisions_match_bounded_oracle() {
    let a = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let full = example_4_4(&a);
    let variants: Vec<RankedQa> = {
        let mut v = vec![full.clone()];
        // drop selections one symbol at a time
        for name in ["AND", "OR", "1"] {
            let mut q = full.clone();
            for s in 0..q.machine().num_states() {
                q.set_selecting(
                    query_automata::strings::StateId::from_index(s),
                    a.symbol(name),
                    false,
                );
            }
            v.push(q);
        }
        v
    };
    for (i, q1) in variants.iter().enumerate() {
        for q2 in &variants {
            let exact = ranked_decisions::containment(q1, q2).unwrap();
            let brute = query_automata::decision::bounded::containment_bounded(
                &|t| q1.query(t).unwrap_or_default(),
                &|t| q2.query(t).unwrap_or_default(),
                a.len(),
                2,
                5,
            );
            assert_eq!(exact.is_some(), brute.is_some(), "variant {i}");
            if let Some(w) = exact {
                assert!(q1.query(&w.tree).unwrap().contains(&w.node));
                assert!(!q2.query(&w.tree).unwrap().contains(&w.node));
            }
        }
    }
}

/// The paper's headline discrepancy: QAu and SQAu accept the same tree
/// languages but compute different queries (Propositions 5.10/5.15 +
/// Example 5.14).
#[test]
fn stay_transitions_add_query_power_not_language_power() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let sqa = example_5_14(&sigma);
    assert!(sqa.is_strong());
    // language: the Example 5.14 machine accepts every tree (F = Q)
    let mut names = sigma.clone();
    for s in ["0", "(1 0 1)", "(0 (1 1) (0 0 1))"] {
        let t = from_sexpr(s, &mut names).unwrap();
        assert!(sqa.accepts(&t).unwrap(), "{s}");
    }
    // query: selects exactly the first-1-leaf-per-sibling-group nodes,
    // which Proposition 5.10 shows no stay-free QAu computes. Sanity-check
    // the query against the MSO compilation.
    let mut a2 = sigma.clone();
    let phi = parse_mso(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a2,
    )
    .unwrap();
    let compiled = unranked::compile_unary(&phi, "v", sigma.len()).unwrap();
    let t = from_sexpr("(0 1 1 (1 0 1) 1)", &mut names).unwrap();
    let mut via_sqa = sqa.query(&t).unwrap();
    let mut via_mso = query_eval::eval_unary_unranked(&compiled, &t, sigma.len());
    via_sqa.sort_unstable();
    via_mso.sort_unstable();
    assert_eq!(via_sqa, via_mso);
}
