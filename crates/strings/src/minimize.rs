//! DFA minimization by Moore partition refinement.

use std::collections::{HashMap, VecDeque};

use qa_base::Symbol;

use crate::{Dfa, StateId};

/// Minimize `dfa`: trim to reachable states, totalize, then refine the
/// accepting/non-accepting partition until stable, and rebuild.
///
/// Moore refinement is O(n² · |Σ|) worst case — entirely adequate for the
/// automata this workspace produces, and simple enough to be obviously
/// correct (the property tests in `qa-mso` lean on it heavily).
pub fn minimize(dfa: &Dfa) -> Dfa {
    let total = trim(&dfa.totalize());
    let n = total.num_states();
    if n == 0 {
        // No reachable states at all: language is empty.
        let mut d = Dfa::new(dfa.alphabet_len());
        let q = d.add_state();
        d.set_initial(q);
        for s in 0..dfa.alphabet_len() {
            d.set_transition(q, Symbol::from_index(s), q);
        }
        return d;
    }

    // class[s] = index of s's current block.
    let mut class: Vec<usize> = (0..n)
        .map(|i| usize::from(total.is_accepting(StateId::from_index(i))))
        .collect();
    let mut num_classes = if class.contains(&1) && class.contains(&0) {
        2
    } else {
        1
    };
    if num_classes == 1 {
        // normalize to class 0
        class.iter_mut().for_each(|c| *c = 0);
    }

    loop {
        // signature of a state: (its class, classes of all successors)
        let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_class = vec![0usize; n];
        for i in 0..n {
            let succ: Vec<usize> = (0..total.alphabet_len())
                .map(|a| {
                    let t = total
                        .next(StateId::from_index(i), Symbol::from_index(a))
                        .expect("totalized");
                    class[t.index()]
                })
                .collect();
            let key = (class[i], succ);
            let next_id = sig_index.len();
            let id = *sig_index.entry(key).or_insert(next_id);
            new_class[i] = id;
        }
        let new_count = sig_index.len();
        class = new_class;
        if new_count == num_classes {
            break;
        }
        num_classes = new_count;
    }

    let mut out = Dfa::new(total.alphabet_len());
    for _ in 0..num_classes {
        out.add_state();
    }
    let rep = |c: usize| StateId::from_index(c);
    let mut acc_set = vec![false; num_classes];
    for i in 0..n {
        let c = class[i];
        if total.is_accepting(StateId::from_index(i)) {
            acc_set[c] = true;
        }
        for a in 0..total.alphabet_len() {
            let t = total
                .next(StateId::from_index(i), Symbol::from_index(a))
                .expect("totalized");
            out.set_transition(rep(c), Symbol::from_index(a), rep(class[t.index()]));
        }
    }
    for (c, &acc) in acc_set.iter().enumerate() {
        out.set_accepting(rep(c), acc);
    }
    out.set_initial(rep(class[total.initial().index()]));
    out
}

/// Restrict to states reachable from the initial state, renumbering densely.
pub fn trim(dfa: &Dfa) -> Dfa {
    let mut out = Dfa::new(dfa.alphabet_len());
    let init = dfa.initial();
    let mut map: HashMap<StateId, StateId> = HashMap::new();
    let mut queue = VecDeque::from([init]);
    map.insert(init, out.add_state());
    while let Some(s) = queue.pop_front() {
        let from = map[&s];
        out.set_accepting(from, dfa.is_accepting(s));
        for a in 0..dfa.alphabet_len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = dfa.next(s, sym) {
                let to = match map.get(&t) {
                    Some(&id) => id,
                    None => {
                        let id = out.add_state();
                        map.insert(t, id);
                        queue.push_back(t);
                        id
                    }
                };
                out.set_transition(from, sym, to);
            }
        }
    }
    out.set_initial(map[&init]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// A redundant DFA for "odd length" over a unary alphabet using 4 states.
    fn redundant_odd_length() -> Dfa {
        let mut d = Dfa::new(1);
        let q0 = d.add_state();
        let q1 = d.add_state();
        let q2 = d.add_state();
        let q3 = d.add_state();
        d.set_initial(q0);
        d.set_accepting(q1, true);
        d.set_accepting(q3, true);
        d.set_transition(q0, sym(0), q1);
        d.set_transition(q1, sym(0), q2);
        d.set_transition(q2, sym(0), q3);
        d.set_transition(q3, sym(0), q0);
        d
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        let d = redundant_odd_length();
        let m = minimize(&d);
        assert_eq!(m.num_states(), 2);
        for len in 0..10 {
            let w = vec![sym(0); len];
            assert_eq!(d.accepts(&w), m.accepts(&w), "length {len}");
        }
    }

    #[test]
    fn minimize_empty_language_is_one_state() {
        let mut d = Dfa::new(2);
        let q0 = d.add_state();
        let _q1 = d.add_state();
        d.set_initial(q0);
        d.set_transition(q0, sym(0), q0);
        d.set_transition(q0, sym(1), q0);
        let m = minimize(&d);
        assert_eq!(m.num_states(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn minimize_universal_language_is_one_state() {
        let mut d = Dfa::new(1);
        let q0 = d.add_state();
        let q1 = d.add_state();
        d.set_initial(q0);
        d.set_accepting(q0, true);
        d.set_accepting(q1, true);
        d.set_transition(q0, sym(0), q1);
        d.set_transition(q1, sym(0), q0);
        let m = minimize(&d);
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts(&[sym(0); 5]));
        assert!(m.accepts(&[]));
    }

    #[test]
    fn trim_drops_unreachable() {
        let mut d = redundant_odd_length();
        // add an unreachable accepting state
        let junk = d.add_state();
        d.set_accepting(junk, true);
        let t = trim(&d);
        assert_eq!(t.num_states(), 4);
    }

    #[test]
    fn minimized_is_equivalent_and_no_larger() {
        let d = redundant_odd_length();
        let m = minimize(&d);
        assert!(m.equivalent(&d));
        assert!(m.num_states() <= d.num_states());
    }
}
