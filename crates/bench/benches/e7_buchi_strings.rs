//! E7 (Theorems 2.5 & 3.9): the Büchi pipeline on strings — MSO→DFA
//! compilation cost, DFA runs are linear, the synthesized two-way QA runs
//! are linear too; naive MSO evaluation explodes with word length.

use qa_base::Alphabet;
use qa_bench::Harness;

const SENTENCE: &str = "all x. all y. (edge(x, y) -> !(label(x, 1) & label(y, 1)))";
const QUERY: &str = "label(v, 1) & !(ex w. (w < v & label(w, 1)))";

fn main() {
    let mut h = Harness::new("e7_buchi_strings");
    let mut a = Alphabet::from_names(["0", "1"]);
    let phi = qa_mso::parse(SENTENCE, &mut a).unwrap();
    let psi = qa_mso::parse(QUERY, &mut a).unwrap();

    h.bench("compile_sentence", || {
        qa_mso::compile_string::compile_sentence(&phi, 2)
            .unwrap()
            .num_states()
    });
    h.bench("synthesize_qa_thm39", || {
        let d = qa_mso::compile_string::compile_unary(&psi, "v", 2).unwrap();
        qa_mso::to_qa::string_query_to_qa(&d, 2)
            .unwrap()
            .machine()
            .num_states()
    });

    let dfa = qa_mso::compile_string::compile_sentence(&phi, 2).unwrap();
    let d_marked = qa_mso::compile_string::compile_unary(&psi, "v", 2).unwrap();
    let qa = qa_mso::to_qa::string_query_to_qa(&d_marked, 2).unwrap();
    for n in [16usize, 256, 4096] {
        let w = qa_bench::random_word(n, n as u64);
        h.bench(&format!("dfa_run/{n}"), || dfa.accepts(&w));
        h.bench(&format!("qa_query_run/{n}"), || qa.query(&w).unwrap().len());
        if n <= 16 {
            h.bench(&format!("naive_mso/{n}"), || {
                qa_mso::naive::check(qa_mso::naive::Structure::Word(&w), &phi).unwrap()
            });
        }
    }
}
