//! Finite alphabets of interned symbols.

use std::collections::HashMap;
use std::fmt;

use crate::Symbol;

/// A finite, ordered alphabet Σ.
///
/// Symbols are interned by name and addressed by dense index, so automata can
/// store transition tables as flat vectors indexed by `Symbol::index()`.
///
/// ```
/// use qa_base::Alphabet;
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("a");
/// let b = sigma.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(sigma.intern("a"), a); // idempotent
/// assert_eq!(sigma.name(a), "a");
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Create an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an alphabet from a list of distinct symbol names.
    ///
    /// Duplicate names are interned once, preserving first occurrence order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Symbol::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Look up an already-interned symbol by name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Look up a symbol by name, panicking with a clear message if absent.
    ///
    /// Convenient in tests and examples where the alphabet is fixed.
    pub fn symbol(&self, name: &str) -> Symbol {
        self.get(name)
            .unwrap_or_else(|| panic!("symbol `{name}` not in alphabet {self:?}"))
    }

    /// The name of `sym`.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Whether `sym` is a valid symbol of this alphabet.
    pub fn contains(&self, sym: Symbol) -> bool {
        sym.index() < self.names.len()
    }

    /// Iterate over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(Symbol::from_index)
    }

    /// Iterate over `(symbol, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_str()))
    }

    /// Render a string of symbols using this alphabet's names, separated by
    /// `sep` when any name is longer than one character.
    pub fn render(&self, word: &[Symbol]) -> String {
        let multi = word.iter().any(|&s| self.name(s).chars().count() > 1);
        let sep = if multi { " " } else { "" };
        word.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Intern every ASCII character of `text` as a one-character symbol and
    /// return the resulting word. Handy for tests over character alphabets.
    pub fn intern_str(&mut self, text: &str) -> Vec<Symbol> {
        text.chars().map(|c| self.intern(&c.to_string())).collect()
    }

    /// Convert `text` using only already-interned one-character symbols.
    pub fn word(&self, text: &str) -> Vec<Symbol> {
        text.chars().map(|c| self.symbol(&c.to_string())).collect()
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        assert_eq!(a.intern("x"), x);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn from_names_dedupes_preserving_order() {
        let a = Alphabet::from_names(["b", "a", "b"]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.name(Symbol::from_index(0)), "b");
        assert_eq!(a.name(Symbol::from_index(1)), "a");
    }

    #[test]
    fn symbols_iterates_in_index_order() {
        let a = Alphabet::from_names(["x", "y", "z"]);
        let v: Vec<usize> = a.symbols().map(|s| s.index()).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn render_single_char_names_has_no_separator() {
        let mut a = Alphabet::new();
        let w = a.intern_str("abc");
        assert_eq!(a.render(&w), "abc");
    }

    #[test]
    fn render_multi_char_names_uses_spaces() {
        let mut a = Alphabet::new();
        let b = a.intern("book");
        let t = a.intern("title");
        assert_eq!(a.render(&[b, t]), "book title");
    }

    #[test]
    fn word_round_trips_intern_str() {
        let mut a = Alphabet::new();
        let w = a.intern_str("aba");
        assert_eq!(a.word("aba"), w);
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn symbol_panics_on_unknown_name() {
        let a = Alphabet::new();
        a.symbol("missing");
    }
}
