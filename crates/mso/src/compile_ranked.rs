//! Doner/Thatcher–Wright (Theorem 2.8), constructive: MSO over ranked trees
//! compiles to bottom-up tree automata.
//!
//! Same discipline as [`crate::compile_string`]: formulas compile over the
//! bit-extended alphabet `Σ × {0,1}ᵏ`, every intermediate automaton accepts
//! only valid encodings (each first-order bit exactly once in the tree),
//! negation is difference against validity, quantification projects the top
//! bit, and the deterministic automaton is trimmed/minimized after every
//! step.

use qa_base::{Error, Result, Symbol};
use qa_core::ranked::{ops, Dbta, Nbta};
use qa_strings::StateId;
use qa_trees::Tree;

use crate::ast::{Formula, Var};
use crate::compile_string::{base_symbol, ext_alphabet_len, ext_mask, ext_symbol};

/// Encode a tree with one marked node over `Σ × {0,1}`.
pub fn mark_tree(tree: &Tree, node: qa_trees::NodeId, sigma: usize) -> Tree {
    let mut t = tree.clone();
    for v in tree.nodes() {
        let m = usize::from(v == node);
        t.set_label(v, ext_symbol(tree.label(v), m, sigma));
    }
    t
}

#[derive(Clone, Debug, Default)]
struct Ctx {
    vars: Vec<(Var, bool)>,
}

impl Ctx {
    fn bit_of(&self, v: &Var) -> Option<(usize, bool)> {
        self.vars
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (name, _))| name == v)
            .map(|(i, (_, is_set))| (i, *is_set))
    }
    fn len(&self) -> usize {
        self.vars.len()
    }
}

fn bit(mask: usize, b: usize) -> bool {
    (mask >> b) & 1 == 1
}

/// Build a deterministic bottom-up automaton from a *local rule*: the state
/// at a node is `step(children states, base symbol, mask)`; `None` = dead.
/// States are dense `0..num_states`; `finals` marks accepting root states.
/// A dead sink is added automatically.
fn local_dbta(
    sigma: usize,
    k: usize,
    m: usize,
    num_states: usize,
    finals: &[usize],
    step: impl Fn(&[usize], Symbol, usize) -> Option<usize>,
) -> Dbta {
    let ext = ext_alphabet_len(sigma, k);
    let mut d = Dbta::new(ext, m);
    for _ in 0..num_states {
        d.add_state();
    }
    let dead = d.add_state();
    for &f in finals {
        d.set_final(StateId::from_index(f), true);
    }
    // enumerate all tuples of states (incl. dead) up to rank m
    let total = num_states + 1;
    for e_idx in 0..ext {
        let e = Symbol::from_index(e_idx);
        let base = base_symbol(e, sigma);
        let mask = ext_mask(e, sigma);
        for arity in 0..=m {
            let mut tuple = vec![0usize; arity];
            loop {
                let ids: Vec<StateId> = tuple.iter().map(|&i| StateId::from_index(i)).collect();
                let target = if tuple.contains(&num_states) {
                    dead
                } else {
                    match step(&tuple, base, mask) {
                        Some(q) => {
                            debug_assert!(q < num_states);
                            StateId::from_index(q)
                        }
                        None => dead,
                    }
                };
                d.set_transition(&ids, e, target);
                // next tuple
                let mut i = 0;
                let mut done = arity == 0;
                while i < arity {
                    tuple[i] += 1;
                    if tuple[i] < total {
                        break;
                    }
                    tuple[i] = 0;
                    i += 1;
                    if i == arity {
                        done = true;
                    }
                }
                if done {
                    break;
                }
            }
        }
    }
    d
}

/// Validity: each first-order bit occurs exactly once in the tree.
fn valid_dbta(sigma: usize, m: usize, ctx: &Ctx) -> Dbta {
    let fo_bits: Vec<usize> = ctx
        .vars
        .iter()
        .enumerate()
        .filter(|(_, (_, is_set))| !is_set)
        .map(|(i, _)| i)
        .collect();
    let nfo = fo_bits.len();
    // state = subset of fo vars seen in the subtree
    let num = 1usize << nfo;
    local_dbta(sigma, ctx.len(), m, num, &[num - 1], |kids, _base, mask| {
        let mut seen = 0usize;
        for &c in kids {
            if c & seen != 0 {
                return None;
            }
            seen |= c;
        }
        let mut own = 0usize;
        for (j, &b) in fo_bits.iter().enumerate() {
            if bit(mask, b) {
                own |= 1 << j;
            }
        }
        if own & seen != 0 {
            return None;
        }
        Some(seen | own)
    })
}

fn compile_inner(f: &Formula, sigma: usize, m: usize, ctx: &Ctx) -> Result<Dbta> {
    let valid = || valid_dbta(sigma, m, ctx);
    let k = ctx.len();
    let fo_bit = |v: &Var| -> Result<usize> {
        match ctx.bit_of(v) {
            Some((b, false)) => Ok(b),
            Some((_, true)) => Err(Error::domain(format!(
                "variable `{v}` used first-order but bound as a set"
            ))),
            None => Err(Error::domain(format!("unbound variable `{v}`"))),
        }
    };
    let set_bit = |v: &Var| -> Result<usize> {
        match ctx.bit_of(v) {
            Some((b, true)) => Ok(b),
            Some((_, false)) => Err(Error::domain(format!(
                "variable `{v}` used as a set but bound first-order"
            ))),
            None => Err(Error::domain(format!("unbound set variable `{v}`"))),
        }
    };
    // simple per-node condition automaton: 1 state, rule must hold at every
    // node.
    let per_node = |ok: Box<dyn Fn(Symbol, usize) -> bool>| -> Dbta {
        local_dbta(sigma, k, m, 1, &[0], move |_kids, base, mask| {
            if ok(base, mask) {
                Some(0)
            } else {
                None
            }
        })
    };
    let out = match f {
        Formula::True => valid(),
        Formula::False => Dbta::new(ext_alphabet_len(sigma, k), m),
        Formula::Label(x, a) => {
            let b = fo_bit(x)?;
            let a = *a;
            ops::intersect(
                &per_node(Box::new(move |base, mask| !bit(mask, b) || base == a)),
                &valid(),
            )
        }
        Formula::Eq(x, y) => {
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            ops::intersect(
                &per_node(Box::new(move |_, mask| bit(mask, bx) == bit(mask, by))),
                &valid(),
            )
        }
        Formula::In(x, s) => {
            let bx = fo_bit(x)?;
            let bs = set_bit(s)?;
            ops::intersect(
                &per_node(Box::new(move |_, mask| !bit(mask, bx) || bit(mask, bs))),
                &valid(),
            )
        }
        Formula::Edge(x, y) => {
            // E(x, y): the y-bit node's parent carries the x-bit.
            // states: 0 plain, 1 "y was this node" (must be consumed by the
            // immediate parent), 2 satisfied.
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            let cond = local_dbta(sigma, k, m, 3, &[0, 2], move |kids, _base, mask| {
                let yjust = kids.iter().filter(|&&c| c == 1).count();
                let sat = kids.contains(&2);
                let (hx, hy) = (bit(mask, bx), bit(mask, by));
                if hy {
                    // y here: its parent must carry x; y cannot also consume
                    // a pending y below (validity kills duplicates anyway).
                    if yjust > 0 {
                        return None;
                    }
                    return Some(1);
                }
                if yjust > 1 {
                    return None;
                }
                if yjust == 1 {
                    if hx {
                        return Some(2);
                    }
                    return None;
                }
                if sat {
                    return Some(2);
                }
                Some(0)
            });
            ops::intersect(&cond, &valid())
        }
        Formula::Less(x, y) => {
            // sibling order: x-bit node and y-bit node share a parent, x
            // strictly earlier.
            // states: 0 plain, 1 "x was this node", 2 "y was this node",
            // 3 satisfied.
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            let cond = local_dbta(sigma, k, m, 4, &[3], move |kids, _base, mask| {
                let sat_below = kids.contains(&3);
                let xpos = kids.iter().position(|&c| c == 1);
                let ypos = kids.iter().position(|&c| c == 2);
                let (hx, hy) = (bit(mask, bx), bit(mask, by));
                if hx && hy {
                    return None; // same node: not strictly ordered
                }
                match (xpos, ypos) {
                    (Some(i), Some(j)) => {
                        if i < j && !hx && !hy && !sat_below {
                            Some(3)
                        } else {
                            None
                        }
                    }
                    (Some(_), None) | (None, Some(_)) => None, // unmatched
                    (None, None) => {
                        if hx {
                            Some(1)
                        } else if hy {
                            Some(2)
                        } else if sat_below {
                            Some(3)
                        } else {
                            Some(0)
                        }
                    }
                }
            });
            ops::intersect(&cond, &valid())
        }
        Formula::FirstChild(x, y) | Formula::SecondChild(x, y) => {
            // y is x's child at a fixed index.
            let want = usize::from(matches!(f, Formula::SecondChild(_, _)));
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            // states: 0 plain, 1 "y was this node", 2 satisfied.
            let cond = local_dbta(sigma, k, m, 3, &[0, 2], move |kids, _base, mask| {
                let ypos = kids.iter().position(|&c| c == 1);
                let sat = kids.contains(&2);
                let (hx, hy) = (bit(mask, bx), bit(mask, by));
                if hy {
                    if hx || ypos.is_some() {
                        return None; // same node / duplicate y
                    }
                    return Some(1);
                }
                match ypos {
                    Some(i) => {
                        if i == want && hx {
                            Some(2)
                        } else {
                            None
                        }
                    }
                    None => {
                        if hx {
                            None // x here but y is not its index-`want` child
                        } else if sat {
                            Some(2)
                        } else {
                            Some(0)
                        }
                    }
                }
            });
            ops::intersect(&cond, &valid())
        }
        Formula::Chain2(x, y) => {
            // y reachable from x via 0+ second-child steps.
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            // states: 0 plain, 1 pending chain (y at/below via second-child
            // links, x not yet met), 2 satisfied.
            let cond = local_dbta(sigma, k, m, 3, &[2], move |kids, _base, mask| {
                let pending = kids.iter().position(|&c| c == 1);
                let sat = kids.contains(&2);
                let (hx, hy) = (bit(mask, bx), bit(mask, by));
                if hy {
                    if pending.is_some() {
                        return None; // duplicate y
                    }
                    return if hx { Some(2) } else { Some(1) };
                }
                match pending {
                    Some(i) => {
                        if i != 1 {
                            return None; // chain broken by a non-second edge
                        }
                        if hx {
                            Some(2)
                        } else {
                            Some(1)
                        }
                    }
                    None => {
                        if hx {
                            None // x off the chain
                        } else if sat {
                            Some(2)
                        } else {
                            Some(0)
                        }
                    }
                }
            });
            ops::intersect(&cond, &valid())
        }
        Formula::Not(p) => {
            let a = compile_inner(p, sigma, m, ctx)?;
            ops::difference(&valid(), &a)
        }
        Formula::And(p, q) => {
            let a = compile_inner(p, sigma, m, ctx)?;
            let b = compile_inner(q, sigma, m, ctx)?;
            ops::intersect(&a, &b)
        }
        Formula::Or(p, q) => {
            let a = compile_inner(p, sigma, m, ctx)?;
            let b = compile_inner(q, sigma, m, ctx)?;
            ops::union(&a, &b)
        }
        Formula::Exists(v, p) => {
            let mut ctx2 = ctx.clone();
            ctx2.vars.push((v.clone(), false));
            let a = compile_inner(p, sigma, m, &ctx2)?;
            project_top_bit(&a, sigma, ctx2.len())
        }
        Formula::ExistsSet(v, p) => {
            let mut ctx2 = ctx.clone();
            ctx2.vars.push((v.clone(), true));
            let a = compile_inner(p, sigma, m, &ctx2)?;
            project_top_bit(&a, sigma, ctx2.len())
        }
        Formula::Forall(v, p) => {
            let inner = Formula::Exists(v.clone(), Box::new(Formula::Not(p.clone())));
            let a = compile_inner(&inner, sigma, m, ctx)?;
            ops::difference(&valid(), &a)
        }
        Formula::ForallSet(v, p) => {
            let inner = Formula::ExistsSet(v.clone(), Box::new(Formula::Not(p.clone())));
            let a = compile_inner(&inner, sigma, m, ctx)?;
            ops::difference(&valid(), &a)
        }
    };
    Ok(ops::minimize(&out))
}

/// Project away the top variable bit (NBTA relabeling, then determinize and
/// minimize).
fn project_top_bit(d: &Dbta, sigma: usize, k_with: usize) -> Dbta {
    let top = 1usize << (k_with - 1);
    let mut n = Nbta::new(ext_alphabet_len(sigma, k_with - 1), d.max_rank());
    for _ in 0..d.num_states() {
        n.add_state();
    }
    for i in 0..d.num_states() {
        let s = StateId::from_index(i);
        n.set_final(s, d.is_final(s));
    }
    for (children, e, q) in d.transitions() {
        let mask = ext_mask(e, sigma);
        let proj = ext_symbol(base_symbol(e, sigma), mask & !top, sigma);
        n.add_transition(children, proj, q);
    }
    ops::minimize(&ops::determinize(&n))
}

/// Compile a sentence over ranked trees (rank ≤ `m`) to a minimized DBTAʳ.
pub fn compile_sentence(f: &Formula, sigma: usize, m: usize) -> Result<Dbta> {
    let free = f.free_vars();
    if !free.is_empty() {
        return Err(Error::domain(format!(
            "sentence expected, found free variables {free:?}"
        )));
    }
    compile_inner(f, sigma, m, &Ctx::default())
}

/// Compile a unary query `φ(x)` to a minimized DBTAʳ over `Σ × {0,1}`;
/// feed it trees produced by [`mark_tree`].
pub fn compile_unary(f: &Formula, var: &str, sigma: usize, m: usize) -> Result<Dbta> {
    let free = f.free_vars();
    if free.iter().any(|v| v != var) {
        return Err(Error::domain(format!(
            "unary query over `{var}` expected, found free variables {free:?}"
        )));
    }
    let ctx = Ctx {
        vars: vec![(var.to_string(), false)],
    };
    compile_inner(f, sigma, m, &ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{check, query, Structure};
    use crate::parser::parse;
    use qa_base::rng::StdRng;
    use qa_base::Alphabet;

    fn random_trees(sigma: usize, m: usize, count: usize, seed: u64) -> Vec<Tree> {
        let labels: Vec<Symbol> = (0..sigma).map(Symbol::from_index).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for n in [1usize, 2, 3, 5, 8] {
            for _ in 0..count {
                out.push(qa_trees::generate::random(&mut rng, &labels, n, Some(m)));
            }
        }
        out
    }

    fn agree_sentence(src: &str, sigma_names: &[&str], m: usize, seed: u64) {
        let mut a = Alphabet::from_names(sigma_names.to_vec());
        let f = parse(src, &mut a).unwrap();
        let d = compile_sentence(&f, a.len(), m).unwrap();
        for t in random_trees(a.len(), m, 4, seed) {
            let naive = check(Structure::Tree(&t), &f).unwrap();
            assert_eq!(d.accepts(&t), naive, "{src} on {}", t.render(&a));
        }
    }

    #[test]
    fn label_and_root() {
        agree_sentence("ex x. (root(x) & label(x, b))", &["a", "b"], 2, 1);
        agree_sentence("all x. (leaf(x) -> label(x, a))", &["a", "b"], 2, 2);
    }

    #[test]
    fn edge_and_sibling_order() {
        agree_sentence(
            "ex x. ex y. (edge(x, y) & label(x, a) & label(y, b))",
            &["a", "b"],
            2,
            3,
        );
        agree_sentence(
            "ex x. ex y. (x < y & label(x, b) & label(y, b))",
            &["a", "b"],
            3,
            4,
        );
    }

    #[test]
    fn set_quantifier_on_trees() {
        // "the b-labeled nodes form exactly the leaves"
        agree_sentence("all x. (label(x, b) <-> leaf(x))", &["a", "b"], 2, 5);
        // even depth of some leaf via alternating set along a path is heavy;
        // use a simpler genuine SO property: there is a set containing the
        // root and closed under taking one child, ending at a b-leaf
        agree_sentence(
            "ex2 X. ( (ex r. (root(r) & r in X)) \
             & (all x. (x in X -> (leaf(x) | ex y. (edge(x, y) & y in X)))) \
             & (ex l. (l in X & leaf(l) & label(l, b))) )",
            &["a", "b"],
            2,
            6,
        );
    }

    #[test]
    fn unary_query_agrees_with_naive() {
        let mut a = Alphabet::from_names(["s", "t"]);
        // the Section 1 flagship: select all leaves if the root is labeled s
        let f = parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
        let d = compile_unary(&f, "v", a.len(), 2).unwrap();
        for t in random_trees(2, 2, 4, 7) {
            let naive = query(Structure::Tree(&t), &f, "v").unwrap();
            for v in t.nodes() {
                let marked = mark_tree(&t, v, 2);
                assert_eq!(
                    d.accepts(&marked),
                    naive.contains(&v.index()),
                    "node {v:?} of {}",
                    t.render(&a)
                );
            }
        }
    }

    #[test]
    fn sentences_reject_free_variables() {
        let mut a = Alphabet::new();
        let f = parse("label(x, a)", &mut a).unwrap();
        assert!(compile_sentence(&f, a.len(), 2).is_err());
    }
}
