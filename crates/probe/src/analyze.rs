//! Slow-query analysis over `events.jsonl` wide-event logs.
//!
//! `qa-fleet` writes one [wide event] per (query, doc) job; this module
//! turns that log into answers: which jobs were the heavy hitters
//! ([`top`]), which runs are percentile outliers within their query
//! ([`slow`]), and how each query's step count grows with document size
//! ([`growth`] — the empirical side of the polynomial-growth classes the
//! tree-automata literature predicts per query). [`top_states`] drops a
//! level below jobs: it ranks individual automaton states by visit count
//! from a `qa-scope` profile (`scope.json`), answering *where inside the
//! machines* the step mass went.
//!
//! The module parses JSONL generically via [`qa_obs::json`], so it works
//! on any event log with the `events.jsonl` field names — `qa-probe`
//! deliberately does not depend on the crate that *emits* the events.
//! Every report renders as fixed-precision text or JSON; both renderings
//! are deterministic functions of the input log.
//!
//! [wide event]: https://jeremymorrell.dev/blog/a-practitioners-guide-to-wide-events/

use qa_obs::json::{self, Value};
use qa_obs::percentile_sorted;

/// One parsed `events.jsonl` row — the analyzer's view of a wide event.
///
/// Only the fields the analyses consume; unknown fields are ignored, so
/// the parser tolerates forward-compatible extensions of the event schema.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRow {
    /// Global job index.
    pub job: u64,
    /// Trace id (16 hex digits) — the handle for cross-referencing the
    /// fleet timeline.
    pub trace: String,
    /// Workload (query) name.
    pub query: String,
    /// Document size (word length / tree node count).
    pub doc_nodes: u64,
    /// Document height.
    pub doc_depth: u64,
    /// Engine steps consumed.
    pub steps: u64,
    /// Two-way head reversals.
    pub reversals: u64,
    /// Behavior-cache hits.
    pub cache_hits: u64,
    /// Behavior-cache misses.
    pub cache_misses: u64,
    /// Watchdog budget trips.
    pub budget_trips: u64,
    /// Selected positions/nodes.
    pub selected: u64,
    /// `"ok"` or the error rendering.
    pub outcome: String,
    /// Executing worker (volatile field; `local` for in-process runs).
    pub worker: String,
    /// Job latency in nanoseconds (volatile field; 0 in identity
    /// projections).
    pub wall_ns: u64,
}

/// Parse a whole `events.jsonl` document into analyzer rows.
///
/// Blank lines are skipped; a malformed line fails with its 1-based line
/// number. Volatile fields may be absent (identity projections parse too).
pub fn parse_rows(jsonl: &str) -> Result<Vec<EventRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows.push(parse_row(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(rows)
}

fn parse_row(v: &Value) -> Result<EventRow, String> {
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("event missing string field `{key}`"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event missing integer field `{key}`"))
    };
    Ok(EventRow {
        job: u64_field("job")?,
        trace: str_field("trace")?,
        query: str_field("query")?,
        doc_nodes: u64_field("doc_nodes")?,
        doc_depth: u64_field("doc_depth")?,
        steps: u64_field("steps")?,
        reversals: u64_field("reversals")?,
        cache_hits: u64_field("cache_hits")?,
        cache_misses: u64_field("cache_misses")?,
        budget_trips: u64_field("budget_trips")?,
        selected: u64_field("selected")?,
        outcome: str_field("outcome")?,
        worker: v
            .get("worker")
            .and_then(Value::as_str)
            .unwrap_or("local")
            .to_string(),
        wall_ns: v.get("wall_ns").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// First-seen order of query names — reports group per query in the
/// stable order the log introduces them (= roster order for fleet logs).
fn query_order(rows: &[EventRow]) -> Vec<String> {
    let mut order: Vec<String> = Vec::new();
    for r in rows {
        if !order.contains(&r.query) {
            order.push(r.query.clone());
        }
    }
    order
}

// ---------------------------------------------------------------- top --

/// One heavy hitter: a job and its share of the fleet's total steps.
#[derive(Clone, Debug)]
pub struct TopEntry {
    /// Global job index.
    pub job: u64,
    /// Trace id, for jumping to the fleet timeline.
    pub trace: String,
    /// Query name.
    pub query: String,
    /// Document size.
    pub doc_nodes: u64,
    /// Steps this job consumed.
    pub steps: u64,
    /// Job latency (volatile; 0 in identity projections).
    pub wall_ns: u64,
    /// `steps / total_steps` over the whole log, in `[0, 1]`.
    pub share: f64,
    /// Run outcome.
    pub outcome: String,
}

/// The `analyze top` report: jobs ranked by step count.
#[derive(Clone, Debug)]
pub struct TopReport {
    /// Total steps across every job in the log.
    pub total_steps: u64,
    /// Number of jobs in the log.
    pub jobs: usize,
    /// The top entries, heaviest first (ties broken by job index).
    pub entries: Vec<TopEntry>,
}

/// Rank the `k` heaviest jobs by steps — the fleet's heavy hitters.
pub fn top(rows: &[EventRow], k: usize) -> TopReport {
    let total_steps: u64 = rows.iter().map(|r| r.steps).sum();
    let mut ranked: Vec<&EventRow> = rows.iter().collect();
    ranked.sort_by_key(|r| (std::cmp::Reverse(r.steps), r.job));
    let entries = ranked
        .into_iter()
        .take(k)
        .map(|r| TopEntry {
            job: r.job,
            trace: r.trace.clone(),
            query: r.query.clone(),
            doc_nodes: r.doc_nodes,
            steps: r.steps,
            wall_ns: r.wall_ns,
            share: if total_steps == 0 {
                0.0
            } else {
                r.steps as f64 / total_steps as f64
            },
            outcome: r.outcome.clone(),
        })
        .collect();
    TopReport {
        total_steps,
        jobs: rows.len(),
        entries,
    }
}

impl TopReport {
    /// Fixed-width text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "top {} of {} job(s) by steps ({} total steps)",
            self.entries.len(),
            self.jobs,
            self.total_steps
        );
        let _ = writeln!(
            out,
            "{:<5} {:<14} {:>9} {:>10} {:>6}  {:<16} outcome",
            "job", "query", "nodes", "steps", "share", "trace"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<5} {:<14} {:>9} {:>10} {:>5.1}%  {:<16} {}",
                e.job,
                e.query,
                e.doc_nodes,
                e.steps,
                e.share * 100.0,
                e.trace,
                e.outcome
            );
        }
        out
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_str("report", "top");
            w.field_u64("total_steps", self.total_steps);
            w.field_u64("jobs", self.jobs as u64);
            let entries: Vec<String> = self
                .entries
                .iter()
                .map(|e| {
                    json::object(|w| {
                        w.field_u64("job", e.job);
                        w.field_str("trace", &e.trace);
                        w.field_str("query", &e.query);
                        w.field_u64("doc_nodes", e.doc_nodes);
                        w.field_u64("steps", e.steps);
                        w.field_u64("wall_ns", e.wall_ns);
                        w.field_f64("share", e.share);
                        w.field_str("outcome", &e.outcome);
                    })
                })
                .collect();
            w.field_raw("entries", &json::array(entries));
        })
    }
}

// --------------------------------------------------------------- slow --

/// One outlier run within its query's step distribution.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Global job index.
    pub job: u64,
    /// Trace id.
    pub trace: String,
    /// Document size.
    pub doc_nodes: u64,
    /// Steps this job consumed.
    pub steps: u64,
    /// `steps / p50(steps)` for the job's query (how many medians).
    pub vs_median: f64,
    /// Run outcome.
    pub outcome: String,
}

/// Per-query step distribution plus its outliers.
#[derive(Clone, Debug)]
pub struct QuerySlow {
    /// Query name.
    pub query: String,
    /// Runs of this query in the log.
    pub runs: usize,
    /// Median steps.
    pub p50: u64,
    /// 90th percentile steps.
    pub p90: u64,
    /// 99th percentile steps.
    pub p99: u64,
    /// Maximum steps.
    pub max: u64,
    /// Jobs at or above the query's p99, heaviest first.
    pub outliers: Vec<SlowEntry>,
}

/// The `analyze slow` report: percentile outliers per query.
#[derive(Clone, Debug)]
pub struct SlowReport {
    /// Per-query distributions, in the log's first-seen query order.
    pub queries: Vec<QuerySlow>,
}

/// Find each query's percentile outliers: jobs at or above the query's
/// p99 step count (at most `k` per query, heaviest first). A fleet where
/// every run costs the same produces no interesting outliers — `vs_median`
/// near 1 says so; a heavy tail shows up as `vs_median >> 1`.
pub fn slow(rows: &[EventRow], k: usize) -> SlowReport {
    let mut queries = Vec::new();
    for q in query_order(rows) {
        let runs: Vec<&EventRow> = rows.iter().filter(|r| r.query == q).collect();
        let mut steps: Vec<u64> = runs.iter().map(|r| r.steps).collect();
        steps.sort_unstable();
        let (p50, p90, p99) = (
            percentile_sorted(&steps, 0.50),
            percentile_sorted(&steps, 0.90),
            percentile_sorted(&steps, 0.99),
        );
        let max = steps.last().copied().unwrap_or(0);
        let mut outliers: Vec<&&EventRow> = runs.iter().filter(|r| r.steps >= p99).collect();
        outliers.sort_by_key(|r| (std::cmp::Reverse(r.steps), r.job));
        let outliers = outliers
            .into_iter()
            .take(k)
            .map(|r| SlowEntry {
                job: r.job,
                trace: r.trace.clone(),
                doc_nodes: r.doc_nodes,
                steps: r.steps,
                vs_median: if p50 == 0 {
                    0.0
                } else {
                    r.steps as f64 / p50 as f64
                },
                outcome: r.outcome.clone(),
            })
            .collect();
        queries.push(QuerySlow {
            query: q,
            runs: runs.len(),
            p50,
            p90,
            p99,
            max,
            outliers,
        });
    }
    SlowReport { queries }
}

impl SlowReport {
    /// Fixed-width text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>10} {:>10} {:>10} {:>10}",
            "query", "runs", "p50", "p90", "p99", "max"
        );
        for q in &self.queries {
            let _ = writeln!(
                out,
                "{:<14} {:>5} {:>10} {:>10} {:>10} {:>10}",
                q.query, q.runs, q.p50, q.p90, q.p99, q.max
            );
            for o in &q.outliers {
                let _ = writeln!(
                    out,
                    "  job {:<4} {:>9} nodes {:>10} steps  {:>6.2}x median  {:<16} {}",
                    o.job, o.doc_nodes, o.steps, o.vs_median, o.trace, o.outcome
                );
            }
        }
        out
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_str("report", "slow");
            let queries: Vec<String> = self
                .queries
                .iter()
                .map(|q| {
                    json::object(|w| {
                        w.field_str("query", &q.query);
                        w.field_u64("runs", q.runs as u64);
                        w.field_u64("p50", q.p50);
                        w.field_u64("p90", q.p90);
                        w.field_u64("p99", q.p99);
                        w.field_u64("max", q.max);
                        let outliers: Vec<String> = q
                            .outliers
                            .iter()
                            .map(|o| {
                                json::object(|w| {
                                    w.field_u64("job", o.job);
                                    w.field_str("trace", &o.trace);
                                    w.field_u64("doc_nodes", o.doc_nodes);
                                    w.field_u64("steps", o.steps);
                                    w.field_f64("vs_median", o.vs_median);
                                    w.field_str("outcome", &o.outcome);
                                })
                            })
                            .collect();
                        w.field_raw("outliers", &json::array(outliers));
                    })
                })
                .collect();
            w.field_raw("queries", &json::array(queries));
        })
    }
}

// --------------------------------------------------------- top states --

/// One hot state: a `(machine, state)` pair and its visit mass.
#[derive(Clone, Debug)]
pub struct TopStateEntry {
    /// Engine name ([`qa_obs::Machine::name`]).
    pub machine: &'static str,
    /// Dense state index within that machine.
    pub state: u32,
    /// Times the engine resolved this state.
    pub visits: u64,
    /// `visits / total_visits` of the state's machine, in `[0, 1]`.
    pub share: f64,
    /// Behavior-cache hits attributed to this state.
    pub cache_hits: u64,
    /// Behavior-cache misses attributed to this state.
    pub cache_misses: u64,
}

/// The `analyze top --by state` report: states ranked by visit count
/// across every machine in a `scope.json` profile.
#[derive(Clone, Debug)]
pub struct TopStatesReport {
    /// Total state visits across all machines (evicted mass included).
    pub total_visits: u64,
    /// Machines with any profile mass.
    pub machines: usize,
    /// Visit mass evicted by the profiler's heavy-hitter cap — nonzero
    /// means the ranking below is approximate beyond the retained states.
    pub dropped_visits: u64,
    /// The top entries, most-visited first (ties by machine, then state).
    pub entries: Vec<TopStateEntry>,
}

/// Rank the `k` most-visited states across a [`ScopeProfiler`]'s
/// machines — the per-state heavy hitters of `analyze top --by state`.
/// Shares are per machine (a 2DFA state competes with its own automaton,
/// not with an unrelated tree run's).
///
/// [`ScopeProfiler`]: qa_scope::ScopeProfiler
pub fn top_states(scope: &qa_scope::ScopeProfiler, k: usize) -> TopStatesReport {
    let mut total_visits = 0u64;
    let mut dropped_visits = 0u64;
    let mut machines = 0usize;
    let mut all: Vec<TopStateEntry> = Vec::new();
    for m in qa_obs::Machine::ALL {
        let t = scope.machine(m);
        if t.is_empty() {
            continue;
        }
        machines += 1;
        let machine_total = t.total_visits();
        total_visits += machine_total;
        dropped_visits += t.dropped_visits;
        for (&state, &visits) in &t.visits {
            all.push(TopStateEntry {
                machine: m.name(),
                state,
                visits,
                share: if machine_total == 0 {
                    0.0
                } else {
                    visits as f64 / machine_total as f64
                },
                cache_hits: t.cache_hits.get(&state).copied().unwrap_or(0),
                cache_misses: t.cache_misses.get(&state).copied().unwrap_or(0),
            });
        }
    }
    all.sort_by(|a, b| {
        b.visits
            .cmp(&a.visits)
            .then_with(|| a.machine.cmp(b.machine))
            .then_with(|| a.state.cmp(&b.state))
    });
    all.truncate(k);
    TopStatesReport {
        total_visits,
        machines,
        dropped_visits,
        entries: all,
    }
}

impl TopStatesReport {
    /// Fixed-width text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "top {} state(s) across {} machine(s) ({} total visits{})",
            self.entries.len(),
            self.machines,
            self.total_visits,
            if self.dropped_visits > 0 {
                format!(", {} visits evicted by cap", self.dropped_visits)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "{:<12} {:<7} {:>12} {:>6} {:>10} {:>10}",
            "machine", "state", "visits", "share", "cache-hit", "cache-miss"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<12} q{:<6} {:>12} {:>5.1}% {:>10} {:>10}",
                e.machine,
                e.state,
                e.visits,
                e.share * 100.0,
                e.cache_hits,
                e.cache_misses
            );
        }
        out
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_str("report", "top-states");
            w.field_u64("total_visits", self.total_visits);
            w.field_u64("machines", self.machines as u64);
            w.field_u64("dropped_visits", self.dropped_visits);
            let entries: Vec<String> = self
                .entries
                .iter()
                .map(|e| {
                    json::object(|w| {
                        w.field_str("machine", e.machine);
                        w.field_u64("state", u64::from(e.state));
                        w.field_u64("visits", e.visits);
                        w.field_f64("share", e.share);
                        w.field_u64("cache_hits", e.cache_hits);
                        w.field_u64("cache_misses", e.cache_misses);
                    })
                })
                .collect();
            w.field_raw("entries", &json::array(entries));
        })
    }
}

// ------------------------------------------------------------- growth --

/// One query's fitted steps-vs-size growth law.
#[derive(Clone, Debug)]
pub struct GrowthFit {
    /// Query name.
    pub query: String,
    /// Runs of this query in the log.
    pub runs: usize,
    /// Distinct document sizes observed (a fit needs at least 2).
    pub sizes: usize,
    /// Fitted exponent `b` of `steps ≈ c·n^b` (log-log least squares),
    /// absent when the log has fewer than 2 distinct sizes.
    pub exponent: Option<f64>,
    /// Fitted coefficient `c`.
    pub coefficient: Option<f64>,
    /// Coefficient of determination of the log-log fit, in `[0, 1]`.
    pub r2: Option<f64>,
    /// Human name of the growth class the exponent lands in.
    pub class: String,
}

/// The `analyze growth` report: one fit per query.
#[derive(Clone, Debug)]
pub struct GrowthReport {
    /// Per-query fits, in the log's first-seen query order.
    pub fits: Vec<GrowthFit>,
}

/// Bucket a fitted exponent into a growth-class name. The boundaries are
/// deliberately coarse — the point is to tell constant from linear from
/// quadratic, the step-count classes the query-automata results predict.
fn growth_class(b: f64) -> String {
    if b < 0.25 {
        "constant".to_string()
    } else if b < 0.75 {
        "sublinear".to_string()
    } else if b < 1.25 {
        "linear".to_string()
    } else if b < 1.75 {
        "superlinear".to_string()
    } else if b < 2.25 {
        "quadratic".to_string()
    } else {
        format!("poly(~{b:.1})")
    }
}

/// Fit `steps ≈ c·n^b` per query by least squares on `(ln n, ln steps)`.
///
/// Jobs with `steps = 0` or `doc_nodes = 0` are skipped (logs of zero);
/// a query needs at least two distinct document sizes to fit — run
/// `qa-fleet --sweep` to produce such a log.
pub fn growth(rows: &[EventRow]) -> GrowthReport {
    let mut fits = Vec::new();
    for q in query_order(rows) {
        let runs: Vec<&EventRow> = rows.iter().filter(|r| r.query == q).collect();
        let pts: Vec<(f64, f64)> = runs
            .iter()
            .filter(|r| r.doc_nodes > 0 && r.steps > 0)
            .map(|r| ((r.doc_nodes as f64).ln(), (r.steps as f64).ln()))
            .collect();
        let mut sizes: Vec<u64> = runs.iter().map(|r| r.doc_nodes).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let fit = if sizes.len() >= 2 && pts.len() >= 2 {
            let n = pts.len() as f64;
            let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
            let (mx, my) = (sx / n, sy / n);
            let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
            let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
            if sxx == 0.0 {
                None
            } else {
                let b = sxy / sxx;
                let a = my - b * mx;
                let ss_tot: f64 = pts.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
                let ss_res: f64 = pts
                    .iter()
                    .map(|p| {
                        let e = p.1 - (a + b * p.0);
                        e * e
                    })
                    .sum();
                let r2 = if ss_tot == 0.0 {
                    1.0
                } else {
                    1.0 - ss_res / ss_tot
                };
                Some((b, a.exp(), r2))
            }
        } else {
            None
        };
        fits.push(match fit {
            Some((b, c, r2)) => GrowthFit {
                query: q,
                runs: runs.len(),
                sizes: sizes.len(),
                exponent: Some(b),
                coefficient: Some(c),
                r2: Some(r2),
                class: growth_class(b),
            },
            None => GrowthFit {
                query: q,
                runs: runs.len(),
                sizes: sizes.len(),
                exponent: None,
                coefficient: None,
                r2: None,
                class: "unfit (need >= 2 distinct sizes; try --sweep)".to_string(),
            },
        });
    }
    GrowthReport { fits }
}

impl GrowthReport {
    /// Fixed-width text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>6} {:>9} {:>11} {:>6}  class",
            "query", "runs", "sizes", "exponent", "coeff", "r2"
        );
        for f in &self.fits {
            match (f.exponent, f.coefficient, f.r2) {
                (Some(b), Some(c), Some(r2)) => {
                    let _ = writeln!(
                        out,
                        "{:<14} {:>5} {:>6} {:>9.3} {:>11.3} {:>6.3}  {}",
                        f.query, f.runs, f.sizes, b, c, r2, f.class
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{:<14} {:>5} {:>6} {:>9} {:>11} {:>6}  {}",
                        f.query, f.runs, f.sizes, "-", "-", "-", f.class
                    );
                }
            }
        }
        out
    }

    /// JSON rendering (`exponent`/`coefficient`/`r2` omitted when unfit).
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_str("report", "growth");
            let fits: Vec<String> = self
                .fits
                .iter()
                .map(|f| {
                    json::object(|w| {
                        w.field_str("query", &f.query);
                        w.field_u64("runs", f.runs as u64);
                        w.field_u64("sizes", f.sizes as u64);
                        if let (Some(b), Some(c), Some(r2)) = (f.exponent, f.coefficient, f.r2) {
                            w.field_f64("exponent", b);
                            w.field_f64("coefficient", c);
                            w.field_f64("r2", r2);
                        }
                        w.field_str("class", &f.class);
                    })
                })
                .collect();
            w.field_raw("fits", &json::array(fits));
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(job: u64, query: &str, nodes: u64, steps: u64) -> String {
        json::object(|w| {
            w.field_u64("v", 1);
            w.field_str("run", "r");
            w.field_str("trace", &format!("{:016x}", job + 1));
            w.field_str("span", "00000000000000aa");
            w.field_u64("job", job);
            w.field_str("query", query);
            w.field_u64("query_index", 0);
            w.field_u64("doc_index", job);
            w.field_u64("doc_nodes", nodes);
            w.field_u64("doc_depth", 3);
            w.field_u64("steps", steps);
            w.field_u64("reversals", 1);
            w.field_u64("cache_hits", 0);
            w.field_u64("cache_misses", 0);
            w.field_u64("budget_trips", 0);
            w.field_u64("selected", 2);
            w.field_bool("sampled", false);
            w.field_str("outcome", "ok");
            w.field_str("worker", "w0");
            w.field_str("shard", "0/2");
            w.field_u64("start_ns", 5);
            w.field_u64("wall_ns", 100 + job);
        })
    }

    fn log(rows: &[String]) -> String {
        let mut s = rows.join("\n");
        s.push('\n');
        s
    }

    #[test]
    fn parses_rows_and_tolerates_missing_volatile_fields() {
        let rows = parse_rows(&log(&[row(0, "q", 10, 50)])).unwrap();
        assert_eq!(rows[0].job, 0);
        assert_eq!(rows[0].wall_ns, 100);
        // identity projection: no worker/wall_ns
        let stripped = row(1, "q", 10, 50)
            .replace(",\"worker\":\"w0\"", "")
            .replace(",\"wall_ns\":101", "");
        let rows = parse_rows(&format!("{stripped}\n")).unwrap();
        assert_eq!(rows[0].worker, "local");
        assert_eq!(rows[0].wall_ns, 0);
        // line numbers in errors
        let err = parse_rows("{\"v\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn top_ranks_by_steps_with_share() {
        let rows = parse_rows(&log(&[
            row(0, "a", 10, 100),
            row(1, "b", 10, 700),
            row(2, "a", 10, 200),
        ]))
        .unwrap();
        let t = top(&rows, 2);
        assert_eq!(t.total_steps, 1000);
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].job, 1);
        assert!((t.entries[0].share - 0.7).abs() < 1e-12);
        assert_eq!(t.entries[1].job, 2);
        let text = t.render_text();
        assert!(text.contains("top 2 of 3 job(s)"), "{text}");
        let v = json::parse(&t.to_json()).unwrap();
        assert_eq!(v.get("total_steps").and_then(Value::as_u64), Some(1000));
    }

    #[test]
    fn slow_finds_per_query_outliers() {
        let mut lines: Vec<String> = (0..10).map(|j| row(j, "a", 10, 100)).collect();
        lines.push(row(10, "a", 10, 1000)); // the heavy tail
        lines.push(row(11, "b", 10, 5));
        let rows = parse_rows(&log(&lines)).unwrap();
        let s = slow(&rows, 3);
        assert_eq!(s.queries.len(), 2);
        let a = &s.queries[0];
        assert_eq!(a.query, "a");
        assert_eq!(a.p50, 100);
        assert_eq!(a.max, 1000);
        assert_eq!(a.outliers[0].job, 10);
        assert!((a.outliers[0].vs_median - 10.0).abs() < 1e-12);
        let v = json::parse(&s.to_json()).unwrap();
        let queries = v.get("queries").and_then(Value::as_arr).unwrap();
        assert_eq!(queries.len(), 2);
    }

    #[test]
    fn growth_fits_exact_power_laws() {
        // steps = 3·n² exactly: exponent 2, r² 1.
        let quad: Vec<String> = (1..=5u64)
            .map(|i| row(i, "quad", 10 * i, 3 * (10 * i) * (10 * i)))
            .collect();
        // steps = 7·n exactly: exponent 1.
        let lin: Vec<String> = (1..=5u64)
            .map(|i| row(10 + i, "lin", 10 * i, 7 * 10 * i))
            .collect();
        let mut lines = quad;
        lines.extend(lin);
        let rows = parse_rows(&log(&lines)).unwrap();
        let g = growth(&rows);
        assert_eq!(g.fits.len(), 2);
        let q = &g.fits[0];
        assert!((q.exponent.unwrap() - 2.0).abs() < 1e-9, "{q:?}");
        assert!((q.coefficient.unwrap() - 3.0).abs() < 1e-6, "{q:?}");
        assert!((q.r2.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(q.class, "quadratic");
        let l = &g.fits[1];
        assert!((l.exponent.unwrap() - 1.0).abs() < 1e-9, "{l:?}");
        assert_eq!(l.class, "linear");
    }

    #[test]
    fn growth_reports_unfittable_single_size_logs() {
        let rows = parse_rows(&log(&[row(0, "a", 10, 50), row(1, "a", 10, 60)])).unwrap();
        let g = growth(&rows);
        assert_eq!(g.fits[0].exponent, None);
        assert!(g.fits[0].class.contains("--sweep"), "{}", g.fits[0].class);
        let text = g.render_text();
        assert!(text.contains('-'), "{text}");
        // JSON omits the unfit fields entirely
        let v = json::parse(&g.to_json()).unwrap();
        let fit = &v.get("fits").and_then(Value::as_arr).unwrap()[0];
        assert!(fit.get("exponent").is_none());
    }

    #[test]
    fn top_states_ranks_across_machines_with_per_machine_shares() {
        use qa_obs::{Machine, Observer};
        let mut scope = qa_scope::ScopeProfiler::new();
        for _ in 0..30 {
            scope.state_visit(Machine::TwoDfa, 0, 1);
        }
        for _ in 0..10 {
            scope.state_visit(Machine::TwoDfa, 1, 1);
        }
        for _ in 0..25 {
            scope.state_visit(Machine::Dbtar, 4, 0);
        }
        let r = top_states(&scope, 2);
        assert_eq!(r.total_visits, 65);
        assert_eq!(r.machines, 2);
        assert_eq!(r.entries.len(), 2);
        assert_eq!((r.entries[0].machine, r.entries[0].state), ("twodfa", 0));
        assert!((r.entries[0].share - 0.75).abs() < 1e-12, "30 of 40");
        assert_eq!((r.entries[1].machine, r.entries[1].state), ("dbtar", 4));
        assert!((r.entries[1].share - 1.0).abs() < 1e-12, "25 of 25");
        let text = r.render_text();
        assert!(
            text.contains("top 2 state(s) across 2 machine(s)"),
            "{text}"
        );
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("total_visits").and_then(Value::as_u64), Some(65));
        // The report round-trips through the profiler's own JSON.
        let back = qa_scope::ScopeProfiler::from_json(&scope.to_json()).unwrap();
        assert_eq!(top_states(&back, 2).total_visits, 65);
    }

    #[test]
    fn growth_class_boundaries() {
        assert_eq!(growth_class(0.1), "constant");
        assert_eq!(growth_class(0.5), "sublinear");
        assert_eq!(growth_class(1.0), "linear");
        assert_eq!(growth_class(1.5), "superlinear");
        assert_eq!(growth_class(2.0), "quadratic");
        assert_eq!(growth_class(3.2), "poly(~3.2)");
    }
}
