//! End-to-end tests of the qa-lens wide-event layer: `events.jsonl`
//! identity byte-identity across `--jobs` and `--mesh` topologies, and the
//! assembled fleet timeline covering every job from every worker.

use std::path::PathBuf;
use std::process::{Command, Output};

use qa_flight::{identity_projection, parse_events};
use qa_obs::json::{self, Value};
use qa_obs::TraceContext;

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn read(dir: &str, name: &str) -> String {
    let path = PathBuf::from(dir).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

const CORPUS: &[&str] = &[
    "--queries",
    "4",
    "--docs",
    "4",
    "--size",
    "48",
    "--seed",
    "7",
];

const RUN_ID: &str = "fleet-s7-q4x4-z48";

fn run_fleet(extra: &[&str], dir: &str) -> String {
    let out = qa_fleet(&[CORPUS, extra, &["--out-dir", dir]].concat());
    assert!(
        out.status.success(),
        "qa-fleet {extra:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    read(dir, "events.jsonl")
}

#[test]
fn events_identity_is_byte_identical_across_jobs_and_mesh() {
    let baseline = run_fleet(&["--jobs", "1"], &tmp("lens-j1"));
    let base_identity = identity_projection(&baseline).expect("baseline parses");
    assert!(!base_identity.is_empty());
    for (label, extra) in [
        ("--jobs 4", &["--jobs", "4"] as &[&str]),
        ("--mesh 1", &["--mesh", "1"]),
        ("--mesh 2", &["--mesh", "2"]),
    ] {
        let dir = tmp(&format!("lens-{}", label.replace([' ', '-'], "")));
        let jsonl = run_fleet(extra, &dir);
        assert_eq!(
            identity_projection(&jsonl).expect("events parse"),
            base_identity,
            "identity projection for {label} diverged from --jobs 1"
        );
    }
}

#[test]
fn events_lines_are_in_job_order_with_derived_trace_ids() {
    let jsonl = run_fleet(&["--jobs", "4"], &tmp("lens-order"));
    let events = parse_events(&jsonl).expect("events parse");
    assert_eq!(events.len(), 16, "one event per (query, doc) job");
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.job, i, "events.jsonl is written in global job order");
        assert_eq!(ev.run, RUN_ID);
        let ctx = TraceContext::mint(RUN_ID, ev.job);
        assert_eq!(ev.trace, ctx.trace_hex(), "job {i} trace id is derived");
        assert_eq!(ev.span, ctx.span_hex(), "job {i} span id is derived");
        assert_eq!(ev.worker, "local");
        assert_eq!(ev.shard, "0/1");
        assert_eq!(ev.outcome, "ok");
        assert!(ev.steps > 0, "job {i} did work");
        assert!(ev.doc_nodes > 0);
    }
}

#[test]
fn mesh_events_carry_worker_placement_in_the_volatile_tail() {
    let jsonl = run_fleet(&["--mesh", "2"], &tmp("lens-placement"));
    let events = parse_events(&jsonl).expect("mesh events parse");
    assert_eq!(events.len(), 16);
    // Round-robin dealing: even jobs on shard 0, odd jobs on shard 1.
    for ev in &events {
        let expect_worker = if ev.job % 2 == 0 { "w0" } else { "w1" };
        assert_eq!(ev.worker, expect_worker, "job {}", ev.job);
        assert_eq!(ev.shard, format!("{}/2", ev.job % 2), "job {}", ev.job);
    }
}

/// The assembled fleet timeline: parses as Chrome trace JSON, names every
/// worker process, and its span tree covers every job from every worker.
#[test]
fn fleet_trace_covers_every_job_from_every_worker() {
    let dir = tmp("lens-trace");
    run_fleet(&["--mesh", "2"], &dir);
    let trace = read(&dir, "fleet-trace.json");
    let v = json::parse(&trace).expect("fleet trace is valid JSON");
    assert_eq!(
        v.get("otherData")
            .and_then(|d| d.get("run_id"))
            .and_then(Value::as_str),
        Some(RUN_ID)
    );
    let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();

    // Metadata names both worker processes.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
        })
        .collect();
    assert_eq!(process_names, vec!["w0", "w1"], "{trace}");

    // Every job appears exactly once as a span, with its derived ids.
    let mut jobs: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            let args = e.get("args").expect("span args");
            let job = args.get("job").and_then(Value::as_u64).expect("job arg");
            let ctx = TraceContext::mint(RUN_ID, job as usize);
            assert_eq!(
                args.get("trace").and_then(Value::as_str),
                Some(ctx.trace_hex().as_str()),
                "job {job}"
            );
            assert!(
                e.get("dur").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0,
                "job {job} span has visible duration"
            );
            job
        })
        .collect();
    jobs.sort_unstable();
    assert_eq!(jobs, (0..16).collect::<Vec<u64>>(), "{trace}");

    // The in-process fleet writes the same timeline shape with one
    // "local" process.
    let solo_dir = tmp("lens-trace-solo");
    run_fleet(&[], &solo_dir);
    let solo = json::parse(&read(&solo_dir, "fleet-trace.json")).expect("solo trace parses");
    let solo_events = solo.get("traceEvents").and_then(Value::as_arr).unwrap();
    let solo_spans = solo_events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    assert_eq!(solo_spans, 16);
    assert!(
        solo_events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("process_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some("local")
        }),
        "in-process timeline names its single process"
    );
}
