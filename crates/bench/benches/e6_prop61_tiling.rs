//! E6 (Proposition 6.1): the corridor-tiling reduction — construction cost
//! of the strategy-tree automaton and the direct game solve, vs corridor
//! width (both exponential in width; the reduction itself is cheap per
//! state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn instance(width: usize) -> qa_decision::tiling::TilingInstance {
    qa_decision::tiling::TilingInstance {
        num_tiles: 3,
        horizontal: (0..3).flat_map(|a| (0..3).map(move |b| (a, b))).collect(),
        vertical: vec![(0, 1), (1, 2), (2, 2)],
        bottom: vec![0; width],
        top: vec![2; width],
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_prop61_tiling");
    for width in [1usize, 2, 3] {
        let inst = instance(width);
        group.bench_with_input(BenchmarkId::new("solve_game", width), &inst, |b, inst| {
            b.iter(|| qa_decision::tiling::solve_game(inst).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("build_automaton", width),
            &inst,
            |b, inst| {
                b.iter(|| {
                    qa_decision::tiling::to_tree_automaton(inst)
                        .unwrap()
                        .num_states()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
