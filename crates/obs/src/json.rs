//! Minimal hand-rolled JSON writer and reader.
//!
//! The sandbox has no crates.io access, so run reports are serialized with
//! this small helper instead of serde. The writer half emits reports; the
//! [`parse`] half reads them back for the trace-diff tooling and the
//! `bench_obs --check` regression gate.

/// Append `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object: handles comma placement and key
/// escaping, so call sites read as a flat list of `field` calls.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Open an object (`{`) on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str(self.out, key);
        self.out.push(':');
    }

    /// `"key": 123`
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// `"key": 1.25` (written with enough precision to round-trip).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// `"key": true`
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// `"key": "escaped value"`
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_str(self.out, value);
    }

    /// `"key": <value>` where `value` is already-serialized JSON.
    pub fn field_raw(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push_str(value);
    }

    /// `"key": [1, 2, 3]`
    pub fn field_u64_array(&mut self, key: &str, values: impl IntoIterator<Item = u64>) {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
    }

    /// Close the object (`}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Serialize a whole object in one expression.
pub fn object(build: impl FnOnce(&mut ObjectWriter)) -> String {
    let mut out = String::new();
    let mut w = ObjectWriter::new(&mut out);
    build(&mut w);
    w.finish();
    out
}

/// Serialize a JSON array from already-serialized element strings.
pub fn array(elems: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elems.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

/// A parsed JSON document.
///
/// Objects keep their key order (a `Vec` of pairs, not a map) so diff
/// tooling can report fields in the order the producer wrote them; numbers
/// are kept as `f64`, which is exact for the `u64` counters the workspace
/// emits up to 2^53 — far beyond any step count a bounded run produces.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse failure: byte offset into the input plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u16::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(digits)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one slice to keep the common
            // case (no escapes) cheap.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    0x10000 + ((hi as u32 - 0xd800) << 10) + (lo as u32 - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn escapes_every_c0_control_char() {
        for cp in 0u32..0x20 {
            let c = char::from_u32(cp).unwrap();
            let mut out = String::new();
            push_str(&mut out, &c.to_string());
            assert!(
                !out[1..out.len() - 1].contains(c) || matches!(c, '\n' | '\r' | '\t'),
                "U+{cp:04X} must not appear raw"
            );
            // Whatever form was chosen, the writer's output must parse back
            // to the original character.
            assert_eq!(parse(&out).unwrap(), Value::Str(c.to_string()));
        }
    }

    #[test]
    fn delete_char_passes_through_unescaped() {
        // RFC 8259 only requires escaping below U+0020; U+007F may appear raw.
        let mut out = String::new();
        push_str(&mut out, "a\u{7f}b");
        assert_eq!(out, "\"a\u{7f}b\"");
        assert_eq!(parse(&out).unwrap(), Value::Str("a\u{7f}b".into()));
    }

    #[test]
    fn non_bmp_chars_pass_through_as_utf8() {
        // U+1D11E (𝄞) and an emoji stay raw UTF-8 — no surrogate escapes.
        let s = "clef \u{1d11e} ok \u{1f600}";
        let mut out = String::new();
        push_str(&mut out, s);
        assert_eq!(out, format!("\"{s}\""));
        assert_eq!(parse(&out).unwrap(), Value::Str(s.into()));
        // But the parser also accepts the surrogate-pair spelling.
        assert_eq!(
            parse("\"\\ud834\\udd1e\"").unwrap(),
            Value::Str("\u{1d11e}".into())
        );
    }

    #[test]
    fn parser_rejects_malformed_strings() {
        assert!(parse("\"\u{1}\"").is_err(), "raw control char");
        assert!(parse(r#""\ud834""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\udd1e""#).is_err(), "unpaired low surrogate");
        assert!(parse(r#""\x""#).is_err(), "unknown escape");
        assert!(parse("\"abc").is_err(), "unterminated");
    }

    #[test]
    fn parses_scalars_and_structure() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        let v = parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        assert!(parse("[1,2] x").is_err(), "trailing garbage");
        assert!(parse("[1,]").is_err(), "trailing comma");
    }

    #[test]
    fn writer_output_parses_back() {
        let written = object(|w| {
            w.field_u64("count", 42);
            w.field_f64("mean", 2.5);
            w.field_bool("truncated", false);
            w.field_str("name", "run \"x\"\n");
            w.field_u64_array("buckets", [0, 1, 2]);
        });
        let v = parse(&written).unwrap();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("truncated"), Some(&Value::Bool(false)));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("run \"x\"\n"));
        assert_eq!(
            v.get("buckets").and_then(Value::as_arr).map(|a| a.len()),
            Some(3)
        );
        // Key order is preserved for diff-friendly reporting.
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["count", "mean", "truncated", "name", "buckets"]);
    }

    #[test]
    fn object_writer_places_commas() {
        let s = object(|w| {
            w.field_u64("a", 1);
            w.field_str("b", "x");
            w.field_bool("c", false);
            w.field_u64_array("d", [1, 2]);
        });
        assert_eq!(s, r#"{"a":1,"b":"x","c":false,"d":[1,2]}"#);
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        let s = object(|w| {
            w.field_f64("x", 1.5);
            w.field_f64("y", f64::NAN);
        });
        assert_eq!(s, r#"{"x":1.5,"y":null}"#);
    }

    #[test]
    fn array_joins_elements() {
        assert_eq!(array(["1".to_string(), "{}".to_string()]), "[1,{}]");
        assert_eq!(array(std::iter::empty()), "[]");
    }
}
