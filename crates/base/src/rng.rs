//! Deterministic pseudo-random numbers for tests, generators and benches.
//!
//! The sandbox has no crates.io access, so the workspace carries its own
//! small PRNG instead of depending on `rand`. The API mirrors the subset of
//! `rand` the workspace uses (`StdRng::seed_from_u64`, [`Rng::gen_range`],
//! [`Rng::gen_bool`]), which kept the port to it a one-line import swap.
//!
//! The generator is splitmix64 — statistically fine for randomized testing
//! and tree generation, **not** cryptographic. Same seed, same platform or
//! not: the sequence is identical, so failures reproduce.

use std::ops::{Range, RangeInclusive};

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Inclusive lower bound.
    fn low(&self) -> usize;
    /// Inclusive upper bound.
    fn high_inclusive(&self) -> usize;
}

impl SampleRange for Range<usize> {
    fn low(&self) -> usize {
        self.start
    }
    fn high_inclusive(&self) -> usize {
        assert!(self.end > self.start, "gen_range on empty range");
        self.end - 1
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn low(&self) -> usize {
        *self.start()
    }
    fn high_inclusive(&self) -> usize {
        assert!(self.end() >= self.start(), "gen_range on empty range");
        *self.end()
    }
}

/// Source of pseudo-random numbers.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`0..n` or `lo..=hi`). Panics on an
    /// empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        let lo = range.low() as u64;
        let hi = range.high_inclusive() as u64;
        let width = hi - lo + 1; // never 0: usize range with hi >= lo
        (lo + self.next_u64() % width) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The workspace's standard deterministic generator (splitmix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Generator whose entire sequence is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
            let w = rng.gen_range(3..=4);
            assert!((3..=4).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..7 should appear");
        assert_eq!(rng.gen_range(9..10), 9);
        assert_eq!(rng.gen_range(0..=0), 0);
    }

    #[test]
    fn gen_bool_respects_extremes_and_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_mut_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        fn take<R: Rng>(mut r: R) -> usize {
            r.gen_range(0..10)
        }
        let v = take(&mut rng);
        assert!(v < 10);
    }
}
