//! Regular expressions: AST, parsers and the Thompson construction.

use qa_base::{Alphabet, Error, Result, Symbol};

use crate::Nfa;

/// A regular-expression AST over interned symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// ∅ — the empty language.
    Empty,
    /// ε — the language containing only the empty word.
    Epsilon,
    /// A single symbol.
    Sym(Symbol),
    /// Concatenation `r s`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `r | s`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// `r s` (with ∅/ε simplification).
    pub fn concat(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Box::new(a), Box::new(b)),
        }
    }

    /// `r | s` (with ∅ simplification).
    pub fn alt(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) => Regex::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// `r*` (with ∅/ε simplification).
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            r => Regex::Star(Box::new(r)),
        }
    }

    /// `r+` = `r r*`.
    pub fn plus(self) -> Regex {
        self.clone().concat(self.star())
    }

    /// `r?` = `r | ε`.
    pub fn opt(self) -> Regex {
        Regex::Epsilon.alt(self)
    }

    /// Concatenation of a sequence of regexes.
    pub fn seq<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts
            .into_iter()
            .fold(Regex::Epsilon, |acc, r| acc.concat(r))
    }

    /// Alternation of a sequence of regexes (∅ if empty).
    pub fn any<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts.into_iter().fold(Regex::Empty, |acc, r| acc.alt(r))
    }

    /// The literal word `w`.
    pub fn literal(word: &[Symbol]) -> Regex {
        Regex::seq(word.iter().map(|&s| Regex::Sym(s)))
    }

    /// Compile to an ε-NFA via the Thompson construction.
    pub fn to_nfa(&self, alphabet_len: usize) -> Nfa {
        let mut nfa = Nfa::new(alphabet_len);
        let (start, end) = thompson(self, &mut nfa);
        nfa.set_initial(start);
        nfa.set_accepting(end, true);
        nfa
    }

    /// Whether the regex matches `word` (compiles on the fly; for repeated
    /// matching compile once with [`Regex::to_nfa`]).
    pub fn matches(&self, alphabet_len: usize, word: &[Symbol]) -> bool {
        self.to_nfa(alphabet_len).accepts(word)
    }

    /// Whether ε is in the language (computed syntactically).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Render using an alphabet for symbol names.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        fn go(r: &Regex, a: &Alphabet, prec: u8, out: &mut String) {
            match r {
                Regex::Empty => out.push('∅'),
                Regex::Epsilon => out.push('ε'),
                Regex::Sym(s) => {
                    let name = a.name(*s);
                    if name.chars().count() > 1 {
                        out.push_str(name);
                        out.push(' ');
                    } else {
                        out.push_str(name);
                    }
                }
                Regex::Concat(x, y) => {
                    let wrap = prec > 1;
                    if wrap {
                        out.push('(');
                    }
                    go(x, a, 1, out);
                    go(y, a, 1, out);
                    if wrap {
                        out.push(')');
                    }
                }
                Regex::Alt(x, y) => {
                    let wrap = prec > 0;
                    if wrap {
                        out.push('(');
                    }
                    go(x, a, 0, out);
                    out.push('|');
                    go(y, a, 0, out);
                    if wrap {
                        out.push(')');
                    }
                }
                Regex::Star(x) => {
                    go(x, a, 2, out);
                    out.push('*');
                }
            }
        }
        let mut s = String::new();
        go(self, alphabet, 0, &mut s);
        s
    }
}

/// Thompson construction fragment: returns `(start, end)` state of the
/// sub-NFA for `r` added into `nfa`.
fn thompson(r: &Regex, nfa: &mut Nfa) -> (crate::StateId, crate::StateId) {
    match r {
        Regex::Empty => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            (s, e)
        }
        Regex::Epsilon => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(s, e);
            (s, e)
        }
        Regex::Sym(sym) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_transition(s, *sym, e);
            (s, e)
        }
        Regex::Concat(a, b) => {
            let (sa, ea) = thompson(a, nfa);
            let (sb, eb) = thompson(b, nfa);
            nfa.add_epsilon(ea, sb);
            (sa, eb)
        }
        Regex::Alt(a, b) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (sa, ea) = thompson(a, nfa);
            let (sb, eb) = thompson(b, nfa);
            nfa.add_epsilon(s, sa);
            nfa.add_epsilon(s, sb);
            nfa.add_epsilon(ea, e);
            nfa.add_epsilon(eb, e);
            (s, e)
        }
        Regex::Star(a) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (sa, ea) = thompson(a, nfa);
            nfa.add_epsilon(s, sa);
            nfa.add_epsilon(s, e);
            nfa.add_epsilon(ea, sa);
            nfa.add_epsilon(ea, e);
            (s, e)
        }
    }
}

/// Token of the regex surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Sym(Symbol),
    LParen,
    RParen,
    Alt,
    Star,
    Plus,
    Opt,
    Epsilon,
    Empty,
}

/// Parse a character-level regex: every non-operator character is a symbol.
///
/// Operators: `|`, `*`, `+`, `?`, `(`, `)`; `€`/`_e` are not special —
/// use `~` for ε and `!` for ∅. Whitespace is ignored. New characters are
/// interned into `alphabet`.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_strings::regex::parse_chars;
/// let mut sigma = Alphabet::new();
/// let r = parse_chars("(a|b)*abb", &mut sigma).unwrap();
/// let n = r.to_nfa(sigma.len());
/// assert!(n.accepts(&sigma.word("aabb")));
/// assert!(!n.accepts(&sigma.word("ab")));
/// ```
pub fn parse_chars(input: &str, alphabet: &mut Alphabet) -> Result<Regex> {
    let mut toks = Vec::new();
    for c in input.chars() {
        if c.is_whitespace() {
            continue;
        }
        toks.push(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '|' => Tok::Alt,
            '*' => Tok::Star,
            '+' => Tok::Plus,
            '?' => Tok::Opt,
            '~' => Tok::Epsilon,
            '!' => Tok::Empty,
            _ => Tok::Sym(alphabet.intern(&c.to_string())),
        });
    }
    parse_tokens_inner(&toks, input)
}

/// Parse a token-level regex: identifiers (`[A-Za-z0-9_#-]+`) are symbols,
/// separated by whitespace or operators. `~` is ε, `!` is ∅.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_strings::regex::parse_tokens;
/// let mut sigma = Alphabet::new();
/// let r = parse_tokens("author+ title (journal | publisher) year", &mut sigma).unwrap();
/// let n = r.to_nfa(sigma.len());
/// let w: Vec<_> = ["author", "author", "title", "journal", "year"]
///     .iter().map(|s| sigma.symbol(s)).collect();
/// assert!(n.accepts(&w));
/// ```
pub fn parse_tokens(input: &str, alphabet: &mut Alphabet) -> Result<Regex> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        match c {
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '|' => {
                chars.next();
                toks.push(Tok::Alt);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '+' => {
                chars.next();
                toks.push(Tok::Plus);
            }
            '?' => {
                chars.next();
                toks.push(Tok::Opt);
            }
            '~' => {
                chars.next();
                toks.push(Tok::Epsilon);
            }
            '!' => {
                chars.next();
                toks.push(Tok::Empty);
            }
            _ if c.is_alphanumeric() || c == '_' || c == '#' || c == '-' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '#' || c == '-' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Sym(alphabet.intern(&name)));
            }
            _ => {
                return Err(Error::parse(
                    "regex",
                    format!("unexpected character `{c}` in `{input}`"),
                ))
            }
        }
    }
    parse_tokens_inner(&toks, input)
}

/// Recursive-descent parser over tokens. Grammar:
/// `alt := cat ('|' cat)*` ; `cat := post+` ; `post := atom ('*'|'+'|'?')*`.
fn parse_tokens_inner(toks: &[Tok], input: &str) -> Result<Regex> {
    struct P<'a> {
        toks: &'a [Tok],
        pos: usize,
        input: &'a str,
    }
    impl<'a> P<'a> {
        fn peek(&self) -> Option<&Tok> {
            self.toks.get(self.pos)
        }
        fn err(&self, msg: &str) -> Error {
            Error::parse(
                "regex",
                format!("{msg} at token {} in `{}`", self.pos, self.input),
            )
        }
        fn alt(&mut self) -> Result<Regex> {
            let mut r = self.cat()?;
            while self.peek() == Some(&Tok::Alt) {
                self.pos += 1;
                r = r.alt(self.cat()?);
            }
            Ok(r)
        }
        fn cat(&mut self) -> Result<Regex> {
            let mut r = self.post()?;
            while matches!(
                self.peek(),
                Some(Tok::Sym(_)) | Some(Tok::LParen) | Some(Tok::Epsilon) | Some(Tok::Empty)
            ) {
                r = r.concat(self.post()?);
            }
            Ok(r)
        }
        fn post(&mut self) -> Result<Regex> {
            let mut r = self.atom()?;
            loop {
                match self.peek() {
                    Some(Tok::Star) => {
                        self.pos += 1;
                        r = r.star();
                    }
                    Some(Tok::Plus) => {
                        self.pos += 1;
                        r = r.plus();
                    }
                    Some(Tok::Opt) => {
                        self.pos += 1;
                        r = r.opt();
                    }
                    _ => break,
                }
            }
            Ok(r)
        }
        fn atom(&mut self) -> Result<Regex> {
            match self.peek() {
                Some(Tok::Sym(s)) => {
                    let s = *s;
                    self.pos += 1;
                    Ok(Regex::Sym(s))
                }
                Some(Tok::Epsilon) => {
                    self.pos += 1;
                    Ok(Regex::Epsilon)
                }
                Some(Tok::Empty) => {
                    self.pos += 1;
                    Ok(Regex::Empty)
                }
                Some(Tok::LParen) => {
                    self.pos += 1;
                    let r = self.alt()?;
                    if self.peek() != Some(&Tok::RParen) {
                        return Err(self.err("expected `)`"));
                    }
                    self.pos += 1;
                    Ok(r)
                }
                other => Err(self.err(&format!("expected atom, found {other:?}"))),
            }
        }
    }
    if toks.is_empty() {
        return Ok(Regex::Epsilon);
    }
    let mut p = P {
        toks,
        pos: 0,
        input,
    };
    let r = p.alt()?;
    if p.pos != toks.len() {
        return Err(p.err("trailing tokens"));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_regex_matches() {
        let mut a = Alphabet::new();
        let r = parse_chars("(a|b)*abb", &mut a).unwrap();
        let nfa = r.to_nfa(a.len());
        assert!(nfa.accepts(&a.word("abb")));
        assert!(nfa.accepts(&a.word("babb")));
        assert!(nfa.accepts(&a.word("ababb")));
        assert!(!nfa.accepts(&a.word("ab")));
        assert!(!nfa.accepts(&a.word("abba")));
    }

    #[test]
    fn plus_and_opt() {
        let mut a = Alphabet::new();
        let r = parse_chars("a+b?", &mut a).unwrap();
        let nfa = r.to_nfa(a.len());
        assert!(nfa.accepts(&a.word("a")));
        assert!(nfa.accepts(&a.word("aaab")));
        assert!(!nfa.accepts(&a.word("")));
        assert!(!nfa.accepts(&a.word("b")));
        assert!(!nfa.accepts(&a.word("abb")));
    }

    #[test]
    fn epsilon_and_empty_atoms() {
        let mut a = Alphabet::new();
        let r = parse_chars("~|a", &mut a).unwrap();
        let nfa = r.to_nfa(a.len());
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&a.word("a")));
        let r = parse_chars("!a", &mut a).unwrap();
        assert_eq!(r, Regex::Empty);
    }

    #[test]
    fn empty_input_is_epsilon() {
        let mut a = Alphabet::new();
        assert_eq!(parse_chars("", &mut a).unwrap(), Regex::Epsilon);
    }

    #[test]
    fn parse_errors() {
        let mut a = Alphabet::new();
        assert!(parse_chars("(a", &mut a).is_err());
        assert!(parse_chars("a)", &mut a).is_err());
        assert!(parse_chars("*", &mut a).is_err());
        assert!(parse_tokens("a $ b", &mut a).is_err());
    }

    #[test]
    fn token_regex_with_identifiers() {
        let mut a = Alphabet::new();
        let r = parse_tokens("(book | article)+", &mut a).unwrap();
        let nfa = r.to_nfa(a.len());
        let book = a.symbol("book");
        let article = a.symbol("article");
        assert!(nfa.accepts(&[book]));
        assert!(nfa.accepts(&[article, book, book]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn nullable_is_syntactic_epsilon_check() {
        let mut a = Alphabet::new();
        assert!(parse_chars("a*", &mut a).unwrap().nullable());
        assert!(parse_chars("a?b*", &mut a).unwrap().nullable());
        assert!(!parse_chars("a|bb", &mut a).unwrap().nullable());
    }

    #[test]
    fn builders_simplify() {
        let mut a = Alphabet::new();
        let s = Regex::Sym(a.intern("a"));
        assert_eq!(Regex::Empty.concat(s.clone()), Regex::Empty);
        assert_eq!(Regex::Epsilon.concat(s.clone()), s);
        assert_eq!(Regex::Empty.alt(s.clone()), s);
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(s.clone().star().star(), s.clone().star());
    }

    #[test]
    fn render_round_trips_through_parser() {
        let mut a = Alphabet::new();
        let r = parse_chars("(a|b)*c+", &mut a).unwrap();
        let rendered = r.render(&a);
        let mut a2 = a.clone();
        let r2 = parse_chars(&rendered, &mut a2).unwrap();
        // language equality via NFA equivalence
        assert!(crate::ops::nfa_equivalent(
            &r.to_nfa(a.len()),
            &r2.to_nfa(a.len())
        ));
    }

    #[test]
    fn literal_builder() {
        let mut a = Alphabet::new();
        let w = a.intern_str("xyz");
        let r = Regex::literal(&w);
        assert!(r.matches(a.len(), &w));
        assert!(!r.matches(a.len(), &w[..2]));
    }
}
