//! End-to-end test of the counting allocator: this test binary actually
//! installs [`CountingAlloc`] as its global allocator (the one place in
//! the workspace that does so unconditionally), so the tallies here come
//! from real heap traffic.

use qa_obs::Observer;
use qa_pulse::{CountingAlloc, HeapStats, SpanProfiler, Weight};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn installed_allocator_counts_real_traffic() {
    let before = HeapStats::snapshot();
    let v: Vec<u8> = vec![7; 1 << 16];
    let mid = HeapStats::snapshot();
    drop(v);
    let after = HeapStats::snapshot();

    assert!(mid.enabled(), "allocator is installed");
    assert!(
        mid.allocated_bytes - before.allocated_bytes >= 1 << 16,
        "the 64 KiB buffer is visible in the monotone total"
    );
    assert!(mid.live_bytes >= before.live_bytes + (1 << 16));
    assert!(after.frees > before.frees);
    assert!(after.peak_bytes >= mid.live_bytes.min(mid.peak_bytes));
}

#[test]
fn heap_gauges_appear_on_the_scrape_when_accounting_is_live() {
    let text = qa_pulse::metrics_text(&qa_obs::Metrics::new(), "qa_alloc_test");
    for name in [
        "qa_heap_live_bytes",
        "qa_heap_peak_bytes",
        "qa_heap_allocated_bytes",
        "qa_heap_allocs",
        "qa_heap_frees",
    ] {
        assert!(text.contains(&format!("# TYPE {name} gauge")), "{name}");
    }
    qa_pulse::validate_prometheus(&text).expect("well-formed exposition");
}

#[test]
fn span_profiler_attributes_alloc_bytes_to_phases() {
    let mut p = SpanProfiler::new();
    p.phase_start("alloc heavy phase");
    let buf: Vec<u8> = vec![1; 1 << 20];
    p.phase_end("alloc heavy phase");
    drop(buf);

    let folded = p.into_profile().to_collapsed(Weight::AllocBytes);
    let line = folded
        .lines()
        .find(|l| l.starts_with("alloc_heavy_phase "))
        .expect("phase appears in alloc-weighted profile");
    let bytes: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
    assert!(
        bytes >= 1 << 20,
        "phase charged at least the 1 MiB it allocated: {line}"
    );
}
