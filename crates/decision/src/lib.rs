//! # qa-decision
//!
//! Section 6 of *Query Automata*: non-emptiness, containment and
//! equivalence of query automata.
//!
//! - [`string_decisions`]: **exact** procedures for string query automata,
//!   via the crossing-sequence selection NFAs of `qa-twoway` — the marked
//!   alphabet plays the role of Theorem 6.3's `Σ × {1}` labels.
//! - [`ranked_decisions`]: **exact** procedures for ranked query automata —
//!   the Theorem 6.3 construction adapted to ranked cut semantics: a lazy
//!   fixpoint over realizable *subtree summaries* (label, behavior function,
//!   mark/selection flags), i.e. the `(f, d, s, σ)` states of the paper's
//!   bottom-up automaton `B`, materialized only as reached.
//! - [`bounded`]: a bounded-enumeration oracle (search all trees up to a
//!   size/width budget) — the baseline the exact procedures are
//!   property-tested against, and the documented fallback for unranked
//!   query automata with arbitrary stay rules (see DESIGN.md §2).
//! - [`tiling`]: Proposition 6.1 — TWO PERSON CORRIDOR TILING reduced to
//!   2DTAʳ non-emptiness; the generator of EXPTIME-hard instances used by
//!   the benchmark harness.

pub mod bounded;
pub mod ranked_decisions;
pub mod string_decisions;
pub mod tiling;
