//! Deterministic job-order replay: the authoritative alert log.
//!
//! The live scrape loop runs on wall clock, so what it sees depends on
//! scheduling — fine for ops dashboards, useless for a reproducible exit
//! code. The replay path instead drives the sentinel with one logical tick
//! per completed job, in global job order, from each job's exact counters.
//! The same fleet seed therefore produces the same cumulative series, the
//! same rule verdicts and the same transition log whatever `--jobs` or
//! `--mesh` topology executed the batch — and `qa-trace analyze slo` can
//! reproduce the log offline from `events.jsonl` alone.

use std::collections::BTreeMap;

use crate::engine::{AlertEngine, Transition};
use crate::rules::AlertRule;
use crate::store::{SeriesKey, SeriesStore};

/// Per-job counters, as carried by one `events.jsonl` line.
///
/// Both replay call sites — the fleet binary (from its in-memory outcomes)
/// and `qa-trace analyze slo` (from a parsed events file) — build this
/// struct, so the mapping from job facts to series increments lives in
/// exactly one place.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobStats {
    /// Engine steps the job consumed.
    pub steps: u64,
    /// Two-way head reversals.
    pub reversals: u64,
    /// Behavior-cache hits.
    pub cache_hits: u64,
    /// Behavior-cache misses.
    pub cache_misses: u64,
    /// Watchdog budget trips (0 on a clean run).
    pub budget_trips: u64,
}

/// One replayed counter family: exposition-name suffix plus the
/// [`JobStats`] field it accumulates.
type Family = (&'static str, fn(&JobStats) -> u64);

/// The counter families a replay maintains, as `(suffix, extractor)`.
/// Family names match the live exposition (`<prefix>_<suffix>`), so one
/// rules file works against both the scrape loop and the replay.
const FAMILIES: [Family; 6] = [
    ("jobs_total", |_| 1),
    ("steps_total", |s| s.steps),
    ("head_reversals_total", |s| s.reversals),
    ("cache_hits_total", |s| s.cache_hits),
    ("cache_misses_total", |s| s.cache_misses),
    ("budget_trips_total", |s| s.budget_trips),
];

/// Replays a job stream through a [`SeriesStore`] + [`AlertEngine`] pair,
/// one logical tick per job.
#[derive(Debug)]
pub struct Replay {
    store: SeriesStore,
    engine: AlertEngine,
    totals: BTreeMap<String, u64>,
    prefix: String,
    tick: u64,
}

impl Replay {
    /// Ring capacity of the replay store: enough for any sane slow window.
    pub const CAPACITY: usize = 256;

    /// Replay evaluating `rules`, emitting series under `prefix`
    /// (`qa_fleet` in the fleet binary).
    pub fn new(rules: Vec<AlertRule>, prefix: &str) -> Replay {
        let totals = FAMILIES
            .iter()
            .map(|(suffix, _)| (format!("{prefix}_{suffix}"), 0u64))
            .collect();
        Replay {
            store: SeriesStore::new(Self::CAPACITY),
            engine: AlertEngine::new(rules),
            totals,
            prefix: prefix.to_string(),
            tick: 0,
        }
    }

    /// Account one completed job (tick `n` for the `n`-th call) and
    /// evaluate every rule. Returns the transitions taken this tick.
    pub fn observe_job(&mut self, stats: &JobStats) -> Vec<Transition> {
        self.tick += 1;
        // Accumulate, then append every family so absence rules see a
        // fresh sample per tick.
        for (suffix, extract) in FAMILIES {
            let name = format!("{}_{suffix}", self.prefix);
            let total = self.totals.get_mut(&name).expect("family initialized");
            *total += extract(stats);
            let v = *total as f64;
            self.store.append(SeriesKey::new(&name, []), self.tick, v);
        }
        self.engine.eval(&self.store, self.tick)
    }

    /// Ticks replayed so far (= jobs observed).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The engine, for log rendering and firing queries.
    pub fn engine(&self) -> &AlertEngine {
        &self.engine
    }

    /// The store, for series inspection.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::parse_rules;

    fn clean_job() -> JobStats {
        JobStats {
            steps: 100,
            reversals: 3,
            cache_hits: 5,
            cache_misses: 2,
            budget_trips: 0,
        }
    }

    fn tripped_job() -> JobStats {
        JobStats {
            budget_trips: 1,
            ..clean_job()
        }
    }

    const BURN_RULE: &str = "alert error-budget-burn burnrate \
        qa_fleet_budget_trips_total / qa_fleet_jobs_total \
        objective 0.001 fast 5 slow 60 for 2\n";

    #[test]
    fn clean_stream_never_alerts() {
        let mut r = Replay::new(parse_rules(BURN_RULE).unwrap(), "qa_fleet");
        for _ in 0..100 {
            assert!(r.observe_job(&clean_job()).is_empty());
        }
        assert!(r.engine().firing().is_empty());
        assert_eq!(r.tick(), 100);
    }

    #[test]
    fn tripped_stream_fires_and_recovery_resolves() {
        let mut r = Replay::new(parse_rules(BURN_RULE).unwrap(), "qa_fleet");
        for _ in 0..10 {
            r.observe_job(&clean_job());
        }
        // A run of budget trips: every job burns 1000x the 0.1% objective.
        let mut fired = false;
        for _ in 0..10 {
            let t = r.observe_job(&tripped_job());
            fired |= t.iter().any(|t| t.to == "firing");
        }
        assert!(fired, "burn rate must fire during the trip streak");
        assert_eq!(r.engine().firing(), vec!["error-budget-burn"]);
        // Recovery: trips stop; once the fast window is clean the alert
        // resolves (the slow window alone cannot hold it firing).
        let mut resolved = false;
        for _ in 0..10 {
            let t = r.observe_job(&clean_job());
            resolved |= t.iter().any(|t| t.from == "firing" && t.to == "inactive");
        }
        assert!(resolved, "alert must resolve after recovery");
        assert!(r.engine().firing().is_empty());
    }

    #[test]
    fn replay_is_deterministic_per_stream() {
        let stream: Vec<JobStats> = (0..50)
            .map(|i| {
                if i % 7 == 0 {
                    tripped_job()
                } else {
                    clean_job()
                }
            })
            .collect();
        let run = || {
            let mut r = Replay::new(parse_rules(BURN_RULE).unwrap(), "qa_fleet");
            for s in &stream {
                r.observe_job(s);
            }
            r.engine().render_log()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn families_cover_the_replayable_counters() {
        let mut r = Replay::new(Vec::new(), "qa_fleet");
        r.observe_job(&clean_job());
        r.observe_job(&clean_job());
        let key = |n: &str| SeriesKey::new(n, []);
        let s = r.store();
        assert_eq!(s.latest(&key("qa_fleet_jobs_total")), Some((2, 2.0)));
        assert_eq!(s.latest(&key("qa_fleet_steps_total")), Some((2, 200.0)));
        assert_eq!(s.latest(&key("qa_fleet_cache_hits_total")), Some((2, 10.0)));
        assert_eq!(
            s.latest(&key("qa_fleet_budget_trips_total")),
            Some((2, 0.0))
        );
    }
}
