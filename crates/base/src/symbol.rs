//! Interned alphabet symbols.

use std::fmt;

/// An interned symbol of some [`crate::Alphabet`].
///
/// A `Symbol` is a dense index (`0..alphabet.len()`). It is only meaningful
/// relative to the alphabet that produced it; mixing symbols across alphabets
/// is a logic error that the debug assertions in the automata layers try to
/// catch early.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Create a symbol from a raw dense index.
    ///
    /// Prefer [`crate::Alphabet::intern`]; this constructor exists for
    /// automaton layers that enumerate symbols positionally.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("alphabet larger than u32::MAX"))
    }

    /// The dense index of this symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let s = Symbol::from_index(7);
        assert_eq!(s.index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Symbol::from_index(1) < Symbol::from_index(2));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", Symbol::from_index(3)), "s3");
    }
}
