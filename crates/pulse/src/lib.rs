//! # qa-pulse
//!
//! The live operations surface of the workspace: everything the other
//! telemetry crates write to disk *after* a run, served over HTTP *while*
//! it runs.
//!
//! [`qa_obs`] made every engine emit a zero-cost event stream;
//! [`qa_probe`] gave that stream standard export formats; `qa-flight`
//! made it safe to leave on for fleets. All of those surface telemetry
//! post-hoc — `metrics.prom`, Perfetto traces, post-mortem dumps appear
//! when a run finishes. The §6 decision procedures are EXPTIME-complete
//! and fleet runs last minutes, so an operator needs a surface to scrape
//! *during* the run. This crate provides it, with the workspace's zero-dep
//! discipline intact (`std::net` only, hand-rolled HTTP/1.1):
//!
//! - [`PulseServer`] — a tiny HTTP server answering `GET /metrics`
//!   (Prometheus text over a shared [`qa_obs::Metrics`] snapshot, plus
//!   `qa_build_info` and `qa_heap_*` gauges), `GET /healthz` /
//!   `GET /readyz` (liveness vs. readiness), `GET /flight` (JSON dump of a
//!   live flight-recorder ring), and `GET /profile` (collapsed-stack span
//!   profile, flamegraph-ready).
//! - [`SpanProfiler`] — an [`qa_obs::Observer`] that aggregates the
//!   engines' `phase_start`/`phase_end` hooks into a weighted call tree
//!   ([`SpanProfile`]) and emits Brendan-Gregg collapsed-stack format, so
//!   `qa-fleet` runs produce a `profile.folded` you can feed to
//!   `flamegraph.pl` or inferno.
//! - [`CountingAlloc`] — an opt-in counting [`std::alloc::GlobalAlloc`]
//!   wrapper tracking live bytes, peak footprint and allocation counts,
//!   surfaced as `qa_heap_*` gauges; binaries install it behind a feature
//!   (`qa-fleet`/`bench_obs` `alloc-count`), and when it is not installed
//!   every gauge reads zero at zero cost.
//!
//! The shared state behind all endpoints is [`PulseState`]; a fleet binary
//! creates one, hands clones of the `Arc` to its workers (the same
//! [`qa_obs::Metrics::merge`] / slot-lock machinery `qa-par` made
//! thread-safe), and binds a [`PulseServer`] next to the worker pool.
//!
//! The mesh coordinator (`qa-mesh`) runs the *other* side of this
//! conversation, so the crate also ships the scraping half:
//!
//! - [`http_get`] — a std-only blocking HTTP/1.1 client with explicit
//!   connect/io deadlines ([`HttpTimeouts`]), exactly big enough to poll
//!   `/healthz` and scrape `/metrics` on loopback. [`http_get_retry`]
//!   wraps it in a bounded, deterministic-backoff [`RetryPolicy`] for
//!   scrapes (liveness polls stay single-shot), counting each retry as
//!   `qa_scrape_retries_total`.
//! - [`parse_prometheus`] — the inverse of the text renderer: a scraped
//!   exposition parses into a [`Scrape`] of [`Sample`]s, and
//!   [`Scrape::to_metrics`] rebuilds a live [`qa_obs::Metrics`] registry
//!   whose re-render round-trips byte-identically. Because
//!   `Metrics::merge` is commutative and associative, merging parsed
//!   worker scrapes federates a fleet into one registry whose exposition
//!   does not depend on how the work was sharded.

#![deny(missing_docs)]

pub mod client;
pub mod heap;
pub mod parse;
pub mod profile;
pub mod render;
pub mod server;

pub use client::{http_get, http_get_retry, http_request, HttpResponse, HttpTimeouts, RetryPolicy};
pub use heap::{CountingAlloc, HeapStats};
pub use parse::{parse_prometheus, Sample, Scrape};
pub use profile::{SpanProfile, SpanProfiler, Weight};
pub use render::{metrics_text, validate_prometheus};
pub use server::{
    AlertsSource, ApiHandler, ApiRequest, ApiResponse, EventsSource, FlightSource, PulseServer,
    PulseState, SeriesSource, DEFAULT_TAIL, MAX_BODY, MAX_TAIL, PROMETHEUS_CONTENT_TYPE,
};
