//! Büchi's theorem, constructive direction (Theorem 2.5): MSO over strings
//! compiles to finite automata.
//!
//! Formulas with free variables are compiled over the *bit-extended*
//! alphabet `Σ × {0,1}ᵏ`: bit `j` encodes membership of the position in
//! variable `j` of the compilation context (innermost quantifier = highest
//! bit, so quantification = projecting the top bit away). Every
//! intermediate automaton accepts only *valid* encodings — each first-order
//! variable's bit set at exactly one position — which makes negation a
//! difference against the validity language. The DFA is minimized after
//! every operation.

use qa_base::{Error, Result, Symbol};
use qa_strings::{Dfa, Nfa, StateId};

use crate::ast::{Formula, Var};

/// Size of the extended alphabet for `k` variables over `sigma` symbols.
#[inline]
pub fn ext_alphabet_len(sigma: usize, k: usize) -> usize {
    sigma << k
}

/// The extended symbol for base symbol `sym` and variable bitmask `mask`.
#[inline]
pub fn ext_symbol(sym: Symbol, mask: usize, sigma: usize) -> Symbol {
    Symbol::from_index(sym.index() + sigma * mask)
}

/// Base symbol of an extended symbol.
#[inline]
pub fn base_symbol(e: Symbol, sigma: usize) -> Symbol {
    Symbol::from_index(e.index() % sigma)
}

/// Variable bitmask of an extended symbol.
#[inline]
pub fn ext_mask(e: Symbol, sigma: usize) -> usize {
    e.index() / sigma
}

/// Encode a word with one marked position over `Σ × {0,1}` — the input
/// format of unary-query automata ([`compile_unary`]).
pub fn mark_word(word: &[Symbol], pos: usize, sigma: usize) -> Vec<Symbol> {
    word.iter()
        .enumerate()
        .map(|(i, &s)| ext_symbol(s, usize::from(i == pos), sigma))
        .collect()
}

/// A compilation context: the in-scope variables, outermost first.
#[derive(Clone, Debug, Default)]
struct Ctx {
    /// `(name, is_set)`; bit `j` of the mask corresponds to entry `j`.
    vars: Vec<(Var, bool)>,
}

impl Ctx {
    fn bit_of(&self, v: &Var) -> Option<(usize, bool)> {
        self.vars
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (name, _))| name == v)
            .map(|(i, (_, is_set))| (i, *is_set))
    }

    fn len(&self) -> usize {
        self.vars.len()
    }
}

/// The validity DFA: every first-order bit set at exactly one position.
fn valid_dfa(sigma: usize, ctx: &Ctx) -> Dfa {
    let k = ctx.len();
    let fo_bits: Vec<usize> = ctx
        .vars
        .iter()
        .enumerate()
        .filter(|(_, (_, is_set))| !is_set)
        .map(|(i, _)| i)
        .collect();
    let ext = ext_alphabet_len(sigma, k);
    let mut d = Dfa::new(ext);
    // states: subsets of fo_bits seen, plus a dead state.
    let nfo = fo_bits.len();
    let states: Vec<StateId> = (0..(1usize << nfo)).map(|_| d.add_state()).collect();
    let dead = d.add_state();
    d.set_initial(states[0]);
    d.set_accepting(states[(1 << nfo) - 1], true);
    for e_idx in 0..ext {
        let e = Symbol::from_index(e_idx);
        let mask = ext_mask(e, sigma);
        // which fo bits does this symbol set?
        let mut setbits = 0usize;
        for (j, &bit) in fo_bits.iter().enumerate() {
            if (mask >> bit) & 1 == 1 {
                setbits |= 1 << j;
            }
        }
        for (seen, &st) in states.iter().enumerate() {
            if seen & setbits != 0 {
                d.set_transition(st, e, dead);
            } else {
                d.set_transition(st, e, states[seen | setbits]);
            }
        }
        d.set_transition(dead, e, dead);
    }
    d
}

/// A *condition* DFA accepting extended words that satisfy a per-position /
/// local predicate, built from a tiny hand-rolled automaton. Used by the
/// atoms; always intersected with validity by the caller.
fn per_position_dfa(sigma: usize, k: usize, ok: impl Fn(Symbol, usize) -> bool) -> Dfa {
    let ext = ext_alphabet_len(sigma, k);
    let mut d = Dfa::new(ext);
    let good = d.add_state();
    let dead = d.add_state();
    d.set_initial(good);
    d.set_accepting(good, true);
    for e_idx in 0..ext {
        let e = Symbol::from_index(e_idx);
        let target = if ok(base_symbol(e, sigma), ext_mask(e, sigma)) {
            good
        } else {
            dead
        };
        d.set_transition(good, e, target);
        d.set_transition(dead, e, dead);
    }
    d
}

fn bit(mask: usize, b: usize) -> bool {
    (mask >> b) & 1 == 1
}

fn compile_inner(f: &Formula, sigma: usize, ctx: &Ctx) -> Result<Dfa> {
    let valid = || valid_dfa(sigma, ctx);
    let k = ctx.len();
    let fo_bit = |v: &Var| -> Result<usize> {
        match ctx.bit_of(v) {
            Some((b, false)) => Ok(b),
            Some((_, true)) => Err(Error::domain(format!(
                "variable `{v}` used as first-order but bound as a set"
            ))),
            None => Err(Error::domain(format!("unbound variable `{v}`"))),
        }
    };
    let set_bit = |v: &Var| -> Result<usize> {
        match ctx.bit_of(v) {
            Some((b, true)) => Ok(b),
            Some((_, false)) => Err(Error::domain(format!(
                "variable `{v}` used as a set but bound first-order"
            ))),
            None => Err(Error::domain(format!("unbound set variable `{v}`"))),
        }
    };
    let out = match f {
        Formula::True => valid(),
        Formula::False => {
            let mut d = Dfa::new(ext_alphabet_len(sigma, k));
            let q = d.add_state();
            d.set_initial(q);
            for e in 0..d.alphabet_len() {
                d.set_transition(q, Symbol::from_index(e), q);
            }
            d
        }
        Formula::Label(x, a) => {
            let b = fo_bit(x)?;
            per_position_dfa(sigma, k, |sym, mask| !bit(mask, b) || sym == *a).intersect(&valid())
        }
        Formula::Eq(x, y) => {
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            per_position_dfa(sigma, k, |_, mask| bit(mask, bx) == bit(mask, by)).intersect(&valid())
        }
        Formula::In(x, s) => {
            let bx = fo_bit(x)?;
            let bs = set_bit(s)?;
            per_position_dfa(sigma, k, |_, mask| !bit(mask, bx) || bit(mask, bs))
                .intersect(&valid())
        }
        Formula::Edge(x, y) => {
            // y = x + 1: after the x-bit position, the very next position
            // carries the y-bit; x-bit must not sit at the last position;
            // a y-bit with no preceding x-bit is ruled out by validity plus
            // the "whenever x then next is y" and "whenever y then prev is
            // x" conditions — encode both directions explicitly.
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            let ext = ext_alphabet_len(sigma, k);
            let mut d = Dfa::new(ext);
            let plain = d.add_state(); // last position had no x-bit
            let afterx = d.add_state(); // last position had the x-bit
            let dead = d.add_state();
            d.set_initial(plain);
            d.set_accepting(plain, true);
            for e_idx in 0..ext {
                let e = Symbol::from_index(e_idx);
                let m = ext_mask(e, sigma);
                let (hx, hy) = (bit(m, bx), bit(m, by));
                // from `plain`: a y-bit here has no x before it → dead
                d.set_transition(
                    plain,
                    e,
                    match (hx, hy) {
                        (_, true) => dead,
                        (true, false) => afterx,
                        (false, false) => plain,
                    },
                );
                // from `afterx`: this position must carry the y-bit
                d.set_transition(
                    afterx,
                    e,
                    match (hx, hy) {
                        (false, true) => plain,
                        // x twice is invalid anyway; y missing → dead
                        _ => dead,
                    },
                );
                d.set_transition(dead, e, dead);
            }
            d.intersect(&valid())
        }
        Formula::Less(x, y) => {
            let bx = fo_bit(x)?;
            let by = fo_bit(y)?;
            let ext = ext_alphabet_len(sigma, k);
            let mut d = Dfa::new(ext);
            let before = d.add_state(); // x not yet seen
            let between = d.add_state(); // x seen, y not yet
            let done = d.add_state(); // both seen in order
            let dead = d.add_state();
            d.set_initial(before);
            d.set_accepting(done, true);
            for e_idx in 0..ext {
                let e = Symbol::from_index(e_idx);
                let m = ext_mask(e, sigma);
                let (hx, hy) = (bit(m, bx), bit(m, by));
                d.set_transition(
                    before,
                    e,
                    match (hx, hy) {
                        (true, false) => between,
                        (false, false) => before,
                        _ => dead, // y first, or same position
                    },
                );
                d.set_transition(
                    between,
                    e,
                    match (hx, hy) {
                        (false, true) => done,
                        (false, false) => between,
                        _ => dead,
                    },
                );
                d.set_transition(done, e, if hx || hy { dead } else { done });
                d.set_transition(dead, e, dead);
            }
            d.intersect(&valid())
        }
        Formula::FirstChild(_, _) | Formula::SecondChild(_, _) | Formula::Chain2(_, _) => {
            return Err(Error::domain(
                "first_child/second_child/chain2 are tree atoms; strings have edge/<",
            ))
        }
        Formula::Not(p) => {
            let a = compile_inner(p, sigma, ctx)?;
            valid().difference(&a)
        }
        Formula::And(p, q) => {
            let a = compile_inner(p, sigma, ctx)?;
            let b = compile_inner(q, sigma, ctx)?;
            a.intersect(&b)
        }
        Formula::Or(p, q) => {
            let a = compile_inner(p, sigma, ctx)?;
            let b = compile_inner(q, sigma, ctx)?;
            a.union(&b)
        }
        Formula::Exists(v, p) => {
            let mut ctx2 = ctx.clone();
            ctx2.vars.push((v.clone(), false));
            let a = compile_inner(p, sigma, &ctx2)?;
            project_top_bit(&a, sigma, ctx2.len())
        }
        Formula::ExistsSet(v, p) => {
            let mut ctx2 = ctx.clone();
            ctx2.vars.push((v.clone(), true));
            let a = compile_inner(p, sigma, &ctx2)?;
            project_top_bit(&a, sigma, ctx2.len())
        }
        Formula::Forall(v, p) => {
            let inner = Formula::Exists(v.clone(), Box::new(Formula::Not(p.clone())));
            let a = compile_inner(&inner, sigma, ctx)?;
            valid().difference(&a)
        }
        Formula::ForallSet(v, p) => {
            let inner = Formula::ExistsSet(v.clone(), Box::new(Formula::Not(p.clone())));
            let a = compile_inner(&inner, sigma, ctx)?;
            valid().difference(&a)
        }
    };
    Ok(out.minimize())
}

/// Project away the top (most recently pushed) variable bit: each extended
/// symbol maps to its counterpart with the bit cleared, nondeterministically
/// merging the two variants, then determinize + minimize.
fn project_top_bit(d: &Dfa, sigma: usize, k_with: usize) -> Dfa {
    let small = ext_alphabet_len(sigma, k_with - 1);
    let top = 1usize << (k_with - 1);
    let mut n = Nfa::new(small);
    for _ in 0..d.num_states() {
        n.add_state();
    }
    for s_idx in 0..d.num_states() {
        let s = StateId::from_index(s_idx);
        n.set_accepting(s, d.is_accepting(s));
        for e_idx in 0..d.alphabet_len() {
            let e = Symbol::from_index(e_idx);
            if let Some(t) = d.next(s, e) {
                let mask = ext_mask(e, sigma);
                let low = mask & !top;
                let proj = ext_symbol(base_symbol(e, sigma), low, sigma);
                n.add_transition(s, proj, t);
            }
        }
    }
    n.set_initial(d.initial());
    n.determinize().minimize()
}

/// Compile a sentence to a minimized total DFA over Σ.
pub fn compile_sentence(f: &Formula, sigma: usize) -> Result<Dfa> {
    let free = f.free_vars();
    if !free.is_empty() {
        return Err(Error::domain(format!(
            "sentence expected, found free variables {free:?}"
        )));
    }
    compile_inner(f, sigma, &Ctx::default())
}

/// Compile a unary query `φ(x)` to a minimized total DFA over `Σ × {0,1}`
/// (bit = "this is the position bound to `x`"); feed it words produced by
/// [`mark_word`].
pub fn compile_unary(f: &Formula, var: &str, sigma: usize) -> Result<Dfa> {
    let free = f.free_vars();
    if free.iter().any(|v| v != var) {
        return Err(Error::domain(format!(
            "unary query over `{var}` expected, found free variables {free:?}"
        )));
    }
    let ctx = Ctx {
        vars: vec![(var.to_string(), false)],
    };
    compile_inner(f, sigma, &ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{check, query, Structure};
    use crate::parser::parse;
    use qa_base::Alphabet;

    fn all_words(sigma: usize, max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in frontier {
                for s in 0..sigma {
                    let mut w2: Vec<Symbol> = w.clone();
                    w2.push(Symbol::from_index(s));
                    out.push(w2.clone());
                    next.push(w2);
                }
            }
            frontier = next;
        }
        out
    }

    fn agree_sentence(src: &str, sigma_names: &[&str], max_len: usize) {
        let mut a = Alphabet::from_names(sigma_names.to_vec());
        let f = parse(src, &mut a).unwrap();
        let d = compile_sentence(&f, a.len()).unwrap();
        for w in all_words(a.len(), max_len) {
            let naive = check(Structure::Word(&w), &f).unwrap();
            assert_eq!(d.accepts(&w), naive, "{src} on {:?}", a.render(&w));
        }
    }

    #[test]
    fn label_existence() {
        agree_sentence("ex x. label(x, b)", &["a", "b"], 5);
    }

    #[test]
    fn order_and_edge() {
        agree_sentence(
            "ex x. ex y. (edge(x, y) & label(x, a) & label(y, b))",
            &["a", "b"],
            5,
        );
        agree_sentence(
            "ex x. ex y. (x < y & label(x, b) & label(y, a))",
            &["a", "b"],
            5,
        );
        agree_sentence(
            "all x. all y. (edge(x, y) -> !(label(x, a) & label(y, a)))",
            &["a", "b"],
            5,
        );
    }

    #[test]
    fn set_quantification_even_length() {
        // even length via alternating set
        agree_sentence(
            "ex2 X. ( (all x. (root(x) -> x in X)) \
             & (all x. all y. (edge(x, y) -> ((x in X -> !(y in X)) & (!(x in X) -> y in X)))) \
             & (all x. (leaf(x) -> !(x in X))) ) | (all x. !(x = x))",
            &["a"],
            8,
        );
    }

    #[test]
    fn equality_and_root_leaf() {
        agree_sentence("all x. all y. (x = y)", &["a", "b"], 3);
        agree_sentence(
            "ex x. (root(x) & label(x, a)) & ex y. (leaf(y) & label(y, b))",
            &["a", "b"],
            4,
        );
    }

    #[test]
    fn unary_query_agrees_with_naive() {
        let mut a = Alphabet::from_names(["0", "1"]);
        // Example 3.4's query: 1-labeled positions at odd distance from the
        // right end: v is selected iff the suffix strictly after v has even
        // size — expressible with a set alternating from the right end.
        let src = "label(v, 1) & (ex2 X. ( (all x. (leaf(x) -> x in X)) \
                   & (all x. all y. (edge(x, y) -> (y in X <-> !(x in X)))) \
                   & v in X ))";
        let f = parse(src, &mut a).unwrap();
        let d = compile_unary(&f, "v", a.len()).unwrap();
        for w in all_words(2, 6) {
            let naive = query(Structure::Word(&w), &f, "v").unwrap();
            for pos in 0..w.len() {
                let marked = mark_word(&w, pos, 2);
                assert_eq!(
                    d.accepts(&marked),
                    naive.contains(&pos),
                    "pos {pos} of {:?}",
                    a.render(&w)
                );
            }
            // unmarked words never accepted (validity requires one bit)
            assert!(!d.accepts(&w) || w.is_empty());
        }
    }

    #[test]
    fn unary_query_matches_example_3_4_machine() {
        let mut a = Alphabet::from_names(["0", "1"]);
        let qa = qa_twoway::string_qa::example_3_4_qa(&a);
        let src = "label(v, 1) & (ex2 X. ( (all x. (leaf(x) -> x in X)) \
                   & (all x. all y. (edge(x, y) -> (y in X <-> !(x in X)))) \
                   & v in X ))";
        let f = parse(src, &mut a).unwrap();
        let d = compile_unary(&f, "v", a.len()).unwrap();
        for w in all_words(2, 6) {
            let selected = qa.query(&w).unwrap();
            for pos in 0..w.len() {
                let marked = mark_word(&w, pos, 2);
                assert_eq!(
                    d.accepts(&marked),
                    selected.contains(&pos),
                    "pos {pos} of {:?}",
                    a.render(&w)
                );
            }
        }
    }

    #[test]
    fn sentences_reject_free_variables() {
        let mut a = Alphabet::new();
        let f = parse("label(x, a)", &mut a).unwrap();
        assert!(compile_sentence(&f, a.len()).is_err());
        assert!(compile_unary(&f, "y", a.len()).is_err());
    }

    #[test]
    fn compiled_automata_are_small() {
        let mut a = Alphabet::from_names(["a", "b"]);
        let f = parse("ex x. label(x, b)", &mut a).unwrap();
        let d = compile_sentence(&f, 2).unwrap();
        assert!(
            d.num_states() <= 3,
            "minimization keeps it tiny: {}",
            d.num_states()
        );
    }
}
