//! Slender languages in Shallit normal form `x y* z`.
//!
//! Definition 5.7 of *Query Automata* requires each down-transition language
//! `L↓(q, a)` of a two-way unranked tree automaton to contain **at most one
//! string per length** (the automaton is deterministic: arity `n` determines
//! the state string handed to the `n` children). Shallit showed such
//! languages are exactly the finite unions of `x y* z` with `x, y, z` fixed
//! words; the paper's Section 5.2 leans on this form to make each down
//! transition computable in linear time. [`SlenderLang`] stores that normal
//! form, validates the one-string-per-length invariant at construction, and
//! answers the two queries the run engines need in O(1) per position:
//! *the* string of length `n`, and the symbol at position `i` of it.

use qa_base::{Error, Result, Symbol};

use crate::{Nfa, Regex};

/// One `x y* z` component of a slender language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XyzPattern {
    /// Fixed prefix `x`.
    pub x: Vec<Symbol>,
    /// Pumped middle `y` (may be empty, making the component a single word).
    pub y: Vec<Symbol>,
    /// Fixed suffix `z`.
    pub z: Vec<Symbol>,
}

impl XyzPattern {
    /// Build a pattern.
    pub fn new(x: Vec<Symbol>, y: Vec<Symbol>, z: Vec<Symbol>) -> Self {
        XyzPattern { x, y, z }
    }

    /// The single word `w` (no pumping).
    pub fn word(w: Vec<Symbol>) -> Self {
        XyzPattern {
            x: w,
            y: Vec::new(),
            z: Vec::new(),
        }
    }

    /// Does this component generate a string of length `n`?
    pub fn generates_length(&self, n: usize) -> bool {
        let base = self.x.len() + self.z.len();
        if n < base {
            return false;
        }
        if self.y.is_empty() {
            n == base
        } else {
            (n - base).is_multiple_of(self.y.len())
        }
    }

    /// Symbol at position `i` (0-based) of the length-`n` member.
    ///
    /// Precondition: `generates_length(n)` and `i < n`.
    pub fn symbol_at(&self, n: usize, i: usize) -> Symbol {
        debug_assert!(self.generates_length(n) && i < n);
        if i < self.x.len() {
            self.x[i]
        } else if i >= n - self.z.len() {
            self.z[i - (n - self.z.len())]
        } else {
            self.y[(i - self.x.len()) % self.y.len()]
        }
    }

    /// The member of length `n`, if any.
    pub fn string_of_length(&self, n: usize) -> Option<Vec<Symbol>> {
        if !self.generates_length(n) {
            return None;
        }
        Some((0..n).map(|i| self.symbol_at(n, i)).collect())
    }

    /// The regex `x y* z`.
    pub fn to_regex(&self) -> Regex {
        Regex::literal(&self.x)
            .concat(Regex::literal(&self.y).star())
            .concat(Regex::literal(&self.z))
    }
}

/// A slender language: a finite union of `x y* z` components with at most
/// one member per length.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_strings::{SlenderLang, XyzPattern};
/// let mut sigma = Alphabet::new();
/// let q = sigma.intern("q");
/// let r = sigma.intern("r");
/// // q r* q : first and last child get q, the middle ones get r
/// let lang = SlenderLang::new(vec![XyzPattern::new(vec![q], vec![r], vec![q])]).unwrap();
/// assert_eq!(lang.string_of_length(4), Some(vec![q, r, r, q]));
/// assert_eq!(lang.string_of_length(1), None);
/// assert_eq!(lang.symbol_at(4, 2), Some(r));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlenderLang {
    patterns: Vec<XyzPattern>,
}

impl SlenderLang {
    /// Build and validate: every pair of components that generates a common
    /// length must generate the *same* string at that length.
    ///
    /// Agreement is checked exhaustively up to a sound cutoff
    /// `max(|x|+|z|) · 2 + 2 · lcm(periods) + 2`: beyond it, position
    /// comparisons between any two components depend only on
    /// `n mod lcm(periods)` (each position is in the fixed prefix, the fixed
    /// suffix, or a periodic zone of both components), so agreement on one
    /// representative per residue implies agreement everywhere.
    pub fn new(patterns: Vec<XyzPattern>) -> Result<Self> {
        let lang = SlenderLang { patterns };
        lang.validate()?;
        Ok(lang)
    }

    /// The empty slender language.
    pub fn empty() -> Self {
        SlenderLang {
            patterns: Vec::new(),
        }
    }

    /// `sym*`: the uniform language assigning `sym` to every position.
    pub fn uniform(sym: Symbol) -> Self {
        SlenderLang {
            patterns: vec![XyzPattern::new(Vec::new(), vec![sym], Vec::new())],
        }
    }

    /// A single fixed word.
    pub fn single(word: Vec<Symbol>) -> Self {
        SlenderLang {
            patterns: vec![XyzPattern::word(word)],
        }
    }

    /// The component patterns.
    pub fn patterns(&self) -> &[XyzPattern] {
        &self.patterns
    }

    fn validate(&self) -> Result<()> {
        let mut lcm: usize = 1;
        let mut max_fixed = 0usize;
        for p in &self.patterns {
            if !p.y.is_empty() {
                lcm = lcm_usize(lcm, p.y.len());
            }
            max_fixed = max_fixed.max(p.x.len() + p.z.len());
        }
        let bound = 2 * max_fixed + 2 * lcm + 2;
        for n in 0..=bound {
            let mut found: Option<Vec<Symbol>> = None;
            for p in &self.patterns {
                if let Some(s) = p.string_of_length(n) {
                    match &found {
                        None => found = Some(s),
                        Some(prev) if *prev == s => {}
                        Some(prev) => {
                            return Err(Error::ill_formed(
                                "slender language",
                                format!("two distinct members of length {n}: {prev:?} vs {s:?}"),
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The unique member of length `n`, if any.
    pub fn string_of_length(&self, n: usize) -> Option<Vec<Symbol>> {
        self.patterns.iter().find_map(|p| p.string_of_length(n))
    }

    /// Symbol at position `i` of the length-`n` member (O(1)).
    pub fn symbol_at(&self, n: usize, i: usize) -> Option<Symbol> {
        self.patterns
            .iter()
            .find(|p| p.generates_length(n))
            .map(|p| p.symbol_at(n, i))
    }

    /// Does the language contain a member of length `n`?
    pub fn has_length(&self, n: usize) -> bool {
        self.patterns.iter().any(|p| p.generates_length(n))
    }

    /// Membership test.
    pub fn contains(&self, word: &[Symbol]) -> bool {
        self.string_of_length(word.len()).is_some_and(|s| s == word)
    }

    /// The union regex of all components.
    pub fn to_regex(&self) -> Regex {
        Regex::any(self.patterns.iter().map(|p| p.to_regex()))
    }

    /// Compile to an NFA over `alphabet_len` symbols.
    pub fn to_nfa(&self, alphabet_len: usize) -> Nfa {
        self.to_regex().to_nfa(alphabet_len)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Smallest member length, if non-empty.
    pub fn min_length(&self) -> Option<usize> {
        self.patterns.iter().map(|p| p.x.len() + p.z.len()).min()
    }

    /// Iterate over all member lengths `<= max`.
    pub fn lengths_up_to(&self, max: usize) -> Vec<usize> {
        (0..=max).filter(|&n| self.has_length(n)).collect()
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm_usize(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn syms() -> (Symbol, Symbol, Symbol) {
        let mut a = Alphabet::new();
        (a.intern("p"), a.intern("q"), a.intern("r"))
    }

    #[test]
    fn uniform_language() {
        let (p, _, _) = syms();
        let l = SlenderLang::uniform(p);
        assert_eq!(l.string_of_length(0), Some(vec![]));
        assert_eq!(l.string_of_length(3), Some(vec![p, p, p]));
        assert!(l.contains(&[p, p]));
        assert!(l.contains(&[]));
    }

    #[test]
    fn xyz_positions() {
        let (p, q, r) = syms();
        let l = SlenderLang::new(vec![XyzPattern::new(vec![p], vec![q], vec![r])]).unwrap();
        assert_eq!(l.string_of_length(2), Some(vec![p, r]));
        assert_eq!(l.string_of_length(5), Some(vec![p, q, q, q, r]));
        assert_eq!(l.string_of_length(1), None);
        assert_eq!(l.symbol_at(5, 0), Some(p));
        assert_eq!(l.symbol_at(5, 3), Some(q));
        assert_eq!(l.symbol_at(5, 4), Some(r));
    }

    #[test]
    fn single_word() {
        let (p, q, _) = syms();
        let l = SlenderLang::single(vec![p, q]);
        assert!(l.contains(&[p, q]));
        assert!(!l.contains(&[p]));
        assert!(!l.has_length(3));
        assert_eq!(l.min_length(), Some(2));
    }

    #[test]
    fn union_of_disjoint_lengths_is_valid() {
        let (p, q, _) = syms();
        // {p} ∪ {qq} — lengths 1 and 2, no conflict
        let l = SlenderLang::new(vec![
            XyzPattern::word(vec![p]),
            XyzPattern::word(vec![q, q]),
        ])
        .unwrap();
        assert!(l.contains(&[p]));
        assert!(l.contains(&[q, q]));
    }

    #[test]
    fn conflicting_union_is_rejected() {
        let (p, q, _) = syms();
        // p* and q* both generate length-1 strings that differ
        let res = SlenderLang::new(vec![
            XyzPattern::new(vec![], vec![p], vec![]),
            XyzPattern::new(vec![], vec![q], vec![]),
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn overlapping_but_agreeing_union_is_accepted() {
        let (p, _, _) = syms();
        // p* and p p* agree wherever both are defined
        let l = SlenderLang::new(vec![
            XyzPattern::new(vec![], vec![p], vec![]),
            XyzPattern::new(vec![p], vec![p], vec![]),
        ])
        .unwrap();
        assert_eq!(l.string_of_length(3), Some(vec![p, p, p]));
    }

    #[test]
    fn periodic_conflict_is_caught_beyond_fixed_parts() {
        let (p, q, _) = syms();
        // (pq)* vs (qp)* conflict at length 2
        let res = SlenderLang::new(vec![
            XyzPattern::new(vec![], vec![p, q], vec![]),
            XyzPattern::new(vec![], vec![q, p], vec![]),
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn regex_compilation_matches_membership() {
        let (p, q, r) = syms();
        let l = SlenderLang::new(vec![XyzPattern::new(vec![p], vec![q], vec![r])]).unwrap();
        let nfa = l.to_nfa(3);
        for n in 0..8usize {
            if let Some(s) = l.string_of_length(n) {
                assert!(nfa.accepts(&s), "length {n}")
            }
        }
        assert!(!nfa.accepts(&[p, q, q]));
        assert!(!nfa.accepts(&[q]));
    }

    #[test]
    fn empty_language() {
        let l = SlenderLang::empty();
        assert!(l.is_empty());
        assert_eq!(l.min_length(), None);
        assert!(!l.contains(&[]));
    }

    #[test]
    fn lengths_up_to() {
        let (p, q, _) = syms();
        let l = SlenderLang::new(vec![XyzPattern::new(vec![p], vec![q, q], vec![])]).unwrap();
        assert_eq!(l.lengths_up_to(6), vec![1, 3, 5]);
    }
}

#[cfg(test)]
mod validation_soundness {
    use super::*;
    use qa_base::rng::{Rng, StdRng};

    fn random_word(rng: &mut StdRng, max: usize) -> Vec<Symbol> {
        let len = rng.gen_range(0..=max);
        (0..len)
            .map(|_| Symbol::from_index(rng.gen_range(0..2)))
            .collect()
    }

    /// The constructor's bounded conflict check agrees with brute force
    /// far past its own cutoff: whenever `new` accepts a union, no two
    /// components disagree on any length up to 4× the cutoff.
    #[test]
    fn accepted_unions_have_no_deep_conflicts() {
        let mut rng = StdRng::seed_from_u64(0x51ede7);
        for _ in 0..256 {
            let mut w = |max| random_word(&mut rng, max);
            let p1 = XyzPattern::new(w(2), w(2), w(2));
            let p2 = XyzPattern::new(w(2), w(2), w(2));
            if let Ok(lang) = SlenderLang::new(vec![p1.clone(), p2.clone()]) {
                for n in 0..64usize {
                    if let (Some(a), Some(b)) = (p1.string_of_length(n), p2.string_of_length(n)) {
                        assert_eq!(&a, &b, "conflict at length {n} slipped past validation");
                    }
                    // and the union resolves consistently
                    if let Some(s) = lang.string_of_length(n) {
                        for (i, &sym) in s.iter().enumerate() {
                            assert_eq!(lang.symbol_at(n, i), Some(sym));
                        }
                    }
                }
            }
        }
    }
}
