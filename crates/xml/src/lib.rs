//! # qa-xml
//!
//! The paper's motivating setting (Section 1, Figures 1–4): structured
//! documents as labeled ordered trees.
//!
//! - [`parser`]: a lightweight parser for the XML subset the paper
//!   abstracts over (elements + text; no attributes/namespaces), producing
//!   [`qa_trees::Tree`]s with text content abstracted to `#pcdata` leaves —
//!   the Figure 3 → Figure 4 step.
//! - [`dtd`]: DTD element declarations (`<!ELEMENT name (model)>`) with
//!   full content-model regexes — the extended context-free grammars
//!   (ECFGs) of the introduction.
//! - [`validate`]: DTD validation, both directly (good error messages) and
//!   compiled to an unranked tree automaton (`qa_core::unranked::Nbtau`) —
//!   "tree automata can easily determine whether the input tree is a
//!   derivation tree of a given (E)CFG".
//! - [`figures`]: the paper's Figure 1 bibliography document and Figure 2
//!   DTD as ready-made constants.

pub mod dtd;
pub mod figures;
pub mod parser;
pub mod validate;

pub use dtd::Dtd;
pub use parser::{parse_document, Document};
